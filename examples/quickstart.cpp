// Quickstart: solve a least-squares problem with gradient descent under
// ApproxIt's incremental reconfiguration, and compare against the fully
// accurate run.
//
//   build/examples/quickstart
//
// Walks through the full API surface in ~60 lines: build a QCS ALU, wrap an
// iterative method, characterize offline, run online with a strategy.
#include <cstdio>
#include <vector>

#include "arith/alu.h"
#include "core/incremental_strategy.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "la/matrix.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"
#include "util/rng.h"

using namespace approxit;

int main() {
  // 1. A workload: noisy linear observations y = A x* + noise.
  util::Rng rng(2014);
  const std::size_t m = 200, n = 6;
  la::Matrix a(m, n);
  std::vector<double> x_star(n), y(m);
  for (std::size_t j = 0; j < n; ++j) x_star[j] = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < m; ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      dot += a(i, j) * x_star[j];
    }
    y[i] = dot + rng.gaussian(0.0, 0.05);
  }
  opt::LeastSquaresProblem problem(a, y);

  // 2. The quality-configurable ALU: four approximate-adder levels + exact.
  arith::QcsAlu alu;
  std::printf("%s\n", alu.describe().c_str());

  // 3. An iterative method whose resilient arithmetic routes through a
  //    context: here, gradient descent.
  const opt::GdConfig config{
      .step_size = 0.5, .momentum = 0.0, .max_iter = 3000, .tolerance = 1e-12};
  opt::GradientDescentSolver solver(problem, std::vector<double>(n, 0.0),
                                    config);

  // 4. Truth baseline (fully accurate mode), via the fluent builder.
  core::StaticStrategy accurate(arith::ApproxMode::kAccurate);
  const core::RunReport truth = core::SessionBuilder()
                                    .method(solver)
                                    .strategy(accurate)
                                    .alu(alu)
                                    .run();
  std::printf("Truth : %s\n", truth.to_string().c_str());

  // 5. ApproxIt: offline characterization happens automatically inside the
  //    session; online reconfiguration ramps level1 -> accurate.
  core::IncrementalStrategy incremental;
  const core::RunReport report = core::SessionBuilder()
                                     .method(solver)
                                     .strategy(incremental)
                                     .alu(alu)
                                     .run();
  std::printf("ApproxIt: %s\n", report.to_string().c_str());

  std::printf("\nEnergy vs Truth: %.1f%% (savings %.1f%%)\n",
              100.0 * report.total_energy / truth.total_energy,
              100.0 * (1.0 - report.total_energy / truth.total_energy));
  std::printf("Recovered coefficients (x* | fitted):\n");
  for (std::size_t j = 0; j < n; ++j) {
    std::printf("  % .4f | % .4f\n", x_star[j], solver.x()[j]);
  }
  return 0;
}
