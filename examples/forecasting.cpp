// Forecasting example: fit an AR(p) model to a synthetic index series with
// ApproxIt's adaptive strategy, then produce a short out-of-sample forecast
// of normalized returns.
//
//   build/examples/forecasting --length=4000 --order=8 --autocorr=0.7
#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/autoregression.h"
#include "arith/alu.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "util/cli.h"
#include "util/table.h"
#include "workloads/datasets.h"

using namespace approxit;

int main(int argc, char** argv) {
  util::CliParser cli("AR forecasting under ApproxIt");
  cli.add_flag("length", "4000", "series length");
  cli.add_flag("order", "8", "AR order p");
  cli.add_flag("autocorr", "0.7", "return autocorrelation of the generator");
  cli.add_flag("seed", "99", "series seed");
  cli.add_flag("horizon", "8", "forecast horizon (steps)");
  if (!cli.parse(argc, argv)) return 0;

  auto ds = workloads::make_financial_series(
      static_cast<std::size_t>(cli.get_int("length")), 1000.0, 2e-4, 0.012,
      static_cast<std::uint64_t>(cli.get_int("seed")),
      cli.get_double("autocorr"));
  ds.ar_order = static_cast<std::size_t>(cli.get_int("order"));
  ds.max_iter = 2000;
  ds.convergence_tol = 1e-13;

  arith::QcsAlu alu(apps::ar_qcs_config());

  apps::AutoRegression char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  // Truth fit.
  apps::AutoRegression truth_method(ds);
  core::StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  const core::RunReport truth = core::SessionBuilder()
                                    .method(truth_method)
                                    .strategy(truth_strategy)
                                    .alu(alu)
                                    .characterization(characterization)
                                    .run();

  // ApproxIt adaptive fit.
  apps::AutoRegression method(ds);
  core::AdaptiveAngleStrategy adaptive;
  const core::RunReport report = core::SessionBuilder()
                                     .method(method)
                                     .strategy(adaptive)
                                     .alu(alu)
                                     .characterization(characterization)
                                     .run();

  util::Table table("AR fit: Truth vs ApproxIt adaptive");
  table.set_header({"Run", "Iterations", "MSE", "Coef l2 vs Truth",
                    "Energy vs Truth"});
  table.set_align(0, util::Align::kLeft);
  table.add_row({"Truth", std::to_string(truth.iterations),
                 util::format_sig(truth_method.mean_squared_error(), 4), "0",
                 "1"});
  table.add_row(
      {"adaptive(f=1)", std::to_string(report.iterations),
       util::format_sig(method.mean_squared_error(), 4),
       util::format_sig(apps::coefficient_l2_error(
                            method.coefficients(),
                            truth_method.coefficients()),
                        3),
       util::format_sig(report.total_energy / truth.total_energy, 3)});
  std::cout << table;

  // Short recursive forecast on normalized returns.
  const std::size_t p = ds.ar_order;
  const std::size_t horizon =
      static_cast<std::size_t>(cli.get_int("horizon"));
  // Rebuild the normalized return tail exactly as the app does.
  std::vector<double> returns;
  for (std::size_t i = 1; i < ds.values.size(); ++i) {
    returns.push_back(std::log(ds.values[i] / ds.values[i - 1]));
  }
  double mean = 0.0;
  for (double r : returns) mean += r;
  mean /= static_cast<double>(returns.size());
  double var = 0.0;
  for (double r : returns) var += (r - mean) * (r - mean);
  const double stddev = std::sqrt(var / static_cast<double>(returns.size()));
  std::vector<double> z;
  for (double r : returns) z.push_back((r - mean) / stddev);

  std::printf("\nForecast (normalized returns, horizon %zu):\n", horizon);
  std::vector<double> window(z.end() - static_cast<long>(p), z.end());
  for (std::size_t h = 0; h < horizon; ++h) {
    double pred = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      pred += method.coefficients()[j] * window[p - 1 - j];
    }
    std::printf("  t+%zu: % .4f\n", h + 1, pred);
    window.erase(window.begin());
    window.push_back(pred);
  }
  return 0;
}
