// Clustering example: Gaussian-mixture clustering with ApproxIt on a
// user-configurable synthetic dataset, comparing every single mode against
// the incremental and adaptive strategies, and emitting a CSV of the final
// assignments for plotting.
//
//   build/examples/clustering --clusters=4 --points=1500 --separation=4.5
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "apps/gmm.h"
#include "arith/alu.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/report_io.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workloads/datasets.h"

using namespace approxit;

int main(int argc, char** argv) {
  util::CliParser cli("GMM clustering under ApproxIt");
  cli.add_flag("clusters", "4", "number of mixture components");
  cli.add_flag("points", "1500", "number of samples");
  cli.add_flag("separation", "4.5", "cluster center separation");
  cli.add_flag("spread", "1.1", "cluster standard-deviation scale");
  cli.add_flag("seed", "7", "dataset seed");
  cli.add_flag("csv", "bench_artifacts/clustering_result.csv",
               "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  auto ds = workloads::make_gaussian_blobs(
      static_cast<std::size_t>(cli.get_int("clusters")),
      static_cast<std::size_t>(cli.get_int("points")), 2,
      cli.get_double("separation"), cli.get_double("spread"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  ds.max_iter = 500;
  ds.convergence_tol = 1e-9;

  arith::QcsAlu alu;
  apps::GmmEm char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);
  std::printf("%s\n", characterization.to_string().c_str());

  auto run = [&](core::Strategy& strategy, apps::GmmEm& method) {
    return core::SessionBuilder()
        .method(method)
        .strategy(strategy)
        .alu(alu)
        .characterization(characterization)
        .run();
  };

  apps::GmmEm truth_method(ds);
  core::StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  const core::RunReport truth = run(truth_strategy, truth_method);
  const std::vector<int> truth_assign = truth_method.assignments();

  util::Table table("Clustering under every configuration");
  table.set_header({"Configuration", "Iterations", "QEM (Hamming)",
                    "Energy vs Truth"});
  table.set_align(0, util::Align::kLeft);
  table.add_row({"Truth", std::to_string(truth.iterations), "0", "1"});

  for (arith::ApproxMode mode :
       {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
        arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
    apps::GmmEm method(ds);
    core::StaticStrategy strategy(mode);
    const core::RunReport report = run(strategy, method);
    table.add_row({std::string(arith::mode_name(mode)),
                   std::to_string(report.iterations),
                   std::to_string(apps::hamming_distance(
                       truth_assign, method.assignments())),
                   util::format_sig(report.total_energy / truth.total_energy,
                                    3)});
  }

  apps::GmmEm incr_method(ds);
  core::IncrementalStrategy incremental;
  const core::RunReport incr = run(incremental, incr_method);
  std::filesystem::create_directories("bench_artifacts");
  core::write_trace_csv(incr, "bench_artifacts/clustering_trace.csv");
  core::write_report_json(incr, "bench_artifacts/clustering_report.json");
  table.add_row({"incremental", std::to_string(incr.iterations),
                 std::to_string(apps::hamming_distance(
                     truth_assign, incr_method.assignments())),
                 util::format_sig(incr.total_energy / truth.total_energy, 3)});

  apps::GmmEm adapt_method(ds);
  core::AdaptiveAngleStrategy adaptive;
  const core::RunReport adapt = run(adaptive, adapt_method);
  table.add_row({"adaptive(f=1)", std::to_string(adapt.iterations),
                 std::to_string(apps::hamming_distance(
                     truth_assign, adapt_method.assignments())),
                 util::format_sig(adapt.total_energy / truth.total_energy,
                                  3)});

  std::cout << table;

  const std::string csv_path = cli.get_string("csv");
  if (const auto parent = std::filesystem::path(csv_path).parent_path();
      !parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  util::CsvWriter csv(csv_path);
  csv.write_row({"x", "y", "truth_cluster", "incremental_cluster"});
  const std::vector<int> incr_assign = incr_method.assignments();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    csv.write_row({std::to_string(ds.points[i * 2]),
                   std::to_string(ds.points[i * 2 + 1]),
                   std::to_string(truth_assign[i]),
                   std::to_string(incr_assign[i])});
  }
  std::printf("\nAssignments written to %s\n", csv_path.c_str());
  std::printf(
      "Incremental run trace written to bench_artifacts/"
      "clustering_trace.csv, summary to bench_artifacts/"
      "clustering_report.json\n");
  return 0;
}
