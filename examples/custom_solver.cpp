// Custom-solver example: plugging a user-defined iterative method into
// ApproxIt. The method here is Jacobi iteration on a 1-D Poisson system
// (the classic finite-difference substrate the paper's introduction
// motivates) — the library's StationarySolver does the heavy lifting; the
// point is that ANY IterativeMethod works with any Strategy.
//
//   build/examples/custom_solver --size=64 --omega=1.0
#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "arith/alu.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "la/vector_ops.h"
#include "opt/linear_stationary.h"
#include "util/cli.h"
#include "util/table.h"

using namespace approxit;

int main(int argc, char** argv) {
  util::CliParser cli("Poisson solve (Jacobi/SOR) under ApproxIt");
  cli.add_flag("size", "64", "grid points");
  cli.add_flag("omega", "1.0", "SOR relaxation (1.0 = Gauss-Seidel)");
  cli.add_flag("tol", "1e-6", "residual tolerance");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.get_int("size"));

  // -u'' = f on (0,1), u(0)=u(1)=0, discretized and scaled by h^2 so the
  // datapath sees O(1) values: tridiag(-1, 2, -1) u = h^2 f.
  const double h = 1.0 / static_cast<double>(n + 1);
  la::Matrix a(n, n, 0.0);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -1.0;
    const double x = static_cast<double>(i + 1) * h;
    b[i] = h * h * std::sin(std::numbers::pi * x) * std::numbers::pi *
           std::numbers::pi;
  }

  opt::StationaryConfig config;
  config.scheme = cli.get_double("omega") == 1.0
                      ? opt::StationaryScheme::kGaussSeidel
                      : opt::StationaryScheme::kSor;
  config.relaxation = cli.get_double("omega");
  config.tolerance = cli.get_double("tol");
  config.max_iter = 20000;

  // O(1) values, but convergence demands fine granularity: a deep-fraction
  // datapath with a correspondingly lowered approximate-bits ladder
  // (matching the Q format to the kernel is part of offline design).
  arith::QcsConfig qcs;
  qcs.format = arith::QFormat{48, 36};
  qcs.level_approx_bits = {26, 23, 20, 17};
  arith::QcsAlu alu(qcs);

  opt::StationarySolver char_solver(a, b, std::vector<double>(n, 0.0), config);
  const core::ModeCharacterization characterization =
      core::characterize(char_solver, alu);

  util::Table table("1-D Poisson relaxation under ApproxIt");
  table.set_header({"Run", "Iterations", "Residual", "Max error vs sin(pi x)",
                    "Energy vs Truth"});
  table.set_align(0, util::Align::kLeft);

  auto max_error = [&](const opt::StationarySolver& solver) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i + 1) * h;
      worst = std::max(worst,
                       std::abs(solver.x()[i] - std::sin(std::numbers::pi * x)));
    }
    return worst;
  };

  opt::StationarySolver truth_solver(a, b, std::vector<double>(n, 0.0),
                                     config);
  core::StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  const auto run = [&](opt::IterativeMethod& method,
                       core::Strategy& strategy) {
    return core::SessionBuilder()
        .method(method)
        .strategy(strategy)
        .alu(alu)
        .characterization(characterization)
        .run();
  };
  const core::RunReport truth = run(truth_solver, truth_strategy);
  table.add_row({"Truth", std::to_string(truth.iterations),
                 util::format_sig(truth_solver.residual_norm(), 3),
                 util::format_sig(max_error(truth_solver), 3), "1"});

  opt::StationarySolver incr_solver(a, b, std::vector<double>(n, 0.0),
                                    config);
  core::IncrementalStrategy incremental;
  const core::RunReport incr = run(incr_solver, incremental);
  table.add_row({"incremental", std::to_string(incr.iterations),
                 util::format_sig(incr_solver.residual_norm(), 3),
                 util::format_sig(max_error(incr_solver), 3),
                 util::format_sig(incr.total_energy / truth.total_energy,
                                  3)});

  opt::StationarySolver adapt_solver(a, b, std::vector<double>(n, 0.0),
                                     config);
  core::AdaptiveAngleStrategy adaptive;
  const core::RunReport adapt = run(adapt_solver, adaptive);
  table.add_row({"adaptive(f=1)", std::to_string(adapt.iterations),
                 util::format_sig(adapt_solver.residual_norm(), 3),
                 util::format_sig(max_error(adapt_solver), 3),
                 util::format_sig(adapt.total_energy / truth.total_energy,
                                  3)});

  std::cout << table;
  std::printf(
      "\nBoth strategies drive the discretized Poisson solve to the same "
      "solution as the\naccurate run; the discretization error vs sin(pi x) "
      "is O(h^2) and identical across runs.\n");
  return 0;
}
