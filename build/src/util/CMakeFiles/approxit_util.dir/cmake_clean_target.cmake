file(REMOVE_RECURSE
  "libapproxit_util.a"
)
