file(REMOVE_RECURSE
  "CMakeFiles/approxit_util.dir/cli.cpp.o"
  "CMakeFiles/approxit_util.dir/cli.cpp.o.d"
  "CMakeFiles/approxit_util.dir/csv.cpp.o"
  "CMakeFiles/approxit_util.dir/csv.cpp.o.d"
  "CMakeFiles/approxit_util.dir/logging.cpp.o"
  "CMakeFiles/approxit_util.dir/logging.cpp.o.d"
  "CMakeFiles/approxit_util.dir/rng.cpp.o"
  "CMakeFiles/approxit_util.dir/rng.cpp.o.d"
  "CMakeFiles/approxit_util.dir/stats.cpp.o"
  "CMakeFiles/approxit_util.dir/stats.cpp.o.d"
  "CMakeFiles/approxit_util.dir/table.cpp.o"
  "CMakeFiles/approxit_util.dir/table.cpp.o.d"
  "libapproxit_util.a"
  "libapproxit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
