# Empty dependencies file for approxit_util.
# This may be replaced when dependencies are built.
