
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/adder.cpp" "src/arith/CMakeFiles/approxit_arith.dir/adder.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/adder.cpp.o.d"
  "/root/repo/src/arith/alu.cpp" "src/arith/CMakeFiles/approxit_arith.dir/alu.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/alu.cpp.o.d"
  "/root/repo/src/arith/approx_adders.cpp" "src/arith/CMakeFiles/approxit_arith.dir/approx_adders.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/approx_adders.cpp.o.d"
  "/root/repo/src/arith/energy.cpp" "src/arith/CMakeFiles/approxit_arith.dir/energy.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/energy.cpp.o.d"
  "/root/repo/src/arith/error_metrics.cpp" "src/arith/CMakeFiles/approxit_arith.dir/error_metrics.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/error_metrics.cpp.o.d"
  "/root/repo/src/arith/exact_adders.cpp" "src/arith/CMakeFiles/approxit_arith.dir/exact_adders.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/exact_adders.cpp.o.d"
  "/root/repo/src/arith/fixed_point.cpp" "src/arith/CMakeFiles/approxit_arith.dir/fixed_point.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/fixed_point.cpp.o.d"
  "/root/repo/src/arith/mode.cpp" "src/arith/CMakeFiles/approxit_arith.dir/mode.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/mode.cpp.o.d"
  "/root/repo/src/arith/multipliers.cpp" "src/arith/CMakeFiles/approxit_arith.dir/multipliers.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/multipliers.cpp.o.d"
  "/root/repo/src/arith/wce_analysis.cpp" "src/arith/CMakeFiles/approxit_arith.dir/wce_analysis.cpp.o" "gcc" "src/arith/CMakeFiles/approxit_arith.dir/wce_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/approxit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
