file(REMOVE_RECURSE
  "libapproxit_arith.a"
)
