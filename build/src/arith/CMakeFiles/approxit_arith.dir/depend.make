# Empty dependencies file for approxit_arith.
# This may be replaced when dependencies are built.
