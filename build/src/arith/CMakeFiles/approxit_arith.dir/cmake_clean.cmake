file(REMOVE_RECURSE
  "CMakeFiles/approxit_arith.dir/adder.cpp.o"
  "CMakeFiles/approxit_arith.dir/adder.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/alu.cpp.o"
  "CMakeFiles/approxit_arith.dir/alu.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/approx_adders.cpp.o"
  "CMakeFiles/approxit_arith.dir/approx_adders.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/energy.cpp.o"
  "CMakeFiles/approxit_arith.dir/energy.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/error_metrics.cpp.o"
  "CMakeFiles/approxit_arith.dir/error_metrics.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/exact_adders.cpp.o"
  "CMakeFiles/approxit_arith.dir/exact_adders.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/fixed_point.cpp.o"
  "CMakeFiles/approxit_arith.dir/fixed_point.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/mode.cpp.o"
  "CMakeFiles/approxit_arith.dir/mode.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/multipliers.cpp.o"
  "CMakeFiles/approxit_arith.dir/multipliers.cpp.o.d"
  "CMakeFiles/approxit_arith.dir/wce_analysis.cpp.o"
  "CMakeFiles/approxit_arith.dir/wce_analysis.cpp.o.d"
  "libapproxit_arith.a"
  "libapproxit_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
