file(REMOVE_RECURSE
  "libapproxit_workloads.a"
)
