# Empty compiler generated dependencies file for approxit_workloads.
# This may be replaced when dependencies are built.
