file(REMOVE_RECURSE
  "CMakeFiles/approxit_workloads.dir/datasets.cpp.o"
  "CMakeFiles/approxit_workloads.dir/datasets.cpp.o.d"
  "CMakeFiles/approxit_workloads.dir/graphs.cpp.o"
  "CMakeFiles/approxit_workloads.dir/graphs.cpp.o.d"
  "libapproxit_workloads.a"
  "libapproxit_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
