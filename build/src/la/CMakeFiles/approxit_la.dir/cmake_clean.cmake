file(REMOVE_RECURSE
  "CMakeFiles/approxit_la.dir/decomp.cpp.o"
  "CMakeFiles/approxit_la.dir/decomp.cpp.o.d"
  "CMakeFiles/approxit_la.dir/matrix.cpp.o"
  "CMakeFiles/approxit_la.dir/matrix.cpp.o.d"
  "CMakeFiles/approxit_la.dir/vector_ops.cpp.o"
  "CMakeFiles/approxit_la.dir/vector_ops.cpp.o.d"
  "libapproxit_la.a"
  "libapproxit_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
