# Empty dependencies file for approxit_la.
# This may be replaced when dependencies are built.
