
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/decomp.cpp" "src/la/CMakeFiles/approxit_la.dir/decomp.cpp.o" "gcc" "src/la/CMakeFiles/approxit_la.dir/decomp.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/la/CMakeFiles/approxit_la.dir/matrix.cpp.o" "gcc" "src/la/CMakeFiles/approxit_la.dir/matrix.cpp.o.d"
  "/root/repo/src/la/vector_ops.cpp" "src/la/CMakeFiles/approxit_la.dir/vector_ops.cpp.o" "gcc" "src/la/CMakeFiles/approxit_la.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arith/CMakeFiles/approxit_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/approxit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
