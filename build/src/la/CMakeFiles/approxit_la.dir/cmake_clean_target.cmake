file(REMOVE_RECURSE
  "libapproxit_la.a"
)
