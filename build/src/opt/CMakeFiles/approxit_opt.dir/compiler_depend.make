# Empty compiler generated dependencies file for approxit_opt.
# This may be replaced when dependencies are built.
