
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/conjugate_gradient.cpp" "src/opt/CMakeFiles/approxit_opt.dir/conjugate_gradient.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/conjugate_gradient.cpp.o.d"
  "/root/repo/src/opt/gradient_descent.cpp" "src/opt/CMakeFiles/approxit_opt.dir/gradient_descent.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/gradient_descent.cpp.o.d"
  "/root/repo/src/opt/line_search.cpp" "src/opt/CMakeFiles/approxit_opt.dir/line_search.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/line_search.cpp.o.d"
  "/root/repo/src/opt/linear_stationary.cpp" "src/opt/CMakeFiles/approxit_opt.dir/linear_stationary.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/linear_stationary.cpp.o.d"
  "/root/repo/src/opt/logistic.cpp" "src/opt/CMakeFiles/approxit_opt.dir/logistic.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/logistic.cpp.o.d"
  "/root/repo/src/opt/newton.cpp" "src/opt/CMakeFiles/approxit_opt.dir/newton.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/newton.cpp.o.d"
  "/root/repo/src/opt/nonlinear_cg.cpp" "src/opt/CMakeFiles/approxit_opt.dir/nonlinear_cg.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/nonlinear_cg.cpp.o.d"
  "/root/repo/src/opt/problem.cpp" "src/opt/CMakeFiles/approxit_opt.dir/problem.cpp.o" "gcc" "src/opt/CMakeFiles/approxit_opt.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/approxit_la.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/approxit_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/approxit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
