file(REMOVE_RECURSE
  "CMakeFiles/approxit_opt.dir/conjugate_gradient.cpp.o"
  "CMakeFiles/approxit_opt.dir/conjugate_gradient.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/gradient_descent.cpp.o"
  "CMakeFiles/approxit_opt.dir/gradient_descent.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/line_search.cpp.o"
  "CMakeFiles/approxit_opt.dir/line_search.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/linear_stationary.cpp.o"
  "CMakeFiles/approxit_opt.dir/linear_stationary.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/logistic.cpp.o"
  "CMakeFiles/approxit_opt.dir/logistic.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/newton.cpp.o"
  "CMakeFiles/approxit_opt.dir/newton.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/nonlinear_cg.cpp.o"
  "CMakeFiles/approxit_opt.dir/nonlinear_cg.cpp.o.d"
  "CMakeFiles/approxit_opt.dir/problem.cpp.o"
  "CMakeFiles/approxit_opt.dir/problem.cpp.o.d"
  "libapproxit_opt.a"
  "libapproxit_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
