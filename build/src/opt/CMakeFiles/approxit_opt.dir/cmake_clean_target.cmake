file(REMOVE_RECURSE
  "libapproxit_opt.a"
)
