file(REMOVE_RECURSE
  "libapproxit_apps.a"
)
