file(REMOVE_RECURSE
  "CMakeFiles/approxit_apps.dir/autoregression.cpp.o"
  "CMakeFiles/approxit_apps.dir/autoregression.cpp.o.d"
  "CMakeFiles/approxit_apps.dir/gmm.cpp.o"
  "CMakeFiles/approxit_apps.dir/gmm.cpp.o.d"
  "CMakeFiles/approxit_apps.dir/kmeans.cpp.o"
  "CMakeFiles/approxit_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/approxit_apps.dir/pagerank.cpp.o"
  "CMakeFiles/approxit_apps.dir/pagerank.cpp.o.d"
  "libapproxit_apps.a"
  "libapproxit_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
