# Empty dependencies file for approxit_apps.
# This may be replaced when dependencies are built.
