file(REMOVE_RECURSE
  "CMakeFiles/approxit_core.dir/adaptive_strategy.cpp.o"
  "CMakeFiles/approxit_core.dir/adaptive_strategy.cpp.o.d"
  "CMakeFiles/approxit_core.dir/characterization.cpp.o"
  "CMakeFiles/approxit_core.dir/characterization.cpp.o.d"
  "CMakeFiles/approxit_core.dir/guarantees.cpp.o"
  "CMakeFiles/approxit_core.dir/guarantees.cpp.o.d"
  "CMakeFiles/approxit_core.dir/incremental_strategy.cpp.o"
  "CMakeFiles/approxit_core.dir/incremental_strategy.cpp.o.d"
  "CMakeFiles/approxit_core.dir/mode_mix.cpp.o"
  "CMakeFiles/approxit_core.dir/mode_mix.cpp.o.d"
  "CMakeFiles/approxit_core.dir/oracle.cpp.o"
  "CMakeFiles/approxit_core.dir/oracle.cpp.o.d"
  "CMakeFiles/approxit_core.dir/pareto.cpp.o"
  "CMakeFiles/approxit_core.dir/pareto.cpp.o.d"
  "CMakeFiles/approxit_core.dir/pid_strategy.cpp.o"
  "CMakeFiles/approxit_core.dir/pid_strategy.cpp.o.d"
  "CMakeFiles/approxit_core.dir/quality.cpp.o"
  "CMakeFiles/approxit_core.dir/quality.cpp.o.d"
  "CMakeFiles/approxit_core.dir/report_io.cpp.o"
  "CMakeFiles/approxit_core.dir/report_io.cpp.o.d"
  "CMakeFiles/approxit_core.dir/session.cpp.o"
  "CMakeFiles/approxit_core.dir/session.cpp.o.d"
  "CMakeFiles/approxit_core.dir/sweep.cpp.o"
  "CMakeFiles/approxit_core.dir/sweep.cpp.o.d"
  "libapproxit_core.a"
  "libapproxit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
