# Empty compiler generated dependencies file for approxit_core.
# This may be replaced when dependencies are built.
