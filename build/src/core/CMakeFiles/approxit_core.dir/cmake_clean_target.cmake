file(REMOVE_RECURSE
  "libapproxit_core.a"
)
