
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_strategy.cpp" "src/core/CMakeFiles/approxit_core.dir/adaptive_strategy.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/adaptive_strategy.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/approxit_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/guarantees.cpp" "src/core/CMakeFiles/approxit_core.dir/guarantees.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/guarantees.cpp.o.d"
  "/root/repo/src/core/incremental_strategy.cpp" "src/core/CMakeFiles/approxit_core.dir/incremental_strategy.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/incremental_strategy.cpp.o.d"
  "/root/repo/src/core/mode_mix.cpp" "src/core/CMakeFiles/approxit_core.dir/mode_mix.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/mode_mix.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/approxit_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/approxit_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/pid_strategy.cpp" "src/core/CMakeFiles/approxit_core.dir/pid_strategy.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/pid_strategy.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/approxit_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/approxit_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/approxit_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/session.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/approxit_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/approxit_core.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/approxit_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/approxit_la.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/approxit_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/approxit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
