file(REMOVE_RECURSE
  "../bench/bench_micro_arith"
  "../bench/bench_micro_arith.pdb"
  "CMakeFiles/bench_micro_arith.dir/bench_micro_arith.cpp.o"
  "CMakeFiles/bench_micro_arith.dir/bench_micro_arith.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
