# Empty compiler generated dependencies file for bench_ablation_fstep.
# This may be replaced when dependencies are built.
