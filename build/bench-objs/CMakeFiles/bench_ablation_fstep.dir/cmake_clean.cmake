file(REMOVE_RECURSE
  "../bench/bench_ablation_fstep"
  "../bench/bench_ablation_fstep.pdb"
  "CMakeFiles/bench_ablation_fstep.dir/bench_ablation_fstep.cpp.o"
  "CMakeFiles/bench_ablation_fstep.dir/bench_ablation_fstep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
