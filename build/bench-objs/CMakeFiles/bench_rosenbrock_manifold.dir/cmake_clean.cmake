file(REMOVE_RECURSE
  "../bench/bench_rosenbrock_manifold"
  "../bench/bench_rosenbrock_manifold.pdb"
  "CMakeFiles/bench_rosenbrock_manifold.dir/bench_rosenbrock_manifold.cpp.o"
  "CMakeFiles/bench_rosenbrock_manifold.dir/bench_rosenbrock_manifold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rosenbrock_manifold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
