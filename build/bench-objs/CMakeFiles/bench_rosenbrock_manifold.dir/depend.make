# Empty dependencies file for bench_rosenbrock_manifold.
# This may be replaced when dependencies are built.
