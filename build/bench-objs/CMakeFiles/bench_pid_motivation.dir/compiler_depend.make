# Empty compiler generated dependencies file for bench_pid_motivation.
# This may be replaced when dependencies are built.
