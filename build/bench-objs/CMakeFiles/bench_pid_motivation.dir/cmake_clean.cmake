file(REMOVE_RECURSE
  "../bench/bench_pid_motivation"
  "../bench/bench_pid_motivation.pdb"
  "CMakeFiles/bench_pid_motivation.dir/bench_pid_motivation.cpp.o"
  "CMakeFiles/bench_pid_motivation.dir/bench_pid_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pid_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
