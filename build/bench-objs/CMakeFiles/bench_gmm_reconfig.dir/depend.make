# Empty dependencies file for bench_gmm_reconfig.
# This may be replaced when dependencies are built.
