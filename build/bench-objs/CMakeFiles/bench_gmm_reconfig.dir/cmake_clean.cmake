file(REMOVE_RECURSE
  "../bench/bench_gmm_reconfig"
  "../bench/bench_gmm_reconfig.pdb"
  "CMakeFiles/bench_gmm_reconfig.dir/bench_gmm_reconfig.cpp.o"
  "CMakeFiles/bench_gmm_reconfig.dir/bench_gmm_reconfig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmm_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
