# Empty compiler generated dependencies file for bench_gmm_single.
# This may be replaced when dependencies are built.
