file(REMOVE_RECURSE
  "../bench/bench_gmm_single"
  "../bench/bench_gmm_single.pdb"
  "CMakeFiles/bench_gmm_single.dir/bench_gmm_single.cpp.o"
  "CMakeFiles/bench_gmm_single.dir/bench_gmm_single.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmm_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
