# Empty dependencies file for bench_extended_apps.
# This may be replaced when dependencies are built.
