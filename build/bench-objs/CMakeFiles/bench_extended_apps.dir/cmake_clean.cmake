file(REMOVE_RECURSE
  "../bench/bench_extended_apps"
  "../bench/bench_extended_apps.pdb"
  "CMakeFiles/bench_extended_apps.dir/bench_extended_apps.cpp.o"
  "CMakeFiles/bench_extended_apps.dir/bench_extended_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
