file(REMOVE_RECURSE
  "../bench/bench_adder_characterization"
  "../bench/bench_adder_characterization.pdb"
  "CMakeFiles/bench_adder_characterization.dir/bench_adder_characterization.cpp.o"
  "CMakeFiles/bench_adder_characterization.dir/bench_adder_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
