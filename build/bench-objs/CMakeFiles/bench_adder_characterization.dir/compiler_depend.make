# Empty compiler generated dependencies file for bench_adder_characterization.
# This may be replaced when dependencies are built.
