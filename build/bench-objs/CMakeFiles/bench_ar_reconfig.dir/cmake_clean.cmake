file(REMOVE_RECURSE
  "../bench/bench_ar_reconfig"
  "../bench/bench_ar_reconfig.pdb"
  "CMakeFiles/bench_ar_reconfig.dir/bench_ar_reconfig.cpp.o"
  "CMakeFiles/bench_ar_reconfig.dir/bench_ar_reconfig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ar_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
