# Empty compiler generated dependencies file for bench_ar_reconfig.
# This may be replaced when dependencies are built.
