file(REMOVE_RECURSE
  "../bench/bench_energy_comparison"
  "../bench/bench_energy_comparison.pdb"
  "CMakeFiles/bench_energy_comparison.dir/bench_energy_comparison.cpp.o"
  "CMakeFiles/bench_energy_comparison.dir/bench_energy_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
