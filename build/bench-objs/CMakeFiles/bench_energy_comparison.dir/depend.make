# Empty dependencies file for bench_energy_comparison.
# This may be replaced when dependencies are built.
