# Empty compiler generated dependencies file for bench_adder_family.
# This may be replaced when dependencies are built.
