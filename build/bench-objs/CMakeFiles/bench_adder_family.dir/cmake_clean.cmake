file(REMOVE_RECURSE
  "../bench/bench_adder_family"
  "../bench/bench_adder_family.pdb"
  "CMakeFiles/bench_adder_family.dir/bench_adder_family.cpp.o"
  "CMakeFiles/bench_adder_family.dir/bench_adder_family.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
