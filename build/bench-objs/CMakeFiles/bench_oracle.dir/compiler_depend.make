# Empty compiler generated dependencies file for bench_oracle.
# This may be replaced when dependencies are built.
