# Empty dependencies file for bench_ablation_schemes.
# This may be replaced when dependencies are built.
