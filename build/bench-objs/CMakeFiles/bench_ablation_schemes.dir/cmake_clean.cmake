file(REMOVE_RECURSE
  "../bench/bench_ablation_schemes"
  "../bench/bench_ablation_schemes.pdb"
  "CMakeFiles/bench_ablation_schemes.dir/bench_ablation_schemes.cpp.o"
  "CMakeFiles/bench_ablation_schemes.dir/bench_ablation_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
