file(REMOVE_RECURSE
  "../bench/bench_pareto"
  "../bench/bench_pareto.pdb"
  "CMakeFiles/bench_pareto.dir/bench_pareto.cpp.o"
  "CMakeFiles/bench_pareto.dir/bench_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
