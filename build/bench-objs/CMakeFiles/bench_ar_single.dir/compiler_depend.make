# Empty compiler generated dependencies file for bench_ar_single.
# This may be replaced when dependencies are built.
