file(REMOVE_RECURSE
  "../bench/bench_ar_single"
  "../bench/bench_ar_single.pdb"
  "CMakeFiles/bench_ar_single.dir/bench_ar_single.cpp.o"
  "CMakeFiles/bench_ar_single.dir/bench_ar_single.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ar_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
