# Empty dependencies file for bench_energy_model.
# This may be replaced when dependencies are built.
