file(REMOVE_RECURSE
  "../bench/bench_energy_model"
  "../bench/bench_energy_model.pdb"
  "CMakeFiles/bench_energy_model.dir/bench_energy_model.cpp.o"
  "CMakeFiles/bench_energy_model.dir/bench_energy_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
