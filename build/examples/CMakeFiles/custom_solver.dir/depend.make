# Empty dependencies file for custom_solver.
# This may be replaced when dependencies are built.
