# Empty dependencies file for clustering.
# This may be replaced when dependencies are built.
