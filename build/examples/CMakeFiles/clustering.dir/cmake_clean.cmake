file(REMOVE_RECURSE
  "CMakeFiles/clustering.dir/clustering.cpp.o"
  "CMakeFiles/clustering.dir/clustering.cpp.o.d"
  "clustering"
  "clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
