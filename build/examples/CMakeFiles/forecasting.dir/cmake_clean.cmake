file(REMOVE_RECURSE
  "CMakeFiles/forecasting.dir/forecasting.cpp.o"
  "CMakeFiles/forecasting.dir/forecasting.cpp.o.d"
  "forecasting"
  "forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
