# Empty compiler generated dependencies file for arith_test.
# This may be replaced when dependencies are built.
