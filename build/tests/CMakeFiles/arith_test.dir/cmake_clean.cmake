file(REMOVE_RECURSE
  "CMakeFiles/arith_test.dir/arith/adder_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/adder_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/alu_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/alu_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/approx_adder_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/approx_adder_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/energy_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/energy_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/error_metrics_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/error_metrics_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/family_properties_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/family_properties_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/fixed_point_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/fixed_point_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/multiplier_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/multiplier_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/toggle_energy_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/toggle_energy_test.cpp.o.d"
  "CMakeFiles/arith_test.dir/arith/wce_analysis_test.cpp.o"
  "CMakeFiles/arith_test.dir/arith/wce_analysis_test.cpp.o.d"
  "arith_test"
  "arith_test.pdb"
  "arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
