
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/characterize_many_test.cpp" "tests/CMakeFiles/core_test.dir/core/characterize_many_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/characterize_many_test.cpp.o.d"
  "/root/repo/tests/core/guarantees_test.cpp" "tests/CMakeFiles/core_test.dir/core/guarantees_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/guarantees_test.cpp.o.d"
  "/root/repo/tests/core/mode_mix_test.cpp" "tests/CMakeFiles/core_test.dir/core/mode_mix_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/mode_mix_test.cpp.o.d"
  "/root/repo/tests/core/oracle_test.cpp" "tests/CMakeFiles/core_test.dir/core/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/oracle_test.cpp.o.d"
  "/root/repo/tests/core/quality_test.cpp" "tests/CMakeFiles/core_test.dir/core/quality_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/quality_test.cpp.o.d"
  "/root/repo/tests/core/report_io_test.cpp" "tests/CMakeFiles/core_test.dir/core/report_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_io_test.cpp.o.d"
  "/root/repo/tests/core/session_semantics_test.cpp" "tests/CMakeFiles/core_test.dir/core/session_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/session_semantics_test.cpp.o.d"
  "/root/repo/tests/core/session_test.cpp" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "/root/repo/tests/core/strategies_test.cpp" "tests/CMakeFiles/core_test.dir/core/strategies_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/strategies_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/approxit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/approxit_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/approxit_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/approxit_la.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/approxit_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/approxit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
