file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/characterize_many_test.cpp.o"
  "CMakeFiles/core_test.dir/core/characterize_many_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/guarantees_test.cpp.o"
  "CMakeFiles/core_test.dir/core/guarantees_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/mode_mix_test.cpp.o"
  "CMakeFiles/core_test.dir/core/mode_mix_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/oracle_test.cpp.o"
  "CMakeFiles/core_test.dir/core/oracle_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/quality_test.cpp.o"
  "CMakeFiles/core_test.dir/core/quality_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/report_io_test.cpp.o"
  "CMakeFiles/core_test.dir/core/report_io_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/session_semantics_test.cpp.o"
  "CMakeFiles/core_test.dir/core/session_semantics_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/strategies_test.cpp.o"
  "CMakeFiles/core_test.dir/core/strategies_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
