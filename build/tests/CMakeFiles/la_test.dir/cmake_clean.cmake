file(REMOVE_RECURSE
  "CMakeFiles/la_test.dir/la/decomp_test.cpp.o"
  "CMakeFiles/la_test.dir/la/decomp_test.cpp.o.d"
  "CMakeFiles/la_test.dir/la/matrix_test.cpp.o"
  "CMakeFiles/la_test.dir/la/matrix_test.cpp.o.d"
  "CMakeFiles/la_test.dir/la/vector_ops_test.cpp.o"
  "CMakeFiles/la_test.dir/la/vector_ops_test.cpp.o.d"
  "la_test"
  "la_test.pdb"
  "la_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
