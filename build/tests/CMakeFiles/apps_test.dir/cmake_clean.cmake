file(REMOVE_RECURSE
  "CMakeFiles/apps_test.dir/apps/autoregression_test.cpp.o"
  "CMakeFiles/apps_test.dir/apps/autoregression_test.cpp.o.d"
  "CMakeFiles/apps_test.dir/apps/end_to_end_test.cpp.o"
  "CMakeFiles/apps_test.dir/apps/end_to_end_test.cpp.o.d"
  "CMakeFiles/apps_test.dir/apps/gmm_test.cpp.o"
  "CMakeFiles/apps_test.dir/apps/gmm_test.cpp.o.d"
  "CMakeFiles/apps_test.dir/apps/kmeans_test.cpp.o"
  "CMakeFiles/apps_test.dir/apps/kmeans_test.cpp.o.d"
  "CMakeFiles/apps_test.dir/apps/pagerank_test.cpp.o"
  "CMakeFiles/apps_test.dir/apps/pagerank_test.cpp.o.d"
  "apps_test"
  "apps_test.pdb"
  "apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
