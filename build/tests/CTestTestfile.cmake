# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/arith_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
