// ShardRouter: horizontal scale-out of the serving runtime behind the
// svc::Client seam.
//
// One router owns N independent ServiceRuntime shards (each wrapped in
// its InProcessClient) plus ONE shared on-disk ProfileCache tier, and
// implements ServingClient — so the stdin front end, the socket front end
// (NetServer), approxit_top and the benches serve against a sharded tier
// without knowing the topology. The three load-bearing properties:
//
//   Routing       jobs consistent-hash on route_key(spec) — the tenant
//                 plus every execution-relevant spec field — over an
//                 FNV-1a vnode ring (HashRing). All jobs of one routing
//                 key land on ONE shard in submission order, which is
//                 what makes the merged deterministic metrics
//                 shard-count-invariant (see collect_metrics) and keeps
//                 batch-compatible jobs co-located for the micro-batcher.
//                 Consistent hashing keeps reassignment under a
//                 shard-count change to ~1/N of the keyspace.
//   Identity      global job id = local_id * N + shard_index — a
//                 stateless bijection (N=1 is the identity map), decoded
//                 on every by-id call and re-encoded on every event, so
//                 ids are stable for the whole client surface including
//                 streams and event sinks.
//   Determinism   stats()/collect_metrics() merge per-job registries in
//                 (route_key, local id) order — a topology-invariant
//                 total order, because one key's jobs live wholly on one
//                 shard — then the shared-cache counters, then the
//                 integer-valued qos counters. The merged document is
//                 byte-identical across shard counts for the same job
//                 set (caveat: retired-job aggregates fold in completion
//                 order once retention evicts; keep retention ≥ the job
//                 count when gating on byte-identity).
//
// Shard runtimes run with ServiceConfig::shared_cache pointed at the
// router's tier, so a profile characterized on any shard is a warm hit
// from every other shard (single-flight dedupes concurrent computes
// across shards too).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "svc/client.h"
#include "svc/profile_cache.h"
#include "svc/runtime.h"

namespace approxit::svc {

/// The consistent-hash routing key: tenant + every execution-relevant
/// spec field (the report-determinism tuple — deadline and priority are
/// scheduling-only and excluded). Equal keys always route to the same
/// shard, and batch-compatible jobs of a tenant share a key.
std::string route_key(const JobSpec& spec);

/// FNV-1a consistent-hash ring: `vnodes` points per shard, sorted by
/// hash; a key maps to the first ring point at or after its hash
/// (wrapping). Deterministic for a (shards, vnodes) pair.
class HashRing {
 public:
  HashRing(std::size_t shards, std::size_t vnodes);

  /// The shard index `key` routes to.
  std::size_t lookup(std::string_view key) const;

  std::size_t shards() const { return shards_; }

  /// 64-bit FNV-1a.
  static std::uint64_t hash(std::string_view key);

 private:
  std::size_t shards_;
  /// (point hash, shard index), sorted ascending by hash.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

struct ShardRouterConfig {
  /// Shard count (clamped to >= 1).
  std::size_t shards = 2;
  /// Ring points per shard. More vnodes = flatter key distribution.
  std::size_t vnodes = 64;
  /// Template every shard runtime is built from. `cache` configures the
  /// SHARED tier (the shards themselves run inert local caches);
  /// `threads` is per shard; `on_job_event` fires per shard with LOCAL
  /// ids — use add_event_sink for globally-identified events.
  ServiceConfig shard;
};

/// N serving shards + 1 shared profile-cache tier behind ServingClient.
class ShardRouter : public ServingClient {
 public:
  explicit ShardRouter(ShardRouterConfig config = {});
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  /// The shard index `spec` routes to (ring lookup on route_key).
  std::size_t shard_of(const JobSpec& spec) const;
  /// Direct shard access (tests, wait_idle-style plumbing).
  InProcessClient& shard(std::size_t index) { return *shards_[index]; }

  /// The shared characterization tier.
  ProfileCache& profile_cache() { return shared_cache_; }

  /// Summed shard tallies; `cache` read once from the shared tier (the
  /// shards' own inert caches never count).
  ServiceStats service_stats() const;

  /// Merges the deterministic metrics of every shard in (route_key,
  /// local id) order — byte-identical across shard counts (see the file
  /// comment for the retention caveat).
  void collect_metrics(obs::MetricsRegistry& out) const;

  /// Per-tenant scorecards merged across shards in shard order.
  obs::QualityScorecard scorecard() const;

  /// Blocks until every shard's queue is empty and nothing is running.
  void wait_idle();

  // ServingClient.
  std::uint64_t add_event_sink(EventSink sink) override;
  void remove_event_sink(std::uint64_t token) override;
  std::optional<JobSnapshot> snapshot(std::uint64_t id) override;

  // Client.
  std::optional<std::uint64_t> submit(const JobSpec& spec,
                                      std::string* error) override;
  std::unique_ptr<JobStream> submit_stream(const JobSpec& spec,
                                           std::string* error) override;
  std::unique_ptr<JobStream> stream(std::uint64_t id) override;
  std::optional<JobStatus> status(std::uint64_t id) override;
  std::optional<JobStatus> result(std::uint64_t id) override;
  bool cancel(std::uint64_t id) override;
  bool forget(std::uint64_t id) override;
  std::optional<StatsSummary> stats() override;
  std::optional<std::string> stats_export(const StatsExportRequest& request,
                                          std::string* error) override;
  bool shutdown() override;

 private:
  struct Route {
    std::size_t shard = 0;
    std::uint64_t local = 0;
  };

  std::uint64_t encode(std::size_t shard, std::uint64_t local) const;
  /// Nullopt for ids no shard could have issued (local id 0).
  std::optional<Route> decode(std::uint64_t global) const;

  ShardRouterConfig config_;
  obs::MetricsRegistry cache_metrics_;  ///< svc.profile_cache.* (shared tier).
  ProfileCache shared_cache_;
  HashRing ring_;
  std::mutex mutex_;  ///< Guards sinks_ (shard clients have their own).
  std::map<std::uint64_t, EventSink> sinks_;
  std::uint64_t next_sink_token_ = 1;
  obs::MetricsExporter prometheus_exporter_;
  obs::MetricsExporter jsonl_exporter_;
  /// Declared LAST: shard runtimes join their workers before anything the
  /// per-shard event sinks capture is destroyed.
  std::vector<std::unique_ptr<InProcessClient>> shards_;
};

}  // namespace approxit::svc
