#include "svc/shard.h"

#include <algorithm>
#include <utility>

namespace approxit::svc {

std::string route_key(const JobSpec& spec) {
  std::string key;
  key.reserve(spec.tenant.size() + spec.app.size() + spec.dataset.size() +
              spec.strategy.size() + 16);
  key += spec.tenant;
  key += '\x1f';
  key += spec.app;
  key += '\x1f';
  key += spec.dataset;
  key += '\x1f';
  key += spec.strategy;
  key += '\x1f';
  key += std::to_string(spec.max_iterations);
  key += '\x1f';
  key += std::to_string(spec.characterization_iterations);
  key += '\x1f';
  key += spec.keep_trace ? '1' : '0';
  return key;
}

std::uint64_t HashRing::hash(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // FNV-1a mixes the LOW bits well but barely touches the high ones, and
  // the ring's lower_bound ordering lives in the high bits — without a
  // finalizer, near-identical vnode names cluster and shard arcs go badly
  // uneven. Murmur3's fmix64 restores full-width avalanche.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(std::size_t shards, std::size_t vnodes)
    : shards_(shards == 0 ? 1 : shards) {
  if (vnodes == 0) vnodes = 1;
  ring_.reserve(shards_ * vnodes);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Point names are shard-local, so growing the shard count only adds
      // points (existing ones keep their positions): the consistent-hash
      // stability property.
      ring_.emplace_back(
          hash("shard-" + std::to_string(s) + "#" + std::to_string(v)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::lookup(std::string_view key) const {
  const std::uint64_t h = hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

namespace {

/// Translates one shard stream's local job ids into the router's global
/// ids (events and terminal status payloads both).
class ShardStream : public JobStream {
 public:
  ShardStream(std::unique_ptr<JobStream> inner, std::uint64_t global_id,
              std::size_t scale, std::size_t shard)
      : JobStream(global_id),
        inner_(std::move(inner)),
        scale_(scale),
        shard_(shard) {}

  std::optional<StreamEvent> next() override {
    std::optional<StreamEvent> event = inner_->next();
    if (!event) return std::nullopt;
    event->id = event->id * scale_ + shard_;
    if (event->status) {
      event->status->id = event->status->id * scale_ + shard_;
    }
    return event;
  }

 private:
  std::unique_ptr<JobStream> inner_;
  std::size_t scale_;
  std::size_t shard_;
};

}  // namespace

ShardRouter::ShardRouter(ShardRouterConfig config)
    : config_(std::move(config)),
      shared_cache_(config_.shard.cache, &cache_metrics_),
      ring_(config_.shards == 0 ? 1 : config_.shards, config_.vnodes) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ServiceConfig shard_config = config_.shard;
    shard_config.shared_cache = &shared_cache_;
    shards_.push_back(
        std::make_unique<InProcessClient>(std::move(shard_config)));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->add_event_sink([this, i](const JobEvent& event) {
      JobEvent global = event;
      global.id = encode(i, event.id);
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [token, sink] : sinks_) sink(global);
    });
  }
}

ShardRouter::~ShardRouter() {
  // Shard clients join their runtimes' workers on destruction; no sink
  // callback can be in flight after shards_ clears.
  shards_.clear();
}

std::uint64_t ShardRouter::encode(std::size_t shard,
                                  std::uint64_t local) const {
  return local * shards_.size() + shard;
}

std::optional<ShardRouter::Route> ShardRouter::decode(
    std::uint64_t global) const {
  Route route;
  route.shard = static_cast<std::size_t>(global % shards_.size());
  route.local = global / shards_.size();
  if (route.local == 0) return std::nullopt;  // Locals start at 1.
  return route;
}

std::size_t ShardRouter::shard_of(const JobSpec& spec) const {
  return ring_.lookup(route_key(spec));
}

std::uint64_t ShardRouter::add_event_sink(EventSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_sink_token_++;
  sinks_[token] = std::move(sink);
  return token;
}

void ShardRouter::remove_event_sink(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.erase(token);
}

std::optional<JobSnapshot> ShardRouter::snapshot(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return std::nullopt;
  std::optional<JobSnapshot> snapshot =
      shards_[route->shard]->snapshot(route->local);
  if (snapshot) snapshot->id = id;
  return snapshot;
}

std::optional<std::uint64_t> ShardRouter::submit(const JobSpec& spec,
                                                 std::string* error) {
  const std::size_t shard = shard_of(spec);
  const std::optional<std::uint64_t> local =
      shards_[shard]->submit(spec, error);
  if (!local) return std::nullopt;
  return encode(shard, *local);
}

std::unique_ptr<JobStream> ShardRouter::submit_stream(const JobSpec& spec,
                                                      std::string* error) {
  const std::size_t shard = shard_of(spec);
  std::unique_ptr<JobStream> inner =
      shards_[shard]->submit_stream(spec, error);
  if (inner == nullptr) return nullptr;
  const std::uint64_t global = encode(shard, inner->id());
  return std::make_unique<ShardStream>(std::move(inner), global,
                                       shards_.size(), shard);
}

std::unique_ptr<JobStream> ShardRouter::stream(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return nullptr;
  std::unique_ptr<JobStream> inner =
      shards_[route->shard]->stream(route->local);
  if (inner == nullptr) return nullptr;
  return std::make_unique<ShardStream>(std::move(inner), id, shards_.size(),
                                       route->shard);
}

std::optional<JobStatus> ShardRouter::status(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return std::nullopt;
  std::optional<JobStatus> status = shards_[route->shard]->status(route->local);
  if (status) status->id = id;
  return status;
}

std::optional<JobStatus> ShardRouter::result(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return std::nullopt;
  std::optional<JobStatus> status = shards_[route->shard]->result(route->local);
  if (status) status->id = id;
  return status;
}

bool ShardRouter::cancel(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return false;
  return shards_[route->shard]->cancel(route->local);
}

bool ShardRouter::forget(std::uint64_t id) {
  const std::optional<Route> route = decode(id);
  if (!route) return false;
  return shards_[route->shard]->forget(route->local);
}

ServiceStats ShardRouter::service_stats() const {
  ServiceStats total;
  for (const auto& shard : shards_) {
    const ServiceStats stats = shard->runtime().stats();
    total.submitted += stats.submitted;
    total.rejected_queue_full += stats.rejected_queue_full;
    total.rejected_tenant_cap += stats.rejected_tenant_cap;
    total.rejected_bad_request += stats.rejected_bad_request;
    total.rejected_rate_limited += stats.rejected_rate_limited;
    total.shed += stats.shed;
    total.degraded += stats.degraded;
    total.retries += stats.retries;
    total.queued += stats.queued;
    total.running += stats.running;
    total.completed += stats.completed;
    total.failed += stats.failed;
    total.cancelled += stats.cancelled;
    total.deadline_exceeded += stats.deadline_exceeded;
    total.batch_groups += stats.batch_groups;
    total.batch_jobs += stats.batch_jobs;
  }
  // Every shard's ServiceStats::cache reads the SAME shared tier; take it
  // once instead of summing N copies.
  total.cache = shared_cache_.stats();
  return total;
}

void ShardRouter::collect_metrics(obs::MetricsRegistry& out) const {
  std::vector<ServiceRuntime::MetricsPart> parts;
  obs::MetricsRegistry retired;
  obs::MetricsRegistry qos;
  for (const auto& shard : shards_) {
    shard->runtime().export_metric_parts(parts, retired, qos);
  }
  // (route_key, local id) is a topology-invariant total order: one key's
  // jobs live wholly on one shard with local ids in submission order, so
  // the FP fold sequence of every per-tenant series is identical for any
  // shard count. Same macro order as ServiceRuntime::collect_metrics:
  // retired aggregate, per-job registries, cache counters, qos counters.
  std::vector<std::pair<std::string, std::size_t>> order;
  order.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    order.emplace_back(route_key(parts[i].spec), i);
  }
  std::sort(order.begin(), order.end(),
            [&](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return parts[a.second].id < parts[b.second].id;
            });
  out.merge(retired);
  for (const auto& [key, index] : order) {
    out.merge(*parts[index].metrics);
  }
  out.merge(cache_metrics_);
  out.merge(qos);
}

obs::QualityScorecard ShardRouter::scorecard() const {
  obs::QualityScorecard merged(config_.shard.telemetry);
  for (const auto& shard : shards_) {
    merged.merge(shard->runtime().scorecard());
  }
  return merged;
}

void ShardRouter::wait_idle() {
  for (const auto& shard : shards_) shard->runtime().wait_idle();
}

std::optional<StatsSummary> ShardRouter::stats() {
  obs::MetricsRegistry merged;
  collect_metrics(merged);
  return stats_summary_from(service_stats(), merged.to_json());
}

std::optional<std::string> ShardRouter::stats_export(
    const StatsExportRequest& request, std::string* error) {
  if (request.format == "scorecard") {
    return scorecard().to_json();
  }
  if (request.format != "prometheus" && request.format != "jsonl") {
    if (error != nullptr) *error = "unknown_format: " + request.format;
    return std::nullopt;
  }
  if (request.mode != "full" && request.mode != "delta") {
    if (error != nullptr) *error = "unknown_mode: " + request.mode;
    return std::nullopt;
  }
  obs::MetricsRegistry merged;
  collect_metrics(merged);
  if (!request.deterministic) {
    merged.gauge("svc.shard.count")
        .set(static_cast<double>(shards_.size()));
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      merged.merge(shards_[i]->runtime().timing_metrics());
      // Per-shard placement/occupancy gauges, labeled by shard index —
      // how approxit_top and Prometheus see routing balance.
      const ServiceStats stats = shards_[i]->runtime().stats();
      const std::string label = std::to_string(i);
      const auto set = [&](std::string_view base, double value) {
        merged.gauge(obs::labeled(base, {{"shard", label}})).set(value);
      };
      set("svc.shard.submitted", static_cast<double>(stats.submitted));
      set("svc.shard.completed", static_cast<double>(stats.completed));
      set("svc.shard.queued", static_cast<double>(stats.queued));
      set("svc.shard.running", static_cast<double>(stats.running));
      set("svc.shard.batch_groups", static_cast<double>(stats.batch_groups));
      set("svc.shard.batch_jobs", static_cast<double>(stats.batch_jobs));
    }
    scorecard().export_to(merged);
  }
  const auto wire_format = request.format == "prometheus"
                               ? obs::MetricsExporter::Format::kPrometheus
                               : obs::MetricsExporter::Format::kJsonLines;
  obs::MetricsExporter& exporter = request.format == "prometheus"
                                       ? prometheus_exporter_
                                       : jsonl_exporter_;
  return request.mode == "delta" ? exporter.export_delta(merged, wire_format)
                                 : exporter.export_full(merged, wire_format);
}

bool ShardRouter::shutdown() {
  for (const auto& shard : shards_) shard->shutdown();
  return true;
}

}  // namespace approxit::svc
