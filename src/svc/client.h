// svc::Client — ONE client API over two transports.
//
// Everything that talks to a ServiceRuntime (the stdin front end, the
// socket front end, approxit_top, the service benches, user code) goes
// through this interface, so submit/status/result/stream/stats have
// exactly one encode/decode path (svc/protocol.h) regardless of whether
// the runtime is in this process or behind a socket:
//
//  - InProcessClient owns a ServiceRuntime and calls it directly. It also
//    owns the runtime's job-event hook and fans events out to stream
//    subscriptions (and, for the socket server, to global event sinks) —
//    the single owner of ServiceConfig::on_job_event.
//  - LineClient speaks wire v2 over a pair of file descriptors (a
//    connected socket, or pipes to an approxit_serve child). One
//    outstanding request at a time; responses are matched by request
//    order, pushed event lines in between are routed to the active
//    stream (a stream must be drained or destroyed before the next
//    request on the same connection).
//
// Streaming is pull-based: submit_stream()/stream() return a JobStream
// whose next() blocks for the job's next lifecycle event and returns
// nullopt once the terminal event has been delivered. submit_stream
// subscribes AT ADMISSION, so the queued event is never missed; stream()
// on an existing job replays the job's current state as a synthetic
// first event and then tails live events (non-terminal events are
// at-least-once: a replayed state can duplicate a live event, states
// never regress).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "svc/protocol.h"
#include "svc/runtime.h"

namespace approxit::svc {

/// Parameters of a stats export (the "stats" op's format fold; see
/// DESIGN §12 — "stats_export" survives only as a wire alias).
struct StatsExportRequest {
  std::string format = "prometheus";  ///< prometheus | jsonl | scorecard.
  std::string mode = "full";          ///< full | delta (delta per format).
  /// Restrict to the thread-count-invariant collect_metrics aggregate
  /// (drop wall-clock timings and scorecard gauges).
  bool deterministic = false;
};

/// A live event stream of one job (see the header comment). next() blocks;
/// nullopt after the terminal event (or on transport failure).
class JobStream {
 public:
  virtual ~JobStream() = default;
  virtual std::optional<StreamEvent> next() = 0;
  std::uint64_t id() const { return id_; }

 protected:
  explicit JobStream(std::uint64_t id) : id_(id) {}
  std::uint64_t id_;
};

/// The unified client interface. All blocking calls (result, stream
/// drains) block the calling thread only.
class Client {
 public:
  virtual ~Client() = default;

  /// Admits a job; nullopt with `error` set on rejection.
  virtual std::optional<std::uint64_t> submit(const JobSpec& spec,
                                              std::string* error = nullptr) = 0;
  /// Admits a job with a stream subscription attached at admission (the
  /// queued event is guaranteed). nullptr with `error` set on rejection.
  virtual std::unique_ptr<JobStream> submit_stream(
      const JobSpec& spec, std::string* error = nullptr) = 0;
  /// Subscribes to an existing job. nullptr for unknown ids.
  virtual std::unique_ptr<JobStream> stream(std::uint64_t id) = 0;

  /// Point-in-time status; nullopt for unknown ids. Never carries the
  /// report (ask result()).
  virtual std::optional<JobStatus> status(std::uint64_t id) = 0;
  /// Blocks until terminal, report attached; nullopt for unknown ids.
  virtual std::optional<JobStatus> result(std::uint64_t id) = 0;

  virtual bool cancel(std::uint64_t id) = 0;
  virtual bool forget(std::uint64_t id) = 0;

  /// The service tallies plus the deterministic merged metrics.
  virtual std::optional<StatsSummary> stats() = 0;
  /// A formatted metrics/scorecard export; nullopt with `error` set on
  /// unknown format/mode. Delta scrapes keep one baseline per format per
  /// server (LineClient) or per client (InProcessClient).
  virtual std::optional<std::string> stats_export(
      const StatsExportRequest& request, std::string* error = nullptr) = 0;

  /// Drains and stops the service. True when acknowledged.
  virtual bool shutdown() = 0;
};

/// What the socket front end (NetServer) needs beyond Client: the global
/// event fan-out it feeds its subscriptions from, and non-blocking
/// point-in-time snapshots (full report attached) for result/stream
/// parking. Both in-process serving tiers — the single InProcessClient
/// and the sharded ShardRouter — implement this, so the networked front
/// end serves either without knowing the topology behind it.
class ServingClient : public Client {
 public:
  /// `sink` sees EVERY job's lifecycle events, under the same contract as
  /// ServiceConfig::on_job_event (cheap, no calls back into the runtime
  /// or this client). Returns a token for remove_event_sink.
  using EventSink = std::function<void(const JobEvent&)>;
  virtual std::uint64_t add_event_sink(EventSink sink) = 0;
  virtual void remove_event_sink(std::uint64_t token) = 0;

  /// Point-in-time snapshot WITH the report — status() for front ends
  /// that render terminal results without blocking. Nullopt for unknown
  /// (or retired) ids.
  virtual std::optional<JobSnapshot> snapshot(std::uint64_t id) = 0;
};

/// In-process transport: owns the runtime, the job-event hook and the
/// stats exporters (one delta baseline per format).
class InProcessClient : public ServingClient {
 public:
  explicit InProcessClient(ServiceConfig config = {});
  ~InProcessClient() override;

  InProcessClient(const InProcessClient&) = delete;
  InProcessClient& operator=(const InProcessClient&) = delete;

  /// The owned runtime — for callers that need collect_metrics,
  /// wait_idle or the profile cache directly (the Client surface stays
  /// the only WIRE path).
  ServiceRuntime& runtime() { return *runtime_; }

  std::uint64_t add_event_sink(EventSink sink) override;
  void remove_event_sink(std::uint64_t token) override;
  std::optional<JobSnapshot> snapshot(std::uint64_t id) override;

  std::optional<std::uint64_t> submit(const JobSpec& spec,
                                      std::string* error) override;
  std::unique_ptr<JobStream> submit_stream(const JobSpec& spec,
                                           std::string* error) override;
  std::unique_ptr<JobStream> stream(std::uint64_t id) override;
  std::optional<JobStatus> status(std::uint64_t id) override;
  std::optional<JobStatus> result(std::uint64_t id) override;
  bool cancel(std::uint64_t id) override;
  bool forget(std::uint64_t id) override;
  std::optional<StatsSummary> stats() override;
  std::optional<std::string> stats_export(const StatsExportRequest& request,
                                          std::string* error) override;
  bool shutdown() override;

 private:
  friend class InProcessStream;

  /// One stream subscription. match_all buffers every event until the
  /// submit returns and bind_subscription() pins the id (that window is
  /// how submit_stream never misses its queued event).
  struct Subscription {
    std::uint64_t id = 0;
    bool match_all = false;
    std::deque<JobEvent> events;
  };

  void route_event(const JobEvent& event);
  std::shared_ptr<Subscription> subscribe_locked_id(std::uint64_t id);
  std::shared_ptr<Subscription> subscribe_all();
  void bind_subscription(const std::shared_ptr<Subscription>& subscription,
                         std::uint64_t id);
  void unsubscribe(const Subscription* subscription);

  std::mutex mutex_;  ///< Guards subscriptions_/sinks_ (not the runtime).
  std::condition_variable events_cv_;
  std::vector<std::shared_ptr<Subscription>> subscriptions_;
  std::map<std::uint64_t, EventSink> sinks_;
  std::uint64_t next_sink_token_ = 1;
  obs::MetricsExporter prometheus_exporter_;
  obs::MetricsExporter jsonl_exporter_;
  /// Declared LAST: destroyed first, which joins the workers and
  /// guarantees route_event never runs on a dead client.
  std::unique_ptr<ServiceRuntime> runtime_;
};

/// Socket/pipe transport: wire v2 over a read fd + write fd pair.
class LineClient : public Client {
 public:
  /// `read_fd`/`write_fd` may be the same fd (a connected socket) or
  /// distinct (pipes). Closed on destruction when `owns_fds`.
  LineClient(int read_fd, int write_fd, bool owns_fds = true);
  ~LineClient() override;

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// False after a transport failure (peer closed, oversize line, write
  /// error); every subsequent call fails fast.
  bool ok() const { return !broken_; }
  const std::string& transport_error() const { return transport_error_; }
  /// The proto the server announced in its hello event, once seen.
  std::optional<int> server_proto() const { return server_proto_; }

  std::optional<std::uint64_t> submit(const JobSpec& spec,
                                      std::string* error) override;
  std::unique_ptr<JobStream> submit_stream(const JobSpec& spec,
                                           std::string* error) override;
  std::unique_ptr<JobStream> stream(std::uint64_t id) override;
  std::optional<JobStatus> status(std::uint64_t id) override;
  std::optional<JobStatus> result(std::uint64_t id) override;
  bool cancel(std::uint64_t id) override;
  bool forget(std::uint64_t id) override;
  std::optional<StatsSummary> stats() override;
  std::optional<std::string> stats_export(const StatsExportRequest& request,
                                          std::string* error) override;
  bool shutdown() override;

  /// Sends a raw request line and returns the raw response line —
  /// the escape hatch approxit_client's raw mode uses. Pushed events
  /// before the response are skipped (hello recorded).
  std::optional<std::string> round_trip_raw(const std::string& line);

 private:
  friend class LineStream;

  bool send_line(const std::string& line);
  /// Next full line from the fd (blocking); nullopt on EOF/error.
  std::optional<std::string> read_line();
  /// Reads until a RESPONSE line (skipping events), parses it with
  /// allow_raw_nested.
  std::optional<WireObject> round_trip(const std::string& request);
  /// Reads the next line and parses it (event or response).
  std::optional<WireObject> next_object();
  void fail_transport(const std::string& reason);

  int read_fd_;
  int write_fd_;
  bool owns_fds_;
  bool broken_ = false;
  std::string transport_error_;
  std::optional<int> server_proto_;
  std::string buffer_;  ///< Bytes read but not yet consumed as lines.
};

/// Executes one SYNCHRONOUS wire op against `client` and returns the
/// encoded response line: hello, plain submit, status, cancel, forget,
/// stats (+ the stats_export alias), unknown ops, and proto errors.
/// Returns nullopt for the ops a front end must run itself because they
/// block or change connection state: result, stream, submit+stream,
/// shutdown. Both the stdin and the socket front ends route through this,
/// so the two modes cannot drift apart.
std::optional<std::string> dispatch_sync(Client& client,
                                         const WireObject& request);

}  // namespace approxit::svc
