#include "svc/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace approxit::svc {

// ---------------------------------------------------------------------------
// InProcessClient

namespace {

/// Lifts a runtime JobEvent into the wire-facing StreamEvent shape
/// (terminal status attached by the caller, which can reach the runtime).
StreamEvent lift_event(const JobEvent& event) {
  StreamEvent out;
  out.event = std::string(job_event_kind_name(event.kind));
  out.id = event.id;
  out.tenant = event.tenant;
  out.state = std::string(job_state_name(event.state));
  out.attempt = event.attempt;
  out.iteration = event.iteration;
  out.objective = event.objective;
  return out;
}

}  // namespace

/// Pull side of one in-process subscription. next() converts buffered
/// JobEvents on the CALLER's thread, so fetching the terminal status from
/// the runtime here is safe (the hook itself never re-enters the runtime).
class InProcessStream : public JobStream {
 public:
  InProcessStream(InProcessClient& client,
                  std::shared_ptr<InProcessClient::Subscription> subscription,
                  std::optional<StreamEvent> replay)
      : JobStream(subscription->id),
        client_(client),
        subscription_(std::move(subscription)),
        replay_(std::move(replay)) {}

  ~InProcessStream() override { client_.unsubscribe(subscription_.get()); }

  std::optional<StreamEvent> next() override {
    if (finished_) return std::nullopt;
    if (replay_) {
      StreamEvent event = std::move(*replay_);
      replay_.reset();
      if (event.terminal()) finished_ = true;
      return event;
    }
    JobEvent raw;
    {
      std::unique_lock<std::mutex> lock(client_.mutex_);
      client_.events_cv_.wait(
          lock, [&] { return !subscription_->events.empty(); });
      raw = std::move(subscription_->events.front());
      subscription_->events.pop_front();
    }
    StreamEvent event = lift_event(raw);
    if (raw.kind == JobEvent::Kind::kTerminal) {
      finished_ = true;
      // Full payload (report included) for the terminal event; jobs
      // retired between the event and this fetch fall back to the
      // event's own fields.
      if (const auto snapshot = client_.runtime_->status(raw.id)) {
        event.status = job_status_from_snapshot(*snapshot);
      } else {
        JobStatus status;
        status.id = raw.id;
        status.state = raw.state;
        status.attempts = raw.attempt + 1;
        event.status = std::move(status);
      }
    }
    return event;
  }

 private:
  InProcessClient& client_;
  std::shared_ptr<InProcessClient::Subscription> subscription_;
  std::optional<StreamEvent> replay_;
  bool finished_ = false;
};

InProcessClient::InProcessClient(ServiceConfig config) {
  // Chain, never replace: a caller-provided hook keeps firing after ours.
  const std::function<void(const JobEvent&)> previous = config.on_job_event;
  config.on_job_event = [this, previous](const JobEvent& event) {
    route_event(event);
    if (previous) previous(event);
  };
  runtime_ = std::make_unique<ServiceRuntime>(std::move(config));
}

InProcessClient::~InProcessClient() {
  // Joins the workers; no route_event can be in flight afterwards.
  runtime_.reset();
}

void InProcessClient::route_event(const JobEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool delivered = false;
  for (const auto& subscription : subscriptions_) {
    if (subscription->match_all || subscription->id == event.id) {
      subscription->events.push_back(event);
      delivered = true;
    }
  }
  if (delivered) events_cv_.notify_all();
  for (const auto& [token, sink] : sinks_) sink(event);
}

std::shared_ptr<InProcessClient::Subscription>
InProcessClient::subscribe_locked_id(std::uint64_t id) {
  auto subscription = std::make_shared<Subscription>();
  subscription->id = id;
  std::lock_guard<std::mutex> lock(mutex_);
  subscriptions_.push_back(subscription);
  return subscription;
}

std::shared_ptr<InProcessClient::Subscription>
InProcessClient::subscribe_all() {
  auto subscription = std::make_shared<Subscription>();
  subscription->match_all = true;
  std::lock_guard<std::mutex> lock(mutex_);
  subscriptions_.push_back(subscription);
  return subscription;
}

void InProcessClient::bind_subscription(
    const std::shared_ptr<Subscription>& subscription, std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscription->id = id;
  subscription->match_all = false;
  // Drop the other jobs' events buffered during the match-all window.
  auto& events = subscription->events;
  events.erase(std::remove_if(events.begin(), events.end(),
                              [id](const JobEvent& event) {
                                return event.id != id;
                              }),
               events.end());
}

void InProcessClient::unsubscribe(const Subscription* subscription) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [subscription](const auto& entry) {
                       return entry.get() == subscription;
                     }),
      subscriptions_.end());
}

std::uint64_t InProcessClient::add_event_sink(EventSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_sink_token_++;
  sinks_[token] = std::move(sink);
  return token;
}

void InProcessClient::remove_event_sink(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.erase(token);
}

std::optional<std::uint64_t> InProcessClient::submit(const JobSpec& spec,
                                                     std::string* error) {
  return runtime_->submit(spec, error);
}

std::unique_ptr<JobStream> InProcessClient::submit_stream(
    const JobSpec& spec, std::string* error) {
  // Subscribe BEFORE admission (match-all window), so the queued event —
  // fired inside submit() — is already being captured.
  auto subscription = subscribe_all();
  const std::optional<std::uint64_t> id = runtime_->submit(spec, error);
  if (!id) {
    unsubscribe(subscription.get());
    return nullptr;
  }
  bind_subscription(subscription, *id);
  return std::make_unique<InProcessStream>(*this, std::move(subscription),
                                           std::nullopt);
}

std::unique_ptr<JobStream> InProcessClient::stream(std::uint64_t id) {
  // Subscribe first, then snapshot: any event between the two shows up in
  // the queue as a (harmless) duplicate of the replayed state; an event
  // can never be LOST to the gap.
  auto subscription = subscribe_locked_id(id);
  const std::optional<JobSnapshot> snapshot = runtime_->status(id);
  if (!snapshot) {
    unsubscribe(subscription.get());
    return nullptr;
  }
  StreamEvent replay;
  replay.id = id;
  replay.tenant = snapshot->spec.tenant;
  replay.state = std::string(job_state_name(snapshot->state));
  replay.attempt = snapshot->attempts - 1;
  if (job_state_terminal(snapshot->state)) {
    replay.event = "terminal";
    replay.status = job_status_from_snapshot(*snapshot);
  } else {
    replay.event = snapshot->state == JobState::kRunning ? "running"
                                                         : "queued";
  }
  return std::make_unique<InProcessStream>(*this, std::move(subscription),
                                           std::move(replay));
}

std::optional<JobSnapshot> InProcessClient::snapshot(std::uint64_t id) {
  return runtime_->status(id);
}

std::optional<JobStatus> InProcessClient::status(std::uint64_t id) {
  const std::optional<JobSnapshot> snapshot = runtime_->status(id);
  if (!snapshot) return std::nullopt;
  JobStatus status = job_status_from_snapshot(*snapshot);
  // The status surface never carries the report (transport parity with
  // the wire's status op); result() does.
  status.report_json.clear();
  return status;
}

std::optional<JobStatus> InProcessClient::result(std::uint64_t id) {
  const std::optional<JobSnapshot> snapshot = runtime_->result(id);
  if (!snapshot) return std::nullopt;
  return job_status_from_snapshot(*snapshot);
}

bool InProcessClient::cancel(std::uint64_t id) { return runtime_->cancel(id); }

bool InProcessClient::forget(std::uint64_t id) { return runtime_->forget(id); }

std::optional<StatsSummary> InProcessClient::stats() {
  obs::MetricsRegistry merged;
  runtime_->collect_metrics(merged);
  return stats_summary_from(runtime_->stats(), merged.to_json());
}

std::optional<std::string> InProcessClient::stats_export(
    const StatsExportRequest& request, std::string* error) {
  if (request.format == "scorecard") {
    return runtime_->scorecard_json();
  }
  if (request.format != "prometheus" && request.format != "jsonl") {
    if (error != nullptr) *error = "unknown_format: " + request.format;
    return std::nullopt;
  }
  if (request.mode != "full" && request.mode != "delta") {
    if (error != nullptr) *error = "unknown_mode: " + request.mode;
    return std::nullopt;
  }
  obs::MetricsRegistry merged;
  runtime_->collect_metrics(merged);
  if (!request.deterministic) {
    merged.merge(runtime_->timing_metrics());
    runtime_->scorecard().export_to(merged);
  }
  const auto wire_format =
      request.format == "prometheus"
          ? obs::MetricsExporter::Format::kPrometheus
          : obs::MetricsExporter::Format::kJsonLines;
  // One exporter per format keeps each format's delta-scrape sequence on
  // its own monotonic baseline.
  obs::MetricsExporter& exporter = request.format == "prometheus"
                                       ? prometheus_exporter_
                                       : jsonl_exporter_;
  return request.mode == "delta" ? exporter.export_delta(merged, wire_format)
                                 : exporter.export_full(merged, wire_format);
}

bool InProcessClient::shutdown() {
  runtime_->shutdown();
  return true;
}

// ---------------------------------------------------------------------------
// LineClient

/// Pull side of one wire stream: decodes pushed event lines until (and
/// including) the terminal event, then — for the explicit stream op —
/// consumes the trailing {"ok":true,"op":"stream",...} response that
/// keeps the request->response pipeline aligned.
class LineStream : public JobStream {
 public:
  LineStream(LineClient& client, std::uint64_t id, bool expect_final,
             std::optional<StreamEvent> pending)
      : JobStream(id),
        client_(client),
        expect_final_(expect_final),
        pending_(std::move(pending)) {}

  /// Destroying an undrained stream DRAINS it (blocking until the job's
  /// terminal event) so the connection stays request-aligned — cancel the
  /// job first to abandon a long run early.
  ~LineStream() override {
    while (next()) {
    }
  }

  std::optional<StreamEvent> next() override {
    if (finished_) return std::nullopt;
    if (terminal_delivered_) {
      // Consume the final stream response (events, in theory, skipped).
      while (expect_final_) {
        const std::optional<WireObject> object = client_.next_object();
        if (!object || !is_event_line(*object)) break;
      }
      finished_ = true;
      return std::nullopt;
    }
    if (pending_) {
      StreamEvent event = std::move(*pending_);
      pending_.reset();
      if (event.terminal()) terminal_delivered_ = true;
      return event;
    }
    while (true) {
      const std::optional<WireObject> object = client_.next_object();
      if (!object) {
        finished_ = true;
        return std::nullopt;
      }
      if (!is_event_line(*object)) {
        // A response before the terminal event: the server ended the
        // stream early (e.g. it is shutting down).
        finished_ = true;
        return std::nullopt;
      }
      std::optional<StreamEvent> event = stream_event_from_wire(*object);
      if (!event) continue;  // Tolerate unknown future event shapes.
      if (event->event == "hello") {
        client_.server_proto_ = event->proto;
        continue;
      }
      if (event->terminal()) terminal_delivered_ = true;
      return event;
    }
  }

 private:
  LineClient& client_;
  bool expect_final_;
  std::optional<StreamEvent> pending_;
  bool terminal_delivered_ = false;
  bool finished_ = false;
};

LineClient::LineClient(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}

LineClient::~LineClient() {
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
}

void LineClient::fail_transport(const std::string& reason) {
  broken_ = true;
  if (transport_error_.empty()) transport_error_ = reason;
}

bool LineClient::send_line(const std::string& line) {
  if (broken_) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL suppresses SIGPIPE on sockets; pipes (ENOTSOCK) fall
    // back to write(), where the caller process ignores SIGPIPE.
    ssize_t n = ::send(write_fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && (errno == ENOTSOCK || errno == EOPNOTSUPP)) {
      n = ::write(write_fd_, framed.data() + sent, framed.size() - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_transport(std::string("write: ") + std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineClient::read_line() {
  if (broken_) return std::nullopt;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (buffer_.size() > kMaxResponseLine) {
      fail_transport("oversize line from server");
      return std::nullopt;
    }
    char chunk[65536];
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_transport(std::string("read: ") + std::strerror(errno));
      return std::nullopt;
    }
    if (n == 0) {
      fail_transport("server closed the connection");
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<WireObject> LineClient::next_object() {
  while (true) {
    const std::optional<std::string> line = read_line();
    if (!line) return std::nullopt;
    if (line->empty()) continue;
    std::string parse_error;
    std::optional<WireObject> object =
        parse_wire_object(*line, &parse_error, /*allow_raw_nested=*/true);
    if (!object) {
      fail_transport("malformed line from server: " + parse_error);
      return std::nullopt;
    }
    return object;
  }
}

std::optional<WireObject> LineClient::round_trip(const std::string& request) {
  if (!send_line(request)) return std::nullopt;
  while (true) {
    std::optional<WireObject> object = next_object();
    if (!object) return std::nullopt;
    if (is_event_line(*object)) {
      // Unsolicited push (the accept-time hello, or a stale stream tail).
      if (object->get_string("event") == "hello") {
        server_proto_ = static_cast<int>(object->get_int("proto", 1));
      }
      continue;
    }
    return object;
  }
}

std::optional<std::string> LineClient::round_trip_raw(
    const std::string& line) {
  // Same skip-events discipline as round_trip, but the raw line comes
  // back unparsed (the parse only locates the response).
  if (!send_line(line)) return std::nullopt;
  while (true) {
    const std::optional<std::string> received = read_line();
    if (!received) return std::nullopt;
    if (received->empty()) continue;
    const std::optional<WireObject> object =
        parse_wire_object(*received, nullptr, /*allow_raw_nested=*/true);
    if (object && is_event_line(*object)) {
      if (object->get_string("event") == "hello") {
        server_proto_ = static_cast<int>(object->get_int("proto", 1));
      }
      continue;
    }
    return received;
  }
}

std::optional<std::uint64_t> LineClient::submit(const JobSpec& spec,
                                                std::string* error) {
  WireWriter request;
  request.field("op", "submit")
      .field("proto", static_cast<std::int64_t>(kProtoVersion));
  job_spec_to_wire(spec, request);
  const std::optional<WireObject> response = round_trip(request.str());
  if (!response) {
    if (error != nullptr) *error = transport_error_;
    return std::nullopt;
  }
  if (!response->get_bool("ok", false)) {
    if (error != nullptr) *error = response->get_string("error");
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(response->get_int("id", 0));
}

std::unique_ptr<JobStream> LineClient::submit_stream(const JobSpec& spec,
                                                     std::string* error) {
  WireWriter request;
  request.field("op", "submit")
      .field("proto", static_cast<std::int64_t>(kProtoVersion))
      .field("stream", true);
  job_spec_to_wire(spec, request);
  const std::optional<WireObject> response = round_trip(request.str());
  if (!response) {
    if (error != nullptr) *error = transport_error_;
    return nullptr;
  }
  if (!response->get_bool("ok", false)) {
    if (error != nullptr) *error = response->get_string("error");
    return nullptr;
  }
  const auto id = static_cast<std::uint64_t>(response->get_int("id", 0));
  return std::make_unique<LineStream>(*this, id, /*expect_final=*/false,
                                      std::nullopt);
}

std::unique_ptr<JobStream> LineClient::stream(std::uint64_t id) {
  WireWriter request;
  request.field("op", "stream")
      .field("proto", static_cast<std::int64_t>(kProtoVersion))
      .field("id", static_cast<std::int64_t>(id));
  if (!send_line(request.str())) return nullptr;
  // First line decides: an event opens the stream (the replayed current
  // state), a response is the unknown-job rejection.
  while (true) {
    std::optional<WireObject> object = next_object();
    if (!object) return nullptr;
    if (!is_event_line(*object)) return nullptr;  // {"ok":false,...}
    std::optional<StreamEvent> event = stream_event_from_wire(*object);
    if (!event) continue;
    if (event->event == "hello") {
      server_proto_ = event->proto;
      continue;
    }
    return std::make_unique<LineStream>(*this, id, /*expect_final=*/true,
                                        std::move(event));
  }
}

namespace {

std::string id_request(std::string_view op, std::uint64_t id) {
  WireWriter request;
  request.field("op", op)
      .field("proto", static_cast<std::int64_t>(kProtoVersion))
      .field("id", static_cast<std::int64_t>(id));
  return request.str();
}

}  // namespace

std::optional<JobStatus> LineClient::status(std::uint64_t id) {
  const std::optional<WireObject> response =
      round_trip(id_request("status", id));
  if (!response || !response->get_bool("ok", false)) return std::nullopt;
  return job_status_from_wire(*response);
}

std::optional<JobStatus> LineClient::result(std::uint64_t id) {
  const std::optional<WireObject> response =
      round_trip(id_request("result", id));
  if (!response || !response->get_bool("ok", false)) return std::nullopt;
  return job_status_from_wire(*response);
}

bool LineClient::cancel(std::uint64_t id) {
  const std::optional<WireObject> response =
      round_trip(id_request("cancel", id));
  return response && response->get_bool("ok", false);
}

bool LineClient::forget(std::uint64_t id) {
  const std::optional<WireObject> response =
      round_trip(id_request("forget", id));
  return response && response->get_bool("ok", false);
}

std::optional<StatsSummary> LineClient::stats() {
  WireWriter request;
  request.field("op", "stats")
      .field("proto", static_cast<std::int64_t>(kProtoVersion));
  const std::optional<WireObject> response = round_trip(request.str());
  if (!response || !response->get_bool("ok", false)) return std::nullopt;
  return stats_summary_from_wire(*response);
}

std::optional<std::string> LineClient::stats_export(
    const StatsExportRequest& request, std::string* error) {
  WireWriter wire;
  wire.field("op", "stats")
      .field("proto", static_cast<std::int64_t>(kProtoVersion))
      .field("format", request.format)
      .field("mode", request.mode);
  if (request.deterministic) wire.field("deterministic", true);
  const std::optional<WireObject> response = round_trip(wire.str());
  if (!response) {
    if (error != nullptr) *error = transport_error_;
    return std::nullopt;
  }
  if (!response->get_bool("ok", false)) {
    if (error != nullptr) *error = response->get_string("error");
    return std::nullopt;
  }
  return response->get_string(request.format == "scorecard" ? "scorecard"
                                                            : "content");
}

bool LineClient::shutdown() {
  WireWriter request;
  request.field("op", "shutdown")
      .field("proto", static_cast<std::int64_t>(kProtoVersion));
  const std::optional<WireObject> response = round_trip(request.str());
  return response && response->get_bool("ok", false);
}

// ---------------------------------------------------------------------------
// Shared synchronous dispatch

std::optional<std::string> dispatch_sync(Client& client,
                                         const WireObject& request) {
  const std::string op = request.get_string("op");
  if (const std::optional<std::string> proto_error = check_proto(request)) {
    return encode_error(op, *proto_error);
  }
  switch (classify_op(request)) {
    case OpKind::kHello: {
      WireWriter response;
      response.field("ok", true)
          .field("op", op)
          .field("proto", static_cast<std::int64_t>(kProtoVersion))
          .field("service", "approxit");
      return response.str();
    }
    case OpKind::kSubmit: {
      std::string error;
      const std::optional<std::uint64_t> id =
          client.submit(job_spec_from_wire(request), &error);
      if (!id) return encode_error(op, error);
      WireWriter response;
      response.field("ok", true).field("op", op).field(
          "id", static_cast<std::int64_t>(*id));
      return response.str();
    }
    case OpKind::kStatus: {
      const auto id = static_cast<std::uint64_t>(request.get_int("id", 0));
      const std::optional<JobStatus> status = client.status(id);
      if (!status) return encode_error(op, "unknown_job");
      return encode_status_response(op, *status, /*include_report=*/false);
    }
    case OpKind::kCancel: {
      const auto id = static_cast<std::uint64_t>(request.get_int("id", 0));
      if (!client.cancel(id)) {
        return encode_error(op, "unknown_or_terminal_job");
      }
      WireWriter response;
      response.field("ok", true).field("op", op).field(
          "id", static_cast<std::int64_t>(id));
      return response.str();
    }
    case OpKind::kForget: {
      const auto id = static_cast<std::uint64_t>(request.get_int("id", 0));
      if (!client.forget(id)) {
        return encode_error(op, "unknown_or_active_job");
      }
      WireWriter response;
      response.field("ok", true).field("op", op).field(
          "id", static_cast<std::int64_t>(id));
      return response.str();
    }
    case OpKind::kStats: {
      // The format fold (DESIGN §12): plain "stats" without a format is
      // the summary; with one it is the export the legacy "stats_export"
      // op produced (that op name survives as an alias whose format
      // defaults to prometheus).
      if (op == "stats" && !request.has("format")) {
        const std::optional<StatsSummary> summary = client.stats();
        if (!summary) return encode_error(op, "stats_unavailable");
        WireWriter response;
        response.field("ok", true).field("op", op);
        stats_summary_to_wire(*summary, response);
        return response.str();
      }
      StatsExportRequest export_request;
      export_request.format = request.get_string("format", "prometheus");
      export_request.mode = request.get_string("mode", "full");
      export_request.deterministic =
          request.get_bool("deterministic", false);
      std::string error;
      const std::optional<std::string> content =
          client.stats_export(export_request, &error);
      if (!content) return encode_error(op, error);
      WireWriter response;
      response.field("ok", true).field("op", op).field("format",
                                                       export_request.format);
      if (export_request.format == "scorecard") {
        response.raw("scorecard", *content);
      } else {
        response.field("mode", export_request.mode)
            .field("content", *content);
      }
      return response.str();
    }
    case OpKind::kUnknown:
      return encode_error("", "unknown_op: " + op);
    case OpKind::kSubmitStream:
    case OpKind::kResult:
    case OpKind::kStream:
    case OpKind::kShutdown:
      return std::nullopt;  // The front end runs these itself.
  }
  return encode_error(op, "internal: unhandled op");
}

}  // namespace approxit::svc
