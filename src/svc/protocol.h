// Wire protocol v2: the TYPED request/response/event schema over the flat
// line-JSON framing of svc/wire.h.
//
// PR 4's approxit_serve plucked fields ad hoc out of each request and
// hand-assembled each response; every new front end (the socket server,
// approxit_top, the benches) would have re-implemented that by hand. This
// header is the single encode/decode path instead: JobSpec / JobStatus /
// StatsSummary convert to and from WireObjects here, job lifecycle events
// (svc/runtime.h JobEvent) encode here, and both the stdin and the socket
// front ends — plus every Client transport — call these functions and
// nothing else.
//
// Versioning: requests MAY carry "proto":N. Absent means v1 (the PR 4
// dialect — accepted forever; compat-tested), 1 and 2 are accepted, and
// anything newer is refused with "unsupported_proto" so an old server
// fails a new client's hello loudly instead of mis-parsing it. v2 adds
// the hello op, pushed events, streamed subscriptions and the stats
// format fold; every v1 line keeps its exact meaning and response shape.
//
// Response vs. event discrimination on a connection: responses carry
// "ok" (and answer requests strictly in request order); pushed stream
// events carry "event" and may interleave between responses. A line
// never carries both keys.
//
// Layering: wire.h stays dependency-light framing (strings in, strings
// out); this header sits above it and below the runtime-owning Client
// (svc/client.h). RunReport payloads embed core::report_to_json verbatim
// as raw nested JSON, which clients re-parse with
// parse_wire_object(..., allow_raw_nested=true).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/runtime.h"
#include "svc/wire.h"

namespace approxit::svc {

/// The protocol generation this build speaks. Servers accept 1..kProtoVersion.
inline constexpr int kProtoVersion = 2;

/// Upper bound on one RESPONSE/event line a client will buffer (8 MiB).
/// Responses embed whole RunReports and metric registries, so they run
/// larger than the kMaxWireLine request cap.
inline constexpr std::size_t kMaxResponseLine = std::size_t{8} << 20;

/// Validates the request's "proto" field: nullopt when acceptable (absent
/// = v1), else the "unsupported_proto: ..." error text.
std::optional<std::string> check_proto(const WireObject& request);

/// The request operations a server dispatches on. kStats covers both
/// "stats" and its legacy "stats_export" alias (see classify_op).
enum class OpKind {
  kHello,
  kSubmit,         ///< Plain submit ("stream" absent or false).
  kSubmitStream,   ///< Submit with "stream":true — subscribe at admission.
  kStatus,
  kResult,
  kCancel,
  kForget,
  kStats,
  kStream,
  kShutdown,
  kUnknown,
};

/// Maps the request's "op" field to its kind (kUnknown for anything else).
OpKind classify_op(const WireObject& request);

// ---------------------------------------------------------------------------
// JobSpec

/// Decodes a submit request's spec fields (absent fields keep JobSpec
/// defaults — the v1 rule, unchanged in v2).
JobSpec job_spec_from_wire(const WireObject& request);

/// Appends the spec's fields to a request under assembly (defaults are
/// emitted too; the decoder treats them identically either way).
void job_spec_to_wire(const JobSpec& spec, WireWriter& out);

// ---------------------------------------------------------------------------
// JobStatus

/// Typed mirror of the wire's job status/result payload — what status(),
/// result() and terminal stream events carry.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string error;        ///< "job_error" (failed jobs only).
  bool cache_hit = false;
  double queue_ms = 0.0;
  double run_ms = 0.0;
  double characterization_ms = 0.0;
  bool degraded = false;
  std::size_t attempts = 1;
  /// Raw core::report_to_json payload; empty when the wire line carried
  /// none (non-terminal states, failed jobs, status-op responses).
  std::string report_json;

  bool terminal() const { return job_state_terminal(state); }
};

/// Reverse of job_state_name; nullopt for unknown labels.
std::optional<JobState> job_state_from_name(std::string_view name);

/// Converts a runtime snapshot (report carried verbatim).
JobStatus job_status_from_snapshot(const JobSnapshot& snapshot);

/// Appends the status payload. `include_report` controls the raw report
/// field: result responses and terminal events carry it for
/// done/cancelled/deadline_exceeded jobs; status responses never do (the
/// v1 shape, kept in v2).
void job_status_to_wire(const JobStatus& status, bool include_report,
                        WireWriter& out);

/// Decodes a status payload from a response/event parsed with
/// allow_raw_nested. nullopt (with `error`) when "id" or a valid "state"
/// is missing.
std::optional<JobStatus> job_status_from_wire(const WireObject& object,
                                              std::string* error = nullptr);

// ---------------------------------------------------------------------------
// StatsSummary

/// Typed mirror of the plain "stats" response (the service tallies plus
/// the deterministic merged metrics as raw JSON).
struct StatsSummary {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_tenant_cap = 0;
  std::size_t rejected_bad_request = 0;
  std::size_t rejected_rate_limited = 0;
  std::size_t shed = 0;
  std::size_t degraded = 0;
  std::size_t retries = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_disk_hits = 0;
  std::size_t cache_stores = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_quarantines = 0;
  std::string metrics_json;  ///< MetricsRegistry::to_json (raw nested).
};

/// Builds the summary from the runtime's tallies plus the merged metrics.
StatsSummary stats_summary_from(const ServiceStats& stats,
                                std::string metrics_json);

/// Appends the summary's fields (the exact v1 "stats" response shape).
void stats_summary_to_wire(const StatsSummary& summary, WireWriter& out);

/// Decodes a stats response parsed with allow_raw_nested.
StatsSummary stats_summary_from_wire(const WireObject& object);

// ---------------------------------------------------------------------------
// Events

/// True when the line is a pushed event (has "event"), false for
/// request-ordered responses (which carry "ok" instead).
bool is_event_line(const WireObject& object);

/// The greeting a socket connection receives on accept (and the response
/// payload of an explicit hello op): proto + service identity.
std::string encode_hello_event();

/// Encodes a queued/running/progress lifecycle event.
std::string encode_job_event(const JobEvent& event);

/// Encodes the terminal event: lifecycle fields plus the FULL status
/// payload (report included for done/cancelled/deadline_exceeded).
std::string encode_terminal_event(const JobEvent& event,
                                  const JobStatus& status);

/// One decoded pushed event, any kind.
struct StreamEvent {
  std::string event;   ///< "hello"|"queued"|"running"|"progress"|"terminal".
  int proto = 0;       ///< hello only.
  std::uint64_t id = 0;
  std::string tenant;
  std::string state;   ///< job_state_name as of the event.
  std::size_t attempt = 0;
  std::size_t iteration = 0;  ///< progress only.
  double objective = 0.0;     ///< progress only.
  /// Terminal events: the full status payload.
  std::optional<JobStatus> status;

  bool terminal() const { return event == "terminal"; }
};

/// Decodes a pushed event line parsed with allow_raw_nested. nullopt
/// (with `error`) when "event" is missing or a terminal payload is
/// malformed.
std::optional<StreamEvent> stream_event_from_wire(const WireObject& object,
                                                  std::string* error = nullptr);

/// Re-encodes a decoded/lifted event (what a front end draining a
/// JobStream prints). Inverse of stream_event_from_wire for every event
/// kind; a terminal event missing its status falls back to the event's
/// own lifecycle fields.
std::string encode_stream_event(const StreamEvent& event);

// ---------------------------------------------------------------------------
// Response helpers

/// {"ok":true,"op":op,<status payload>} — the status/result response (and
/// the body the stream op's terminal handling reuses). include_report as
/// in job_status_to_wire.
std::string encode_status_response(std::string_view op,
                                   const JobStatus& status,
                                   bool include_report);

/// {"ok":false,"op":...,"error":...} (op omitted when empty).
std::string encode_error(std::string_view op, std::string_view error);

/// The parse-failure response ({"ok":false,"error":"parse_error: ..."}).
std::string encode_parse_error(std::string_view detail);

}  // namespace approxit::svc
