// ProfileCache: the content-addressed store that amortizes ApproxIt's
// offline stage across sessions, processes and restarts.
//
// The offline characterization (PAPER.md Definition 1 / Stage 1) is by far
// the most expensive part of a run, yet its result depends only on the
// (method signature, workload identity, ALU configuration, characterization
// options) tuple — exactly what core::characterization_cache_key hashes.
// The cache keeps ModeCharacterization profiles in a bounded in-memory LRU
// backed by a versioned on-disk store, so a warm process — or a freshly
// restarted one — skips re-characterization entirely.
//
// Invariants:
//  - Profiles round-trip BYTE-IDENTICALLY (doubles serialized as %.17g,
//    which reproduces every IEEE754 double exactly), so a RunReport
//    produced from a cached profile is byte-identical to the cold run's.
//  - A hash collision degrades to a miss, never a wrong hit: the full key
//    description is stored with every entry and compared on lookup.
//  - get_or_compute is single-flight: N concurrent requests for the same
//    key run ONE characterization; the others wait and share the result.
//  - The LRU bounds memory only. Evicted entries stay on disk and reload
//    on the next request (a disk hit re-admits them).
//  - The disk tier NEVER trusts its own bytes: every entry carries an
//    FNV-1a checksum trailer, files are written tmp+rename, and a file
//    that fails the version/checksum/structure check is QUARANTINED to
//    `<directory>/quarantine/` (never deleted — post-mortem evidence) and
//    treated as a miss. A startup scrub pass sweeps the whole directory
//    so torn writes from a crashed process are cleared before serving.
//
// Thread-safe. Counting (when a metrics registry is attached):
// svc.profile_cache.{hit,miss,disk_hit,store,eviction,quarantine} — a disk
// hit also counts as a hit, and a single-flight waiter counts as a hit
// (the work was amortized even though the waiter arrived before it
// finished).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/characterization.h"
#include "core/quality.h"
#include "obs/metrics.h"

namespace approxit::svc {

/// Construction parameters for ProfileCache.
struct ProfileCacheConfig {
  /// In-memory LRU capacity in entries (clamped to >= 1).
  std::size_t capacity = 64;
  /// On-disk store directory; one `<key-id>.profile` file per entry,
  /// created on demand. Empty disables persistence (memory-only cache).
  std::string directory = "bench_artifacts/profiles";
  /// Sweep the disk store once at construction: quarantine files that fail
  /// the version/checksum/structure check and stray `.tmp` files left by a
  /// crashed writer, so a restarted process never serves a torn profile.
  bool scrub_on_start = true;
  /// Called with the final on-disk path after every successful persist.
  /// Fault-injection seam: the chaos harness uses it to corrupt freshly
  /// written files and prove the read path quarantines them.
  std::function<void(const std::string& path)> after_persist;
};

/// Monotonic cache tallies (see header comment for the counting rules).
struct ProfileCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t disk_hits = 0;
  std::size_t stores = 0;
  std::size_t evictions = 0;
  std::size_t single_flight_waits = 0;
  /// Corrupt disk entries moved to `<directory>/quarantine/` (lookup-time
  /// detections and scrub sweeps both count here).
  std::size_t quarantines = 0;
};

/// What one scrub() sweep of the disk store found.
struct ScrubReport {
  std::size_t scanned = 0;      ///< `.profile` files examined.
  std::size_t ok = 0;           ///< Passed version+checksum+structure.
  std::size_t quarantined = 0;  ///< Corrupt files moved aside.
  std::size_t stale_tmp = 0;    ///< Torn `.tmp` writes moved aside.
};

/// Bounded LRU + versioned disk store of ModeCharacterization profiles.
class ProfileCache final : public core::CharacterizationCache {
 public:
  explicit ProfileCache(ProfileCacheConfig config = {},
                        obs::MetricsRegistry* metrics = nullptr);

  /// Looks `key` up in the LRU, then on disk. A disk hit re-admits the
  /// profile into the LRU. Counts one hit or one miss.
  std::optional<core::ModeCharacterization> load(
      const core::CharacterizationKey& key) override;

  /// Inserts into the LRU (evicting the least-recent entry past capacity)
  /// and persists to disk when a directory is configured.
  void store(const core::CharacterizationKey& key,
             const core::ModeCharacterization& profile) override;

  /// The cached profile for `key`, computing (and storing) it on a miss.
  /// Single-flight: concurrent calls for the same key run `compute` once.
  /// `cache_hit`, when non-null, receives whether the profile came from
  /// the cache (or a concurrent computation) rather than this call's own
  /// compute. If `compute` throws, the exception propagates to the caller
  /// that ran it AND to every waiter.
  core::ModeCharacterization get_or_compute(
      const core::CharacterizationKey& key,
      const std::function<core::ModeCharacterization()>& compute,
      bool* cache_hit = nullptr);

  /// Counts one hit without performing a lookup: a batched job that shared
  /// its leader's in-flight profile resolved exactly as its own
  /// single-flight wait would have, so the hit/miss tallies stay invariant
  /// between batched and solo execution.
  void record_batched_hit();

  /// Current tallies (consistent snapshot).
  ProfileCacheStats stats() const;

  /// Entries currently resident in the LRU.
  std::size_t size() const;

  /// Sweeps the disk store now: every `.profile` file that fails the
  /// version/checksum/structure check — and every stray `.tmp` file — is
  /// moved to `<directory>/quarantine/`. Valid files are left untouched
  /// (scrub never parses keys, so it cannot mistake a foreign-but-valid
  /// profile for corruption). No-op when persistence is off.
  ScrubReport scrub();

  /// Serializes a profile (with its key) into the versioned text format.
  /// v2 appends a `checksum <16-hex-FNV-1a>` trailer over everything that
  /// precedes it, so torn or bit-flipped files are detectable offline.
  static std::string serialize(const core::CharacterizationKey& key,
                               const core::ModeCharacterization& profile);

  /// Parses a serialized profile, verifying the format version, the
  /// checksum trailer (v2; legacy v1 files have none and are accepted),
  /// AND that the embedded key description matches `key` (collision
  /// guard). Returns nullopt on any mismatch or malformed input; every
  /// count field is bounded against the remaining input before any
  /// allocation, so hostile bytes cannot balloon memory.
  static std::optional<core::ModeCharacterization> deserialize(
      const std::string& text, const core::CharacterizationKey& key);

  /// Structure+checksum validation only (no key to compare against) —
  /// what scrub() and the corrupt-vs-stale triage in lookup use.
  static bool validate(const std::string& text);

  /// The on-disk path a key persists to (empty when persistence is off).
  std::string disk_path(const core::CharacterizationKey& key) const;

  /// Where corrupt files are moved (empty when persistence is off).
  std::string quarantine_dir() const;

 private:
  struct Entry {
    core::CharacterizationKey key;
    core::ModeCharacterization profile;
  };

  /// One in-progress computation; waiters block on cv until done.
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    core::ModeCharacterization profile;
    std::exception_ptr error;
  };

  /// LRU/disk lookup without stats counting; `from_disk` reports the tier.
  /// Caller must hold mutex_.
  std::optional<core::ModeCharacterization> lookup_locked(
      const core::CharacterizationKey& key, bool* from_disk);

  /// LRU insert + eviction without stats counting. Caller must hold mutex_.
  void admit_locked(const core::CharacterizationKey& key,
                    const core::ModeCharacterization& profile);

  /// Moves `path` into the quarantine directory and counts it. Caller must
  /// hold mutex_.
  void quarantine_locked(const std::string& path);

  void persist(const core::CharacterizationKey& key,
               const core::ModeCharacterization& profile) const;

  void count(std::size_t ProfileCacheStats::*field, obs::Counter* counter);

  ProfileCacheConfig config_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  /// Keyed by the FULL description (not the 64-bit hash) so colliding
  /// keys never share a flight — a waiter must receive its own profile.
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  ProfileCacheStats stats_;
  obs::Counter* metric_hit_ = nullptr;
  obs::Counter* metric_miss_ = nullptr;
  obs::Counter* metric_disk_hit_ = nullptr;
  obs::Counter* metric_store_ = nullptr;
  obs::Counter* metric_eviction_ = nullptr;
  obs::Counter* metric_quarantine_ = nullptr;
};

}  // namespace approxit::svc
