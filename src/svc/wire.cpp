#include "svc/wire.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>

#include "core/report_io.h"

namespace approxit::svc {

namespace {

void set_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

void skip_ws(std::string_view line, std::size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
}

/// Parses a JSON string literal starting at the opening quote; advances
/// `pos` past the closing quote.
bool parse_string(std::string_view line, std::size_t& pos,
                  std::string& out) {
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '"') {
      ++pos;
      return true;
    }
    if (c == '\\') {
      if (pos + 1 >= line.size()) return false;
      const char esc = line[pos + 1];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Only the escapes json_escape emits for control bytes are
          // accepted: \u00XX.
          if (pos + 5 >= line.size()) return false;
          const std::string hex(line.substr(pos + 2, 4));
          // All four characters must be hex digits — strtol on the slice
          // would also accept a leading sign or whitespace.
          for (const char h : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
          }
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          if (code > 0xFF) return false;
          out.push_back(static_cast<char>(code));
          pos += 4;
          break;
        }
        default: return false;
      }
      pos += 2;
      continue;
    }
    out.push_back(c);
    ++pos;
  }
  return false;  // Unterminated string.
}

/// Captures a nested object/array verbatim: scans balanced {}/[] with
/// string/escape awareness and copies the whole slice, content unparsed.
bool parse_raw_nested(std::string_view line, std::size_t& pos,
                      std::string& out) {
  const std::size_t start = pos;
  std::size_t depth = 0;
  bool in_string = false;
  for (; pos < line.size(); ++pos) {
    const char c = line[pos];
    if (in_string) {
      if (c == '\\') {
        ++pos;  // Skip the escaped character (quote included).
        continue;
      }
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) return false;
      if (--depth == 0) {
        ++pos;
        out.assign(line.substr(start, pos - start));
        return true;
      }
    }
  }
  return false;  // Unbalanced.
}

/// Parses an unquoted scalar (number / true / false) up to , or }.
bool parse_bare(std::string_view line, std::size_t& pos, std::string& out) {
  out.clear();
  while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
    out.push_back(line[pos]);
    ++pos;
  }
  while (!out.empty() &&
         std::isspace(static_cast<unsigned char>(out.back()))) {
    out.pop_back();
  }
  return !out.empty();
}

}  // namespace

bool read_wire_line(std::istream& in, std::string& line, bool* overflow,
                    std::size_t max_length) {
  line.clear();
  if (overflow != nullptr) *overflow = false;
  bool read_anything = false;
  char c = 0;
  while (in.get(c)) {
    read_anything = true;
    if (c == '\n') return true;
    if (line.size() >= max_length) {
      // Over budget: stop buffering and drain the rest of the line so the
      // stream stays aligned on the next request.
      if (overflow != nullptr) *overflow = true;
      while (in.get(c) && c != '\n') {
      }
      return true;
    }
    line.push_back(c);
  }
  return read_anything;
}

std::string WireObject::get_string(const std::string& key,
                                   const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second.text;
}

std::int64_t WireObject::get_int(const std::string& key,
                                 std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.text.c_str(), &end, 10);
  return end == it->second.text.c_str() ? fallback
                                        : static_cast<std::int64_t>(value);
}

double WireObject::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.text.c_str(), &end);
  return end == it->second.text.c_str() ? fallback : value;
}

bool WireObject::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.text == "true") return true;
  if (it->second.text == "false") return false;
  return fallback;
}

std::optional<WireObject> parse_wire_object(std::string_view line,
                                            std::string* error,
                                            bool allow_raw_nested) {
  // Requests are capped here; response parsing (allow_raw_nested) embeds
  // whole reports/registries and is capped by the reader instead.
  if (!allow_raw_nested && line.size() > kMaxWireLine) {
    set_error(error, "line too long");
    return std::nullopt;
  }
  std::size_t pos = 0;
  skip_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    set_error(error, "expected '{'");
    return std::nullopt;
  }
  ++pos;

  WireObject object;
  skip_ws(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      skip_ws(line, pos);
      std::string key;
      if (!parse_string(line, pos, key)) {
        set_error(error, "expected string key");
        return std::nullopt;
      }
      skip_ws(line, pos);
      if (pos >= line.size() || line[pos] != ':') {
        set_error(error, "expected ':' after key");
        return std::nullopt;
      }
      ++pos;
      skip_ws(line, pos);

      WireValue value;
      if (pos < line.size() && line[pos] == '"') {
        value.quoted = true;
        if (!parse_string(line, pos, value.text)) {
          set_error(error, "malformed string value");
          return std::nullopt;
        }
      } else if (pos < line.size() &&
                 (line[pos] == '{' || line[pos] == '[')) {
        if (!allow_raw_nested) {
          set_error(error, "nested values are not supported");
          return std::nullopt;
        }
        value.raw = true;
        if (!parse_raw_nested(line, pos, value.text)) {
          set_error(error, "malformed nested value");
          return std::nullopt;
        }
      } else if (!parse_bare(line, pos, value.text)) {
        set_error(error, "expected value");
        return std::nullopt;
      }
      object.values()[key] = std::move(value);

      skip_ws(line, pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      set_error(error, "expected ',' or '}'");
      return std::nullopt;
    }
  }

  skip_ws(line, pos);
  if (pos != line.size()) {
    set_error(error, "trailing characters after object");
    return std::nullopt;
  }
  return object;
}

void WireWriter::begin_field(std::string_view key) {
  body_ += body_.empty() ? "" : ",";
  body_ += '"';
  body_ += core::json_escape(std::string(key));
  body_ += "\":";
}

WireWriter& WireWriter::field(std::string_view key, std::string_view value) {
  begin_field(key);
  body_ += '"';
  body_ += core::json_escape(std::string(value));
  body_ += '"';
  return *this;
}

WireWriter& WireWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

WireWriter& WireWriter::field(std::string_view key, std::int64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

WireWriter& WireWriter::field(std::string_view key, std::size_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

WireWriter& WireWriter::field(std::string_view key, double value) {
  begin_field(key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  body_ += buffer;
  return *this;
}

WireWriter& WireWriter::field(std::string_view key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

WireWriter& WireWriter::raw(std::string_view key, std::string_view json) {
  begin_field(key);
  body_ += json;
  return *this;
}

std::string WireWriter::str() const { return "{" + body_ + "}"; }

}  // namespace approxit::svc
