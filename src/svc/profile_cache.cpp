#include "svc/profile_cache.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/logging.h"

namespace approxit::svc {

namespace {

/// v2 adds a `checksum <16-hex FNV-1a>` trailer line before `end`.
constexpr const char* kFormatVersion = "approxit-profile v2";
/// v1 files (no checksum) are still accepted so a warm disk store written
/// by an older build keeps serving across the upgrade.
constexpr const char* kLegacyFormatVersion = "approxit-profile v1";

/// %.17g round-trips every IEEE754 double exactly — the byte-identity
/// guarantee rests on this (same formatting core/report_io.cpp relies on).
std::string format_full(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Strict full-token parses: the ENTIRE token must be numeric. A partial
/// parse ("12garbage") means a corrupt file and must read as a failure,
/// not as 12.
bool parse_u64(const std::string& token, std::uint64_t& out, int base = 10) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, base);
  return end == token.c_str() + token.size() && errno == 0;
}

bool parse_double(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

void write_array(std::ostringstream& os, const char* name,
                 const std::array<double, arith::kNumModes>& values) {
  os << name;
  for (const double v : values) os << ' ' << format_full(v);
  os << '\n';
}

/// Reads "<name> v0 v1 v2 v3 v4" into `values`; false on any mismatch,
/// partial token, or extra trailing token.
bool read_array(std::istringstream& in, const char* name,
                std::array<double, arith::kNumModes>& values) {
  std::string line;
  if (!std::getline(in, line)) return false;
  std::istringstream fields(line);
  std::string label;
  if (!(fields >> label) || label != name) return false;
  for (double& v : values) {
    std::string token;
    if (!(fields >> token)) return false;
    if (!parse_double(token, v)) return false;
  }
  std::string extra;
  if (fields >> extra) return false;
  return true;
}

/// Reads "<name> <value-token>"; false on mismatch.
bool read_field(std::istringstream& in, const char* name,
                std::string& value) {
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || line.substr(0, space) != name) {
    return false;
  }
  value = line.substr(space + 1);
  return true;
}

/// Bytes left unread in `in` over `text` (0 when the stream position is
/// unavailable — forces count bounds to fail closed).
std::size_t remaining_bytes(std::istringstream& in, const std::string& text) {
  const std::streampos pos = in.tellg();
  if (pos < 0) return 0;
  const auto offset = static_cast<std::size_t>(pos);
  return offset <= text.size() ? text.size() - offset : 0;
}

}  // namespace

ProfileCache::ProfileCache(ProfileCacheConfig config,
                           obs::MetricsRegistry* metrics)
    : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (metrics != nullptr) {
    metric_hit_ = &metrics->counter("svc.profile_cache.hit");
    metric_miss_ = &metrics->counter("svc.profile_cache.miss");
    metric_disk_hit_ = &metrics->counter("svc.profile_cache.disk_hit");
    metric_store_ = &metrics->counter("svc.profile_cache.store");
    metric_eviction_ = &metrics->counter("svc.profile_cache.eviction");
    metric_quarantine_ = &metrics->counter("svc.profile_cache.quarantine");
  }
  if (!config_.directory.empty() && config_.scrub_on_start) {
    scrub();
  }
}

std::string ProfileCache::serialize(const core::CharacterizationKey& key,
                                    const core::ModeCharacterization& p) {
  std::ostringstream os;
  os << kFormatVersion << '\n';
  os << "key " << key.id() << '\n';
  os << "desc " << key.description << '\n';
  os << "iterations " << p.iterations_characterized << '\n';
  os << "objective_scale " << format_full(p.objective_scale) << '\n';
  os << "initial_improvement " << format_full(p.initial_improvement) << '\n';
  write_array(os, "quality_error", p.quality_error);
  write_array(os, "worst_quality_error", p.worst_quality_error);
  write_array(os, "state_error", p.state_error);
  write_array(os, "worst_state_error", p.worst_state_error);
  write_array(os, "abs_state_error", p.abs_state_error);
  write_array(os, "energy_per_op", p.energy_per_op);
  os << "angle_samples " << p.angle_samples.size() << '\n';
  for (const double a : p.angle_samples) os << format_full(a) << '\n';
  // FNV-1a over everything serialized so far — the reader recomputes it
  // over the same prefix, so a torn tail or bit flip anywhere before the
  // trailer is caught even when the damaged bytes still parse.
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "checksum %016llx\n",
                static_cast<unsigned long long>(core::fnv1a64(os.str())));
  os << checksum << "end\n";
  return os.str();
}

namespace {

/// Shared parsing core. `key`, when non-null, is compared against the
/// embedded key id + description (the collision guard); a null key makes
/// this a pure structure+checksum validation (what scrub uses — it must
/// accept any well-formed profile regardless of whose it is).
std::optional<core::ModeCharacterization> deserialize_impl(
    const std::string& text, const core::CharacterizationKey* key) {
  // A complete entry always ends in a newline; a file cut mid-final-line
  // (torn write of the very last byte) must not pass for whole.
  if (text.empty() || text.back() != '\n') return std::nullopt;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  const bool legacy = line == kLegacyFormatVersion;
  if (!legacy && line != kFormatVersion) return std::nullopt;

  std::string value;
  if (!read_field(in, "key", value)) return std::nullopt;
  if (key != nullptr && value != key->id()) return std::nullopt;
  // The collision guard: the full description must match, not just the
  // 64-bit content id.
  if (!read_field(in, "desc", value)) return std::nullopt;
  if (key != nullptr && value != key->description) return std::nullopt;

  core::ModeCharacterization p;
  std::uint64_t parsed = 0;
  if (!read_field(in, "iterations", value) || !parse_u64(value, parsed)) {
    return std::nullopt;
  }
  p.iterations_characterized = static_cast<std::size_t>(parsed);
  if (!read_field(in, "objective_scale", value) ||
      !parse_double(value, p.objective_scale)) {
    return std::nullopt;
  }
  if (!read_field(in, "initial_improvement", value) ||
      !parse_double(value, p.initial_improvement)) {
    return std::nullopt;
  }

  if (!read_array(in, "quality_error", p.quality_error) ||
      !read_array(in, "worst_quality_error", p.worst_quality_error) ||
      !read_array(in, "state_error", p.state_error) ||
      !read_array(in, "worst_state_error", p.worst_state_error) ||
      !read_array(in, "abs_state_error", p.abs_state_error) ||
      !read_array(in, "energy_per_op", p.energy_per_op)) {
    return std::nullopt;
  }

  if (!read_field(in, "angle_samples", value)) return std::nullopt;
  std::uint64_t count = 0;
  if (!parse_u64(value, count)) return std::nullopt;
  // Every sample occupies at least two input bytes ("0\n"); a count beyond
  // what the REMAINING input could possibly hold can only come from a
  // corrupted file. Reject it BEFORE reserving, so hostile bytes degrade
  // to a miss instead of ballooning memory or throwing bad_alloc.
  const std::size_t remaining = remaining_bytes(in, text);
  if (count > remaining / 2) return std::nullopt;
  p.angle_samples.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    double a = 0.0;
    if (!parse_double(line, a)) return std::nullopt;
    p.angle_samples.push_back(a);
  }

  if (!legacy) {
    // The trailer covers every byte before it: recompute and compare.
    const std::streampos checksum_offset = in.tellg();
    if (checksum_offset < 0) return std::nullopt;
    if (!read_field(in, "checksum", value)) return std::nullopt;
    std::uint64_t stored = 0;
    if (value.size() != 16 || !parse_u64(value, stored, 16)) {
      return std::nullopt;
    }
    const std::uint64_t actual = core::fnv1a64(std::string_view(
        text.data(), static_cast<std::size_t>(checksum_offset)));
    if (stored != actual) return std::nullopt;
  }

  if (!std::getline(in, line) || line != "end") return std::nullopt;
  // Nothing may follow the terminator: trailing garbage means the file
  // was appended to or two writes interleaved — quarantine-worthy, not
  // silently ignorable.
  if (std::getline(in, line)) return std::nullopt;
  return p;
}

}  // namespace

std::optional<core::ModeCharacterization> ProfileCache::deserialize(
    const std::string& text, const core::CharacterizationKey& key) {
  return deserialize_impl(text, &key);
}

bool ProfileCache::validate(const std::string& text) {
  return deserialize_impl(text, nullptr).has_value();
}

std::string ProfileCache::disk_path(
    const core::CharacterizationKey& key) const {
  if (config_.directory.empty()) return {};
  return (std::filesystem::path(config_.directory) / (key.id() + ".profile"))
      .string();
}

std::string ProfileCache::quarantine_dir() const {
  if (config_.directory.empty()) return {};
  return (std::filesystem::path(config_.directory) / "quarantine").string();
}

void ProfileCache::quarantine_locked(const std::string& path) {
  try {
    const std::filesystem::path source(path);
    const std::filesystem::path dir(quarantine_dir());
    std::filesystem::create_directories(dir);
    // rename() replaces an existing quarantine file of the same name —
    // the newest corruption is the interesting evidence.
    std::filesystem::rename(source, dir / source.filename());
  } catch (const std::filesystem::filesystem_error& error) {
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "quarantine failed for " << path << ": " << error.what();
    // Last resort: remove it so the corrupt bytes cannot be re-read.
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  count(&ProfileCacheStats::quarantines, metric_quarantine_);
}

ScrubReport ProfileCache::scrub() {
  ScrubReport report;
  if (config_.directory.empty()) return report;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::filesystem::path> profiles;
  std::vector<std::filesystem::path> torn;
  try {
    if (!std::filesystem::exists(config_.directory)) return report;
    for (const auto& entry :
         std::filesystem::directory_iterator(config_.directory)) {
      if (!entry.is_regular_file()) continue;  // Skips quarantine/ itself.
      const std::filesystem::path& p = entry.path();
      if (p.extension() == ".profile") {
        profiles.push_back(p);
      } else if (p.extension() == ".tmp") {
        torn.push_back(p);
      }
    }
  } catch (const std::filesystem::filesystem_error& error) {
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "scrub cannot list " << config_.directory << ": " << error.what();
    return report;
  }

  for (const std::filesystem::path& p : torn) {
    // A .tmp file IS a torn write: the rename never happened. Preserve it
    // as evidence rather than deleting.
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << p.string() << ": torn write left behind; quarantining";
    quarantine_locked(p.string());
    ++report.stale_tmp;
  }
  for (const std::filesystem::path& p : profiles) {
    ++report.scanned;
    std::ifstream file(p, std::ios::binary);
    std::ostringstream contents;
    if (file) contents << file.rdbuf();
    if (file && validate(contents.str())) {
      ++report.ok;
      continue;
    }
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << p.string() << ": failed scrub (corrupt or unreadable); "
        << "quarantining";
    quarantine_locked(p.string());
    ++report.quarantined;
  }
  return report;
}

std::optional<core::ModeCharacterization> ProfileCache::lookup_locked(
    const core::CharacterizationKey& key, bool* from_disk) {
  *from_disk = false;
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    if (it->second->key.description == key.description) {
      // Refresh recency: splice the entry to the front.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->profile;
    }
    // 64-bit collision between distinct descriptions: treat as a miss.
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "hash collision on " << key.id() << "; treating as miss";
    return std::nullopt;
  }

  const std::string path = disk_path(key);
  if (path.empty()) return std::nullopt;
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream contents;
  contents << file.rdbuf();
  const std::string text = contents.str();
  std::optional<core::ModeCharacterization> profile = deserialize(text, key);
  if (!profile) {
    // Triage before acting: a structurally broken file is CORRUPTION and
    // gets quarantined; a well-formed file whose key doesn't match is
    // merely stale/foreign (e.g. a hash collision) and must be left alone.
    if (!validate(text)) {
      APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
          << path << ": corrupt profile detected on read; quarantining";
      quarantine_locked(path);
    } else {
      APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
          << path << ": stale profile (key mismatch); treating as miss";
    }
    return std::nullopt;
  }
  *from_disk = true;
  admit_locked(key, *profile);
  return profile;
}

void ProfileCache::admit_locked(const core::CharacterizationKey& key,
                                const core::ModeCharacterization& profile) {
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    if (it->second->key.description != key.description) {
      // 64-bit collision between distinct descriptions: the slot adopts
      // the NEW key wholesale. The displaced description then misses on
      // its next lookup (the stored description no longer matches) —
      // a collision degrades to a miss, never a wrong hit.
      APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
          << "hash collision on " << key.id()
          << "; displacing resident entry";
      it->second->key = key;
    }
    it->second->profile = profile;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, profile});
  index_[key.hash] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    // Evicted entries stay on disk; only the memory tier is bounded.
    index_.erase(lru_.back().key.hash);
    lru_.pop_back();
    ++stats_.evictions;
    if (metric_eviction_ != nullptr) metric_eviction_->add(1.0);
  }
}

void ProfileCache::count(std::size_t ProfileCacheStats::*field,
                         obs::Counter* counter) {
  ++(stats_.*field);
  if (counter != nullptr) counter->add(1.0);
}

std::optional<core::ModeCharacterization> ProfileCache::load(
    const core::CharacterizationKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool from_disk = false;
  std::optional<core::ModeCharacterization> profile =
      lookup_locked(key, &from_disk);
  if (profile) {
    count(&ProfileCacheStats::hits, metric_hit_);
    if (from_disk) count(&ProfileCacheStats::disk_hits, metric_disk_hit_);
  } else {
    count(&ProfileCacheStats::misses, metric_miss_);
  }
  return profile;
}

void ProfileCache::store(const core::CharacterizationKey& key,
                         const core::ModeCharacterization& profile) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admit_locked(key, profile);
    count(&ProfileCacheStats::stores, metric_store_);
  }
  persist(key, profile);
}

void ProfileCache::persist(const core::CharacterizationKey& key,
                           const core::ModeCharacterization& profile) const {
  const std::string path = disk_path(key);
  if (path.empty()) return;
  bool persisted = false;
  try {
    const std::filesystem::path target(path);
    std::filesystem::create_directories(target.parent_path());
    // Write-then-rename so a concurrent reader never sees a torn file.
    const std::filesystem::path tmp(path + ".tmp");
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
            << "cannot write " << tmp.string() << "; profile not persisted";
        return;
      }
      out << serialize(key, profile);
    }
    std::filesystem::rename(tmp, target);
    persisted = true;
  } catch (const std::filesystem::filesystem_error& error) {
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "persist failed for " << path << ": " << error.what();
  }
  if (persisted && config_.after_persist) {
    config_.after_persist(path);
  }
}

core::ModeCharacterization ProfileCache::get_or_compute(
    const core::CharacterizationKey& key,
    const std::function<core::ModeCharacterization()>& compute,
    bool* cache_hit) {
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    bool from_disk = false;
    if (std::optional<core::ModeCharacterization> profile =
            lookup_locked(key, &from_disk)) {
      count(&ProfileCacheStats::hits, metric_hit_);
      if (from_disk) count(&ProfileCacheStats::disk_hits, metric_disk_hit_);
      if (cache_hit != nullptr) *cache_hit = true;
      if (obs::trace_enabled()) {
        obs::emit_instant("svc", "cache_hit",
                          {obs::arg("key", key.description),
                           obs::arg("source", from_disk ? "disk" : "memory")});
      }
      return *std::move(profile);
    }

    const auto it = inflight_.find(key.description);
    if (it != inflight_.end()) {
      // Another thread is characterizing this key right now: wait for it.
      // Waiters count as hits — the work was amortized.
      flight = it->second;
      count(&ProfileCacheStats::hits, metric_hit_);
      ++stats_.single_flight_waits;
      if (obs::trace_enabled()) {
        obs::emit_instant("svc", "cache_hit",
                          {obs::arg("key", key.description),
                           obs::arg("source", "wait")});
      }
      lock.unlock();
      std::unique_lock<std::mutex> flight_lock(flight->mutex);
      flight->cv.wait(flight_lock, [&] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      if (cache_hit != nullptr) *cache_hit = true;
      return flight->profile;
    }

    count(&ProfileCacheStats::misses, metric_miss_);
    flight = std::make_shared<InFlight>();
    inflight_[key.description] = flight;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant("svc", "cache_miss",
                      {obs::arg("key", key.description)});
  }

  if (cache_hit != nullptr) *cache_hit = false;
  core::ModeCharacterization profile;
  try {
    profile = compute();
  } catch (...) {
    {
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key.description);
    throw;
  }

  store(key, profile);
  {
    std::lock_guard<std::mutex> flight_lock(flight->mutex);
    flight->profile = profile;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key.description);
  }
  return profile;
}

void ProfileCache::record_batched_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  count(&ProfileCacheStats::hits, metric_hit_);
}

ProfileCacheStats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace approxit::svc
