#include "svc/profile_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace approxit::svc {

namespace {

constexpr const char* kFormatVersion = "approxit-profile v1";

/// %.17g round-trips every IEEE754 double exactly — the byte-identity
/// guarantee rests on this (same formatting core/report_io.cpp relies on).
std::string format_full(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void write_array(std::ostringstream& os, const char* name,
                 const std::array<double, arith::kNumModes>& values) {
  os << name;
  for (const double v : values) os << ' ' << format_full(v);
  os << '\n';
}

/// Reads "<name> v0 v1 v2 v3 v4" into `values`; false on any mismatch.
bool read_array(std::istringstream& in, const char* name,
                std::array<double, arith::kNumModes>& values) {
  std::string line;
  if (!std::getline(in, line)) return false;
  std::istringstream fields(line);
  std::string label;
  if (!(fields >> label) || label != name) return false;
  for (double& v : values) {
    std::string token;
    if (!(fields >> token)) return false;
    char* end = nullptr;
    v = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) return false;
  }
  return true;
}

/// Reads "<name> <value-token>"; false on mismatch.
bool read_field(std::istringstream& in, const char* name,
                std::string& value) {
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || line.substr(0, space) != name) {
    return false;
  }
  value = line.substr(space + 1);
  return true;
}

}  // namespace

ProfileCache::ProfileCache(ProfileCacheConfig config,
                           obs::MetricsRegistry* metrics)
    : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (metrics != nullptr) {
    metric_hit_ = &metrics->counter("svc.profile_cache.hit");
    metric_miss_ = &metrics->counter("svc.profile_cache.miss");
    metric_disk_hit_ = &metrics->counter("svc.profile_cache.disk_hit");
    metric_store_ = &metrics->counter("svc.profile_cache.store");
    metric_eviction_ = &metrics->counter("svc.profile_cache.eviction");
  }
}

std::string ProfileCache::serialize(const core::CharacterizationKey& key,
                                    const core::ModeCharacterization& p) {
  std::ostringstream os;
  os << kFormatVersion << '\n';
  os << "key " << key.id() << '\n';
  os << "desc " << key.description << '\n';
  os << "iterations " << p.iterations_characterized << '\n';
  os << "objective_scale " << format_full(p.objective_scale) << '\n';
  os << "initial_improvement " << format_full(p.initial_improvement) << '\n';
  write_array(os, "quality_error", p.quality_error);
  write_array(os, "worst_quality_error", p.worst_quality_error);
  write_array(os, "state_error", p.state_error);
  write_array(os, "worst_state_error", p.worst_state_error);
  write_array(os, "abs_state_error", p.abs_state_error);
  write_array(os, "energy_per_op", p.energy_per_op);
  os << "angle_samples " << p.angle_samples.size() << '\n';
  for (const double a : p.angle_samples) os << format_full(a) << '\n';
  os << "end\n";
  return os.str();
}

std::optional<core::ModeCharacterization> ProfileCache::deserialize(
    const std::string& text, const core::CharacterizationKey& key) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kFormatVersion) return std::nullopt;

  std::string value;
  if (!read_field(in, "key", value) || value != key.id()) return std::nullopt;
  // The collision guard: the full description must match, not just the
  // 64-bit content id.
  if (!read_field(in, "desc", value) || value != key.description) {
    return std::nullopt;
  }

  core::ModeCharacterization p;
  if (!read_field(in, "iterations", value)) return std::nullopt;
  p.iterations_characterized =
      static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
  if (!read_field(in, "objective_scale", value)) return std::nullopt;
  p.objective_scale = std::strtod(value.c_str(), nullptr);
  if (!read_field(in, "initial_improvement", value)) return std::nullopt;
  p.initial_improvement = std::strtod(value.c_str(), nullptr);

  if (!read_array(in, "quality_error", p.quality_error) ||
      !read_array(in, "worst_quality_error", p.worst_quality_error) ||
      !read_array(in, "state_error", p.state_error) ||
      !read_array(in, "worst_state_error", p.worst_state_error) ||
      !read_array(in, "abs_state_error", p.abs_state_error) ||
      !read_array(in, "energy_per_op", p.energy_per_op)) {
    return std::nullopt;
  }

  if (!read_field(in, "angle_samples", value)) return std::nullopt;
  const std::size_t count =
      static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
  // Every sample occupies at least two input bytes ("0\n"); a count beyond
  // the input size can only come from a corrupted file. Reject it instead
  // of reserving unbounded memory (malformed input must degrade to a
  // miss, not throw).
  if (count > text.size()) return std::nullopt;
  p.angle_samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    char* end = nullptr;
    const double a = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) return std::nullopt;
    p.angle_samples.push_back(a);
  }
  if (!std::getline(in, line) || line != "end") return std::nullopt;
  return p;
}

std::string ProfileCache::disk_path(
    const core::CharacterizationKey& key) const {
  if (config_.directory.empty()) return {};
  return (std::filesystem::path(config_.directory) / (key.id() + ".profile"))
      .string();
}

std::optional<core::ModeCharacterization> ProfileCache::lookup_locked(
    const core::CharacterizationKey& key, bool* from_disk) {
  *from_disk = false;
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    if (it->second->key.description == key.description) {
      // Refresh recency: splice the entry to the front.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->profile;
    }
    // 64-bit collision between distinct descriptions: treat as a miss.
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "hash collision on " << key.id() << "; treating as miss";
    return std::nullopt;
  }

  const std::string path = disk_path(key);
  if (path.empty()) return std::nullopt;
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream contents;
  contents << file.rdbuf();
  std::optional<core::ModeCharacterization> profile =
      deserialize(contents.str(), key);
  if (!profile) {
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << path << ": unreadable or stale profile; treating as miss";
    return std::nullopt;
  }
  *from_disk = true;
  admit_locked(key, *profile);
  return profile;
}

void ProfileCache::admit_locked(const core::CharacterizationKey& key,
                                const core::ModeCharacterization& profile) {
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    if (it->second->key.description != key.description) {
      // 64-bit collision between distinct descriptions: the slot adopts
      // the NEW key wholesale. The displaced description then misses on
      // its next lookup (the stored description no longer matches) —
      // a collision degrades to a miss, never a wrong hit.
      APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
          << "hash collision on " << key.id()
          << "; displacing resident entry";
      it->second->key = key;
    }
    it->second->profile = profile;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, profile});
  index_[key.hash] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    // Evicted entries stay on disk; only the memory tier is bounded.
    index_.erase(lru_.back().key.hash);
    lru_.pop_back();
    ++stats_.evictions;
    if (metric_eviction_ != nullptr) metric_eviction_->add(1.0);
  }
}

void ProfileCache::count(std::size_t ProfileCacheStats::*field,
                         obs::Counter* counter) {
  ++(stats_.*field);
  if (counter != nullptr) counter->add(1.0);
}

std::optional<core::ModeCharacterization> ProfileCache::load(
    const core::CharacterizationKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool from_disk = false;
  std::optional<core::ModeCharacterization> profile =
      lookup_locked(key, &from_disk);
  if (profile) {
    count(&ProfileCacheStats::hits, metric_hit_);
    if (from_disk) count(&ProfileCacheStats::disk_hits, metric_disk_hit_);
  } else {
    count(&ProfileCacheStats::misses, metric_miss_);
  }
  return profile;
}

void ProfileCache::store(const core::CharacterizationKey& key,
                         const core::ModeCharacterization& profile) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admit_locked(key, profile);
    count(&ProfileCacheStats::stores, metric_store_);
  }
  persist(key, profile);
}

void ProfileCache::persist(const core::CharacterizationKey& key,
                           const core::ModeCharacterization& profile) const {
  const std::string path = disk_path(key);
  if (path.empty()) return;
  try {
    const std::filesystem::path target(path);
    std::filesystem::create_directories(target.parent_path());
    // Write-then-rename so a concurrent reader never sees a torn file.
    const std::filesystem::path tmp(path + ".tmp");
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
            << "cannot write " << tmp.string() << "; profile not persisted";
        return;
      }
      out << serialize(key, profile);
    }
    std::filesystem::rename(tmp, target);
  } catch (const std::filesystem::filesystem_error& error) {
    APPROXIT_LOG(util::LogLevel::kWarn, "profile_cache")
        << "persist failed for " << path << ": " << error.what();
  }
}

core::ModeCharacterization ProfileCache::get_or_compute(
    const core::CharacterizationKey& key,
    const std::function<core::ModeCharacterization()>& compute,
    bool* cache_hit) {
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    bool from_disk = false;
    if (std::optional<core::ModeCharacterization> profile =
            lookup_locked(key, &from_disk)) {
      count(&ProfileCacheStats::hits, metric_hit_);
      if (from_disk) count(&ProfileCacheStats::disk_hits, metric_disk_hit_);
      if (cache_hit != nullptr) *cache_hit = true;
      return *std::move(profile);
    }

    const auto it = inflight_.find(key.description);
    if (it != inflight_.end()) {
      // Another thread is characterizing this key right now: wait for it.
      // Waiters count as hits — the work was amortized.
      flight = it->second;
      count(&ProfileCacheStats::hits, metric_hit_);
      ++stats_.single_flight_waits;
      lock.unlock();
      std::unique_lock<std::mutex> flight_lock(flight->mutex);
      flight->cv.wait(flight_lock, [&] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      if (cache_hit != nullptr) *cache_hit = true;
      return flight->profile;
    }

    count(&ProfileCacheStats::misses, metric_miss_);
    flight = std::make_shared<InFlight>();
    inflight_[key.description] = flight;
  }

  if (cache_hit != nullptr) *cache_hit = false;
  core::ModeCharacterization profile;
  try {
    profile = compute();
  } catch (...) {
    {
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key.description);
    throw;
  }

  store(key, profile);
  {
    std::lock_guard<std::mutex> flight_lock(flight->mutex);
    flight->profile = profile;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key.description);
  }
  return profile;
}

ProfileCacheStats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace approxit::svc
