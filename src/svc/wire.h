// Minimal line-delimited JSON wire format for the serving CLI.
//
// Requests to approxit_serve are FLAT JSON objects — string keys mapping
// to strings, numbers or booleans, one object per line:
//
//   {"op":"submit","tenant":"t1","app":"gmm","dataset":"gmm_3cluster"}
//
// parse_wire_object handles exactly that shape (escapes included) and
// nothing more: no nesting, no arrays, no null. Responses are assembled
// with WireWriter, which reuses core::json_escape so output lines are
// valid JSON consumable by any client. RunReport payloads embed
// core::report_to_json verbatim as a raw nested object.
// Robustness: requests come from untrusted clients, so the parser is
// strict and bounded — lines longer than kMaxWireLine are rejected (and
// read_wire_line drains them WITHOUT buffering, so a hostile client
// cannot balloon the server's memory with one endless line), trailing
// characters after the closing '}' are an error, and malformed escapes or
// nesting fail the whole line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace approxit::svc {

/// Upper bound on one request line (1 MiB). A legitimate flat request is
/// a few hundred bytes; anything past this is malformed by definition.
inline constexpr std::size_t kMaxWireLine = std::size_t{1} << 20;

/// getline with the kMaxWireLine cap. Returns false at EOF with nothing
/// read. When the line exceeds `max_length`, the rest of the line is
/// DRAINED (discarded, never buffered), `*overflow` is set when non-null,
/// and true is returned with the truncated prefix — the caller can reply
/// with an error and keep serving the connection.
bool read_wire_line(std::istream& in, std::string& line,
                    bool* overflow = nullptr,
                    std::size_t max_length = kMaxWireLine);

/// One parsed value: the raw text plus whether it was a JSON string
/// (quoted) — "42" and 42 are distinguishable. `raw` marks a nested
/// object/array captured verbatim (allow_raw_nested parses only).
struct WireValue {
  std::string text;
  bool quoted = false;
  bool raw = false;
};

/// A parsed flat JSON object with typed, defaulted accessors.
class WireObject {
 public:
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key,
                         const std::string& fallback = {}) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::map<std::string, WireValue>& values() { return values_; }
  const std::map<std::string, WireValue>& values() const { return values_; }

 private:
  std::map<std::string, WireValue> values_;
};

/// Parses one flat JSON object line. Returns nullopt (with `error` set when
/// non-null) on malformed input, lines over kMaxWireLine, or trailing
/// characters after the object. With `allow_raw_nested` a top-level nested
/// object/array value is captured VERBATIM (balanced braces, string-aware)
/// as a raw WireValue instead of being rejected — the client-side mode for
/// responses that embed a RunReport or metrics object; requests stay
/// strictly flat.
std::optional<WireObject> parse_wire_object(std::string_view line,
                                            std::string* error = nullptr,
                                            bool allow_raw_nested = false);

/// Assembles one flat-ish JSON object line: scalar fields plus raw
/// (pre-serialized) nested values.
class WireWriter {
 public:
  WireWriter& field(std::string_view key, std::string_view value);
  WireWriter& field(std::string_view key, const char* value);
  WireWriter& field(std::string_view key, std::int64_t value);
  WireWriter& field(std::string_view key, std::size_t value);
  WireWriter& field(std::string_view key, double value);
  WireWriter& field(std::string_view key, bool value);
  /// Embeds `json` verbatim (must already be valid JSON).
  WireWriter& raw(std::string_view key, std::string_view json);

  /// The finished "{...}" line (no trailing newline).
  std::string str() const;

 private:
  void begin_field(std::string_view key);

  std::string body_;
};

}  // namespace approxit::svc
