// Seeded chaos harness for the serving runtime.
//
// Resilience code that is only exercised by real failures is untested
// code. ChaosConfig injects the failures on purpose — worker stalls, job
// crashes, faulty ALUs, profile-cache corruption, clock skew — and does it
// DETERMINISTICALLY: every decision is a pure function of (seed, job id,
// attempt), never of RNG draw order, thread scheduling or wall clock. The
// same seed therefore produces the identical set of injected failures —
// and, because job execution is already thread-count-invariant, the
// identical per-job outcomes — whether the runtime runs 1 worker or 8.
//
// With `enabled == false` (the default) the engine is never consulted and
// the runtime is bit-identical to a chaos-free build.
#pragma once

#include <cstdint>
#include <string>

namespace approxit::svc {

/// Fault-injection policy of one ServiceRuntime. All probabilities are
/// per job ATTEMPT (a retry redraws with its new attempt number).
struct ChaosConfig {
  /// Master switch; false leaves every seam untouched.
  bool enabled = false;
  /// Seed of every injection decision.
  std::uint64_t seed = 0xc4a05;
  /// Probability a worker stalls for `stall_ms` before executing the
  /// attempt (models a descheduled / IO-blocked worker; the job still
  /// runs afterwards, eating into its deadline).
  double stall_probability = 0.0;
  double stall_ms = 0.0;
  /// Probability the attempt crashes outright ("chaos: injected crash",
  /// transient — the retry ladder applies).
  double crash_probability = 0.0;
  /// Probability the attempt's ONLINE stage runs on a FaultyQcsAlu
  /// (arith/fault_injector.h) with per-op fault rate `alu_fault_rate`.
  /// Characterization always runs on a clean ALU — a faulted profile in
  /// the shared cache would poison every other job.
  double alu_fault_probability = 0.0;
  double alu_fault_rate = 0.0;
  /// Also fault the ACCURATE mode at `alu_fault_rate` (normally it stays
  /// clean — nominal voltage). This models a datapath whose safe mode is
  /// itself failing: the watchdog's recovery ladder cannot help, so the
  /// run must surface a structured abort ("aborted: ...") instead of
  /// recovering — exactly the path a resilience test wants to force.
  bool alu_fault_accurate = false;
  /// Probability a freshly persisted profile file is corrupted on disk
  /// (keyed on the FILE path, not the writing job — whichever job wins
  /// the single-flight race, the same file gets the same verdict).
  double cache_corruption_probability = 0.0;
  /// Constant skew added to the runtime's millisecond clock — deadlines,
  /// token buckets and retry timers all see the skewed axis, so a test
  /// can age a deadline without sleeping.
  double clock_skew_ms = 0.0;
};

/// Stateless decision oracle over a ChaosConfig (see header comment).
class ChaosEngine {
 public:
  explicit ChaosEngine(const ChaosConfig& config) : config_(config) {}

  const ChaosConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  bool stall(std::uint64_t job_id, std::size_t attempt) const;
  bool crash(std::uint64_t job_id, std::size_t attempt) const;
  bool alu_fault(std::uint64_t job_id, std::size_t attempt) const;

  /// Seed for the attempt's FaultyQcsAlu: differs per attempt, so a retry
  /// sees a fresh fault stream (clone_fresh alone would replay the same
  /// faults and retry forever).
  std::uint64_t alu_fault_seed(std::uint64_t job_id,
                               std::size_t attempt) const;

  /// Whether the profile file at `path` should be corrupted after persist.
  bool corrupt_profile(const std::string& path) const;

 private:
  /// Uniform [0,1) draw keyed on (seed, stream, job, attempt).
  double draw(std::uint64_t stream, std::uint64_t job_id,
              std::size_t attempt) const;

  ChaosConfig config_;
};

/// Flips one byte near the middle of the file at `path` (the corruption
/// the cache-corruption chaos injects; exposed for tests).
void corrupt_file_byte(const std::string& path);

}  // namespace approxit::svc
