#include "svc/chaos.h"

#include <fstream>

#include "core/characterization.h"
#include "util/rng.h"

namespace approxit::svc {

namespace {

/// Distinct decision streams; each chaos question draws from its own
/// stream so e.g. enabling stalls cannot change which jobs crash.
enum Stream : std::uint64_t {
  kStall = 0x57a11,
  kCrash = 0xc7a54,
  kAluFault = 0xa10f,
  kCorrupt = 0xc0ff,
};

}  // namespace

double ChaosEngine::draw(std::uint64_t stream, std::uint64_t job_id,
                         std::size_t attempt) const {
  util::Rng rng(config_.seed ^ (stream * 0x2545f4914f6cdd1dULL) ^
                (job_id * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(attempt) << 48));
  return rng.uniform();
}

bool ChaosEngine::stall(std::uint64_t job_id, std::size_t attempt) const {
  return config_.enabled && config_.stall_probability > 0.0 &&
         draw(kStall, job_id, attempt) < config_.stall_probability;
}

bool ChaosEngine::crash(std::uint64_t job_id, std::size_t attempt) const {
  return config_.enabled && config_.crash_probability > 0.0 &&
         draw(kCrash, job_id, attempt) < config_.crash_probability;
}

bool ChaosEngine::alu_fault(std::uint64_t job_id, std::size_t attempt) const {
  return config_.enabled && config_.alu_fault_probability > 0.0 &&
         draw(kAluFault, job_id, attempt) < config_.alu_fault_probability;
}

std::uint64_t ChaosEngine::alu_fault_seed(std::uint64_t job_id,
                                          std::size_t attempt) const {
  return config_.seed ^ (job_id * 0xd1342543de82ef95ULL) ^
         (static_cast<std::uint64_t>(attempt) + 1);
}

bool ChaosEngine::corrupt_profile(const std::string& path) const {
  if (!config_.enabled || config_.cache_corruption_probability <= 0.0) {
    return false;
  }
  // Keyed on the path: whichever job persists this file, same verdict.
  return draw(kCorrupt, core::fnv1a64(path), 0) <
         config_.cache_corruption_probability;
}

void corrupt_file_byte(const std::string& path) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return;
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  if (size <= 0) return;
  const std::streamoff offset = size / 2;
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(offset);
  file.write(&byte, 1);
}

}  // namespace approxit::svc
