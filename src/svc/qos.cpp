#include "svc/qos.h"

#include <algorithm>

#include "util/rng.h"

namespace approxit::svc {

TokenBucket::TokenBucket(double rate, double burst, double now_ms)
    : rate_(std::max(rate, 0.0)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_ms_(now_ms) {}

void TokenBucket::refill(double now_ms) {
  if (now_ms > last_ms_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * (now_ms - last_ms_) / 1000.0);
    last_ms_ = now_ms;
  }
}

bool TokenBucket::try_take(double cost, double now_ms) {
  refill(now_ms);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::available(double now_ms) {
  refill(now_ms);
  return tokens_;
}

double retry_backoff_ms(const QosConfig& qos, std::uint64_t job_id,
                        std::size_t attempt) {
  double backoff = qos.retry_base_ms;
  for (std::size_t i = 0; i < attempt && backoff < qos.retry_max_ms; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, qos.retry_max_ms);
  // Jitter keyed on (seed, job, attempt) — NOT on draw order — so the
  // schedule is identical for any worker count and interleaving.
  util::Rng rng(qos.retry_seed ^ (job_id * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(attempt) << 32));
  return backoff * (0.5 + rng.uniform() / 2.0);
}

}  // namespace approxit::svc
