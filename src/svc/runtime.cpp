#include "svc/runtime.h"

#include <chrono>
#include <exception>
#include <utility>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "arith/mode.h"
#include "core/adaptive_strategy.h"
#include "core/incremental_strategy.h"
#include "core/report_io.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "obs/trace.h"
#include "workloads/datasets.h"

namespace approxit::svc {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<workloads::GmmDatasetId> gmm_dataset_id(
    const std::string& name) {
  if (name == "3cluster") return workloads::GmmDatasetId::k3cluster;
  if (name == "3d3cluster") return workloads::GmmDatasetId::k3d3cluster;
  if (name == "4cluster") return workloads::GmmDatasetId::k4cluster;
  return std::nullopt;
}

std::optional<workloads::SeriesId> series_id(const std::string& name) {
  if (name == "hangseng") return workloads::SeriesId::kHangSeng;
  if (name == "nasdaq") return workloads::SeriesId::kNasdaq;
  if (name == "sp500") return workloads::SeriesId::kSp500;
  return std::nullopt;
}

std::unique_ptr<core::Strategy> make_strategy(const std::string& name) {
  if (name == "incremental") {
    return std::make_unique<core::IncrementalStrategy>();
  }
  if (name == "adaptive") {
    return std::make_unique<core::AdaptiveAngleStrategy>();
  }
  if (const std::optional<arith::ApproxMode> mode = arith::parse_mode(name)) {
    return std::make_unique<core::StaticStrategy>(*mode);
  }
  return nullptr;
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

ServiceRuntime::ServiceRuntime(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache, &cache_metrics_),
      gmm_alu_(arith::QcsConfig{}),
      ar_alu_(apps::ar_qcs_config()) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  paused_ = config_.start_paused;
  workers_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServiceRuntime::~ServiceRuntime() { shutdown(); }

bool ServiceRuntime::validate(const JobSpec& spec, std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = std::string("bad_request: ") + message;
    return false;
  };
  if (spec.tenant.empty()) return fail("tenant must be non-empty");
  if (spec.app == "gmm") {
    if (!gmm_dataset_id(spec.dataset)) {
      return fail("unknown gmm dataset (3cluster|3d3cluster|4cluster)");
    }
  } else if (spec.app == "ar") {
    if (!series_id(spec.dataset)) {
      return fail("unknown ar dataset (hangseng|nasdaq|sp500)");
    }
  } else {
    return fail("unknown app (gmm|ar)");
  }
  if (make_strategy(spec.strategy) == nullptr) {
    return fail("unknown strategy (incremental|adaptive|accurate|level1..4)");
  }
  return true;
}

std::optional<std::uint64_t> ServiceRuntime::submit(const JobSpec& spec,
                                                    std::string* error) {
  if (!validate(spec, error)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++tallies_.rejected_bad_request;
    return std::nullopt;
  }

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (error != nullptr) *error = "shutting_down";
      return std::nullopt;
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++tallies_.rejected_queue_full;
      if (error != nullptr) *error = "queue_full";
      return std::nullopt;
    }
    if (config_.per_tenant_cap > 0) {
      const auto it = tenant_active_.find(spec.tenant);
      const std::size_t active = it == tenant_active_.end() ? 0 : it->second;
      if (active >= config_.per_tenant_cap) {
        ++tallies_.rejected_tenant_cap;
        if (error != nullptr) *error = "tenant_cap";
        return std::nullopt;
      }
    }

    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = spec;
    job->enqueue_us = obs::trace_now_us();
    jobs_[id] = std::move(job);
    queue_.push_back(id);
    ++tenant_active_[spec.tenant];
    ++tallies_.submitted;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant("svc", "submit",
                      {obs::arg("job", static_cast<std::size_t>(id)),
                       obs::arg("tenant", spec.tenant),
                       obs::arg("app", spec.app),
                       obs::arg("dataset", spec.dataset),
                       obs::arg("strategy", spec.strategy)});
  }
  work_cv_.notify_one();
  return id;
}

void ServiceRuntime::worker_loop(std::size_t worker_index) {
  obs::LaneScope lane(static_cast<std::uint32_t>(worker_index + 1),
                      "svc-worker-" + std::to_string(worker_index));
  while (true) {
    std::uint64_t id = 0;
    JobSpec spec;
    double queue_ms = 0.0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() || paused_) {
        // stopping_ drains the queue first: exit only once it is empty
        // (a paused runtime being shut down resumes implicitly).
        if (stopping_ && queue_.empty()) return;
        if (stopping_ && paused_) paused_ = false;
        continue;
      }
      id = queue_.front();
      queue_.pop_front();
      Job& job = *jobs_.at(id);
      job.state = JobState::kRunning;
      job.queue_ms = (obs::trace_now_us() - job.enqueue_us) / 1000.0;
      spec = job.spec;
      queue_ms = job.queue_ms;
      ++running_;
    }

    const double start_us = obs::trace_now_us();
    const double start_ms = now_ms();
    // Runs unlocked, staging everything into locals: a concurrent
    // status() of this kRunning job only ever sees fields written under
    // mutex_ (the kRunning transition above, the commit below).
    ExecResult result = execute(spec);
    const double run_ms = now_ms() - start_ms;
    const JobState final_state =
        result.error.empty() ? JobState::kDone : JobState::kFailed;
    const bool cache_hit = result.cache_hit;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      Job& job = *jobs_.at(id);
      job.cache_hit = result.cache_hit;
      job.error = std::move(result.error);
      job.report_json = std::move(result.report_json);
      job.report = std::move(result.report);
      job.characterization_ms = result.characterization_ms;
      job.metrics = std::move(result.metrics);
      job.run_ms = run_ms;
      job.state = final_state;
      if (final_state == JobState::kDone) {
        ++tallies_.completed;
      } else {
        ++tallies_.failed;
      }
      --running_;
      const auto it = tenant_active_.find(spec.tenant);
      if (it != tenant_active_.end() && --it->second == 0) {
        tenant_active_.erase(it);
      }
      timing_metrics_.histogram("svc.queue_ms", 0.0, 10000.0, 64)
          .record(queue_ms);
      timing_metrics_.histogram("svc.run_ms", 0.0, 60000.0, 64)
          .record(run_ms);
      if (!cache_hit) {
        timing_metrics_.histogram("svc.characterization_ms", 0.0, 60000.0, 64)
            .record(job.characterization_ms);
      }
      ++terminal_retained_;
      retire_excess_locked();
      // The Job may have just been retired — only locals below this line.
    }
    if (obs::trace_enabled()) {
      obs::emit_span("svc", "job", start_us,
                     {obs::arg("job", static_cast<std::size_t>(id)),
                      obs::arg("tenant", spec.tenant),
                      obs::arg("app", spec.app),
                      obs::arg("dataset", spec.dataset),
                      obs::arg("state", job_state_name(final_state)),
                      obs::arg("cache_hit", cache_hit)});
    }
    done_cv_.notify_all();
  }
}

ServiceRuntime::ExecResult ServiceRuntime::execute(const JobSpec& spec) {
  ExecResult result;
  result.metrics = std::make_unique<obs::MetricsRegistry>();
  try {
    core::CharacterizationOptions char_options;
    if (spec.characterization_iterations > 0) {
      char_options.iterations = spec.characterization_iterations;
    }

    // Everything a job touches is built from its spec alone: dataset and
    // method on this worker's stack, ALU as a fresh clone of the app
    // prototype. That isolation is what makes per-job reports
    // thread-count-invariant.
    const auto run_with = [&](opt::IterativeMethod& method,
                              const arith::QcsAlu& prototype,
                              const std::string& workload_tag) {
      const std::unique_ptr<arith::QcsAlu> alu = prototype.clone_fresh();
      const std::unique_ptr<core::Strategy> strategy =
          make_strategy(spec.strategy);

      const core::CharacterizationKey key = core::characterization_cache_key(
          method, *alu, char_options, workload_tag);
      const core::ModeCharacterization profile = cache_.get_or_compute(
          key,
          [&] {
            const double t0 = now_ms();
            core::ModeCharacterization computed =
                core::characterize(method, *alu, char_options);
            result.characterization_ms = now_ms() - t0;
            return computed;
          },
          &result.cache_hit);

      result.report = core::SessionBuilder()
                          .method(method)
                          .strategy(*strategy)
                          .alu(*alu)
                          .max_iterations(spec.max_iterations)
                          .keep_trace(spec.keep_trace)
                          .metrics(result.metrics.get())
                          .characterization(profile)
                          .run();
      result.report_json = core::report_to_json(result.report);
    };

    if (spec.app == "gmm") {
      const workloads::GmmDataset dataset =
          workloads::make_gmm_dataset(*gmm_dataset_id(spec.dataset));
      apps::GmmEm method(dataset);
      run_with(method, gmm_alu_, dataset.name);
    } else {
      const workloads::TimeSeriesDataset dataset =
          workloads::make_series_dataset(*series_id(spec.dataset));
      apps::AutoRegression method(dataset);
      run_with(method, ar_alu_, dataset.name);
    }
  } catch (const std::exception& error) {
    result.error = error.what();
  } catch (...) {
    result.error = "unknown error";
  }
  return result;
}

JobSnapshot ServiceRuntime::snapshot_locked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.spec = job.spec;
  snapshot.cache_hit = job.cache_hit;
  snapshot.error = job.error;
  snapshot.report_json = job.report_json;
  snapshot.report = job.report;
  snapshot.queue_ms = job.queue_ms;
  snapshot.run_ms = job.run_ms;
  snapshot.characterization_ms = job.characterization_ms;
  return snapshot;
}

std::optional<JobSnapshot> ServiceRuntime::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

bool ServiceRuntime::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (jobs_.find(id) == jobs_.end()) return false;
  // Re-find on every wake: the job can be retired (erased) while we wait,
  // which itself proves it reached a terminal state.
  done_cv_.wait(lock, [&] {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return true;
    const JobState state = it->second->state;
    return state == JobState::kDone || state == JobState::kFailed;
  });
  return true;
}

bool ServiceRuntime::forget(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const JobState state = it->second->state;
  if (state != JobState::kDone && state != JobState::kFailed) return false;
  retire_locked(it);
  return true;
}

std::map<std::uint64_t, std::unique_ptr<ServiceRuntime::Job>>::iterator
ServiceRuntime::retire_locked(
    std::map<std::uint64_t, std::unique_ptr<Job>>::iterator it) {
  if (it->second->metrics != nullptr) {
    retired_metrics_.merge(*it->second->metrics);
  }
  --terminal_retained_;
  return jobs_.erase(it);
}

void ServiceRuntime::retire_excess_locked() {
  if (config_.retain_terminal == 0) return;
  // jobs_ is id-ordered, so this retires the lowest-id terminal jobs;
  // the (bounded) queued/running prefix is skipped, never erased.
  auto it = jobs_.begin();
  while (terminal_retained_ > config_.retain_terminal && it != jobs_.end()) {
    const JobState state = it->second->state;
    if (state == JobState::kDone || state == JobState::kFailed) {
      it = retire_locked(it);
    } else {
      ++it;
    }
  }
}

std::optional<JobSnapshot> ServiceRuntime::result(std::uint64_t id) {
  if (!wait(id)) return std::nullopt;
  return status(id);
}

void ServiceRuntime::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

ServiceStats ServiceRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = tallies_;
  stats.queued = queue_.size();
  stats.running = running_;
  stats.cache = cache_.stats();
  return stats;
}

void ServiceRuntime::collect_metrics(obs::MetricsRegistry& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Retired jobs first, then jobs_ in id order (std::map); merging in that
  // fixed order makes the counter/histogram aggregate
  // thread-count-invariant (see the collect_metrics declaration for the
  // gauge caveat under retirement).
  out.merge(retired_metrics_);
  for (const auto& [id, job] : jobs_) {
    if (job->metrics != nullptr &&
        (job->state == JobState::kDone || job->state == JobState::kFailed)) {
      out.merge(*job->metrics);
    }
  }
  out.merge(cache_metrics_);
}

void ServiceRuntime::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void ServiceRuntime::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void ServiceRuntime::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    paused_ = false;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace approxit::svc
