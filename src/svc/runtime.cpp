#include "svc/runtime.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "arith/fault_injector.h"
#include "arith/mode.h"
#include "core/adaptive_strategy.h"
#include "core/incremental_strategy.h"
#include "core/report_io.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "core/watchdog.h"
#include "obs/trace.h"
#include "workloads/datasets.h"

namespace approxit::svc {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<workloads::GmmDatasetId> gmm_dataset_id(
    const std::string& name) {
  if (name == "3cluster") return workloads::GmmDatasetId::k3cluster;
  if (name == "3d3cluster") return workloads::GmmDatasetId::k3d3cluster;
  if (name == "4cluster") return workloads::GmmDatasetId::k4cluster;
  return std::nullopt;
}

std::optional<workloads::SeriesId> series_id(const std::string& name) {
  if (name == "hangseng") return workloads::SeriesId::kHangSeng;
  if (name == "nasdaq") return workloads::SeriesId::kNasdaq;
  if (name == "sp500") return workloads::SeriesId::kSp500;
  return std::nullopt;
}

std::unique_ptr<core::Strategy> make_strategy(const std::string& name) {
  if (name == "incremental") {
    return std::make_unique<core::IncrementalStrategy>();
  }
  if (name == "adaptive") {
    return std::make_unique<core::AdaptiveAngleStrategy>();
  }
  if (const std::optional<arith::ApproxMode> mode = arith::parse_mode(name)) {
    return std::make_unique<core::StaticStrategy>(*mode);
  }
  return nullptr;
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled ||
         state == JobState::kDeadlineExceeded;
}

std::string_view job_event_kind_name(JobEvent::Kind kind) {
  switch (kind) {
    case JobEvent::Kind::kQueued: return "queued";
    case JobEvent::Kind::kRunning: return "running";
    case JobEvent::Kind::kProgress: return "progress";
    case JobEvent::Kind::kTerminal: return "terminal";
  }
  return "?";
}

void ServiceRuntime::emit_job_event(JobEvent::Kind kind, std::uint64_t id,
                                    const std::string& tenant, JobState state,
                                    std::size_t attempt, std::size_t iteration,
                                    double objective) const {
  if (!config_.on_job_event) return;
  JobEvent event;
  event.kind = kind;
  event.id = id;
  event.tenant = tenant;
  event.state = state;
  event.attempt = attempt;
  event.iteration = iteration;
  event.objective = objective;
  config_.on_job_event(event);
}

ServiceRuntime::ServiceRuntime(ServiceConfig config)
    : config_(std::move(config)),
      chaos_(config_.chaos),
      cache_([this] {
        if (config_.shared_cache != nullptr) {
          // An external tier is shared across shards: the local cache is a
          // dormant stand-in (no disk directory to scrub, no counters).
          ProfileCacheConfig inert;
          inert.directory.clear();
          inert.scrub_on_start = false;
          return inert;
        }
        // The chaos corruption seam: flip a byte in a freshly persisted
        // profile so the read path's checksum/quarantine machinery gets
        // exercised end to end.
        ProfileCacheConfig cache_config = config_.cache;
        if (config_.chaos.enabled &&
            config_.chaos.cache_corruption_probability > 0.0) {
          const std::function<void(const std::string&)> previous =
              cache_config.after_persist;
          cache_config.after_persist = [this,
                                        previous](const std::string& path) {
            if (chaos_.corrupt_profile(path)) corrupt_file_byte(path);
            if (previous) previous(path);
          };
        }
        return cache_config;
      }(), &cache_metrics_),
      gmm_alu_(arith::QcsConfig{}),
      ar_alu_(apps::ar_qcs_config()) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.batch.max_batch == 0) config_.batch.max_batch = 1;
  scorecard_ = obs::QualityScorecard(config_.telemetry);
  paused_ = config_.start_paused;
  workers_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServiceRuntime::~ServiceRuntime() { shutdown(); }

bool ServiceRuntime::validate(const JobSpec& spec, std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = std::string("bad_request: ") + message;
    return false;
  };
  if (spec.tenant.empty()) return fail("tenant must be non-empty");
  if (spec.app == "gmm") {
    if (!gmm_dataset_id(spec.dataset)) {
      return fail("unknown gmm dataset (3cluster|3d3cluster|4cluster)");
    }
  } else if (spec.app == "ar") {
    if (!series_id(spec.dataset)) {
      return fail("unknown ar dataset (hangseng|nasdaq|sp500)");
    }
  } else {
    return fail("unknown app (gmm|ar)");
  }
  if (make_strategy(spec.strategy) == nullptr) {
    return fail("unknown strategy (incremental|adaptive|accurate|level1..4)");
  }
  return true;
}

double ServiceRuntime::clock_now_ms() const {
  return now_ms() + config_.chaos.clock_skew_ms;
}

double ServiceRuntime::job_cost(const JobSpec& spec) {
  // Iteration budget x problem dimension: the work a job buys, as a cheap
  // deterministic surrogate computable from the spec alone. 100 stands in
  // for "the dataset's MAX_ITER" when the budget is defaulted.
  const double iterations =
      spec.max_iterations > 0 ? static_cast<double>(spec.max_iterations)
                              : 100.0;
  double dimension = 2.0;  // 2-D GMM datasets.
  if (spec.app == "gmm" && spec.dataset == "3d3cluster") dimension = 3.0;
  if (spec.app == "ar") dimension = 4.0;  // AR model order.
  return iterations * dimension;
}

std::optional<std::uint64_t> ServiceRuntime::submit(const JobSpec& spec,
                                                    std::string* error) {
  const auto trace_reject = [&spec](std::string_view reason) {
    if (obs::trace_enabled()) {
      obs::emit_instant("svc", "reject",
                        {obs::arg("tenant", spec.tenant),
                         obs::arg("reason", reason)});
    }
  };
  if (!validate(spec, error)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tallies_.rejected_bad_request;
    }
    trace_reject("bad_request");
    return std::nullopt;
  }

  std::uint64_t id = 0;
  bool degraded = false;
  double deadline_rel = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (error != nullptr) *error = "shutting_down";
      return std::nullopt;
    }
    const double now = clock_now_ms();
    // Admission chain: rate limit -> capacity -> watermarks -> tenant cap.
    // The token bucket charges COST (iterations x dimension), so one huge
    // job and many small ones draw down a tenant's budget alike.
    if (config_.qos.tenant_rate > 0.0) {
      auto [it, inserted] = tenant_buckets_.try_emplace(
          spec.tenant, config_.qos.tenant_rate,
          std::max(config_.qos.tenant_burst, job_cost(JobSpec{})), now);
      if (!it->second.try_take(job_cost(spec), now)) {
        ++tallies_.rejected_rate_limited;
        qos_metrics_.counter("svc.shed.rate_limited").add(1.0);
        if (error != nullptr) *error = "rate_limited";
        trace_reject("rate_limited");
        return std::nullopt;
      }
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++tallies_.rejected_queue_full;
      qos_metrics_.counter("svc.shed.queue_full").add(1.0);
      if (error != nullptr) *error = "queue_full";
      trace_reject("queue_full");
      return std::nullopt;
    }
    // Graceful degradation before shedding: between the watermarks a job
    // trades quality for latency (coarser static level, capped budget) —
    // the paper's energy/quality knob repurposed for overload. At the
    // shed watermark only priority >= 1 jobs still get that trade.
    const std::size_t depth = queue_.size();
    if (config_.qos.shed_watermark > 0 &&
        depth >= config_.qos.shed_watermark) {
      if (spec.priority >= 1) {
        degraded = true;
      } else {
        ++tallies_.shed;
        qos_metrics_.counter("svc.shed.overload").add(1.0);
        if (error != nullptr) *error = "shed_overload";
        trace_reject("shed_overload");
        return std::nullopt;
      }
    } else if (config_.qos.degrade_watermark > 0 &&
               depth >= config_.qos.degrade_watermark) {
      degraded = true;
    }
    if (config_.per_tenant_cap > 0) {
      const auto it = tenant_active_.find(spec.tenant);
      const std::size_t active = it == tenant_active_.end() ? 0 : it->second;
      if (active >= config_.per_tenant_cap) {
        ++tallies_.rejected_tenant_cap;
        if (error != nullptr) *error = "tenant_cap";
        trace_reject("tenant_cap");
        return std::nullopt;
      }
    }

    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = spec;
    job->degraded = degraded;
    job->enqueue_us = obs::trace_now_us();
    job->not_before_ms = now;  // Eligible immediately (clock is monotonic).
    // Deadlines live on the runtime clock (chaos skew included), so a
    // skewed clock ages real deadlines — exactly what the chaos harness
    // wants to prove the runtime survives.
    const double skew = config_.chaos.clock_skew_ms;
    job->cancel = core::CancelSource(
        [skew] { return now_ms() + skew; });
    deadline_rel =
        spec.deadline_ms > 0.0 ? spec.deadline_ms : config_.qos.slo_ms;
    if (deadline_rel > 0.0) {
      job->cancel.set_deadline_ms(now + deadline_rel);
    }
    job->deadline_rel_ms = deadline_rel;
    if (degraded) {
      ++tallies_.degraded;
      qos_metrics_.counter("svc.degraded.jobs").add(1.0);
    }
    jobs_[id] = std::move(job);
    queue_.push_back(id);
    ++tenant_active_[spec.tenant];
    ++tallies_.submitted;
    timing_metrics_.gauge("svc.queue.depth")
        .set(static_cast<double>(queue_.size()));
    // Under mutex_ on purpose: a worker cannot transition this job to
    // kRunning until the lock is released, so a subscriber always sees
    // queued strictly before running.
    emit_job_event(JobEvent::Kind::kQueued, id, spec.tenant,
                   JobState::kQueued, 0);
  }
  if (obs::trace_enabled()) {
    // The admission event opens the job's own causal lane: everything this
    // job does from here on (cache lookups, iterations, terminal cause)
    // renders in lane job_lane(id) with job/tenant/attempt args attached.
    obs::JobContext context;
    context.job_id = id;
    context.tenant = spec.tenant;
    obs::JobScope scope(context, job_lane(id),
                        "job-" + std::to_string(id));
    obs::emit_instant("svc", "submit",
                      {obs::arg("app", spec.app),
                       obs::arg("dataset", spec.dataset),
                       obs::arg("strategy", spec.strategy),
                       obs::arg("degraded", degraded),
                       obs::arg("priority",
                                static_cast<double>(spec.priority)),
                       obs::arg("deadline_ms", deadline_rel)});
  }
  work_cv_.notify_one();
  return id;
}

void ServiceRuntime::finalize_terminal_locked(Job& job) {
  switch (job.state) {
    case JobState::kDone: ++tallies_.completed; break;
    case JobState::kFailed: ++tallies_.failed; break;
    case JobState::kCancelled:
      ++tallies_.cancelled;
      qos_metrics_.counter("svc.cancelled.jobs").add(1.0);
      break;
    case JobState::kDeadlineExceeded:
      ++tallies_.deadline_exceeded;
      qos_metrics_.counter("svc.deadline_exceeded.jobs").add(1.0);
      break;
    default: break;
  }
  const auto it = tenant_active_.find(job.spec.tenant);
  if (it != tenant_active_.end() && --it->second == 0) {
    tenant_active_.erase(it);
  }

  // Per-tenant DETERMINISTIC aggregates, written into the job's own
  // registry so collect_metrics' fixed job-id merge order keeps them
  // identical for any worker count. Every value below is a function of
  // the job's spec and its (thread-invariant) RunReport alone. Jobs that
  // die while still queued get a registry created here, so the tenant
  // tallies reconcile exactly with the full job stream.
  const std::string& tenant = job.spec.tenant;
  const std::string_view state = job_state_name(job.state);
  if (job.metrics == nullptr) {
    job.metrics = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& metrics = *job.metrics;
  const auto tenant_counter = [&](std::string_view base) -> obs::Counter& {
    return metrics.counter(obs::labeled(base, {{"tenant", tenant}}));
  };
  tenant_counter("svc.tenant.jobs").add(1.0);
  tenant_counter("svc.tenant.iterations")
      .add(static_cast<double>(job.report.iterations));
  tenant_counter("svc.tenant.energy").add(job.report.total_energy);
  tenant_counter("svc.tenant.quality_error").add(job.quality_error);
  tenant_counter("svc.tenant.energy_ratio").add(job.energy_ratio);
  metrics
      .counter(obs::labeled("svc.tenant.terminal",
                            {{"state", state}, {"tenant", tenant}}))
      .add(1.0);
  if (job.degraded) tenant_counter("svc.tenant.degraded").add(1.0);
  if (job.report.converged) tenant_counter("svc.tenant.converged").add(1.0);

  // Operational (completion-order) SLO signals: the queue-vs-run latency
  // split, deadline burn and the rolling quality scorecard. These live
  // with the wall-clock registry, outside the determinism claim. Every
  // terminal job records its queue time (including jobs that died in the
  // queue); run time is recorded only for jobs that actually executed, so
  // queue deaths don't drag the run distribution toward zero.
  const double latency_ms = job.queue_ms + job.run_ms;
  timing_metrics_.histogram("svc.job.queue_ms", 0.0, 10000.0, 64)
      .record(job.queue_ms);
  if (job.run_ms > 0.0) {
    timing_metrics_.histogram("svc.job.run_ms", 0.0, 60000.0, 64)
        .record(job.run_ms);
  }
  timing_metrics_
      .histogram(obs::labeled("svc.tenant.latency_ms", {{"tenant", tenant}}),
                 0.0, 60000.0, 64)
      .record(latency_ms);
  if (job.deadline_rel_ms > 0.0) {
    timing_metrics_
        .histogram(
            obs::labeled("svc.tenant.deadline_burn", {{"tenant", tenant}}),
            0.0, 2.0, 40)
        .record(latency_ms / job.deadline_rel_ms);
  }
  obs::JobOutcome outcome;
  outcome.tenant = tenant;
  outcome.quality_error = job.quality_error;
  outcome.energy_ratio = job.energy_ratio;
  outcome.latency_ms = latency_ms;
  outcome.converged = job.report.converged;
  outcome.degraded_admission = job.degraded;
  outcome.terminal = std::string(state);
  if (scorecard_.record(outcome)) {
    timing_metrics_
        .counter(obs::labeled("svc.scorecard.threshold_crossings",
                              {{"tenant", tenant}}))
        .add(1.0);
    if (obs::trace_enabled()) {
      const auto score = scorecard_.tenants().find(tenant);
      obs::emit_instant(
          "svc", "quality_threshold",
          {obs::arg("tenant", tenant),
           obs::arg("rolling_quality",
                    score != scorecard_.tenants().end()
                        ? score->second.rolling_quality()
                        : 0.0),
           obs::arg("threshold", config_.telemetry.quality_threshold)});
    }
  }

  ++terminal_retained_;
  retire_excess_locked();
}

bool ServiceRuntime::batch_eligible_locked(const Job& job) const {
  // Chaos jobs keep per-attempt fault streams, deadline jobs keep their
  // one-iteration cancellation latency: both run solo.
  return config_.batch.enabled && !config_.chaos.enabled &&
         job.deadline_rel_ms == 0.0 &&
         job.cancel.reason() == core::CancelReason::kNone;
}

namespace {

/// The batching compatibility predicate: two specs coalesce iff every
/// execution-relevant field matches (tenant and priority are scheduling
/// concerns; the report is a pure function of the fields below plus the
/// degraded flag, which gather_batch_locked compares on the Job).
bool same_batch_key(const JobSpec& a, const JobSpec& b) {
  return a.app == b.app && a.dataset == b.dataset &&
         a.strategy == b.strategy && a.max_iterations == b.max_iterations &&
         a.characterization_iterations == b.characterization_iterations &&
         a.keep_trace == b.keep_trace;
}

}  // namespace

void ServiceRuntime::gather_batch_locked(const Job& leader,
                                         std::vector<BatchPeer>& peers) {
  const double now = clock_now_ms();
  bool claimed = false;
  for (auto it = queue_.begin();
       it != queue_.end() && peers.size() + 1 < config_.batch.max_batch;) {
    Job& candidate = *jobs_.at(*it);
    const bool joinable =
        candidate.not_before_ms <= now && batch_eligible_locked(candidate) &&
        candidate.degraded == leader.degraded &&
        same_batch_key(candidate.spec, leader.spec);
    if (!joinable) {
      ++it;
      continue;
    }
    it = queue_.erase(it);
    candidate.state = JobState::kRunning;
    if (candidate.attempt == 0) {
      candidate.queue_ms =
          (obs::trace_now_us() - candidate.enqueue_us) / 1000.0;
    }
    ++running_;
    claimed = true;
    peers.push_back(
        BatchPeer{candidate.id, candidate.attempt, candidate.spec.tenant});
  }
  if (claimed) {
    timing_metrics_.gauge("svc.queue.depth")
        .set(static_cast<double>(queue_.size()));
  }
}

void ServiceRuntime::worker_loop(std::size_t worker_index) {
  obs::LaneScope lane(static_cast<std::uint32_t>(worker_index + 1),
                      "svc-worker-" + std::to_string(worker_index));
  while (true) {
    std::uint64_t id = 0;
    JobSpec spec;
    bool degraded = false;
    std::size_t attempt = 0;
    core::CancelToken token;
    std::vector<BatchPeer> peers;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stopping_ && paused_) paused_ = false;
        if (stopping_ && queue_.empty()) return;
        if (!paused_ && !queue_.empty()) {
          // Pick the schedulable job: highest priority among those whose
          // retry backoff has elapsed, FIFO within a priority. The queue
          // is bounded (queue_capacity), so the scan is cheap.
          const double now = clock_now_ms();
          auto best = queue_.end();
          double earliest = std::numeric_limits<double>::infinity();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            Job& candidate = *jobs_.at(*it);
            if (candidate.not_before_ms > now) {
              earliest = std::min(earliest, candidate.not_before_ms);
              continue;
            }
            if (best == queue_.end() ||
                candidate.spec.priority > jobs_.at(*best)->spec.priority) {
              best = it;
            }
          }
          if (best != queue_.end()) {
            id = *best;
            queue_.erase(best);
            timing_metrics_.gauge("svc.queue.depth")
                .set(static_cast<double>(queue_.size()));
            Job& job = *jobs_.at(id);
            // A deadline can expire — or a cancel land — while the job is
            // still queued: go terminal right here, never spending a
            // worker on a job whose budget is already gone.
            const core::CancelReason queued_reason = job.cancel.reason();
            if (queued_reason != core::CancelReason::kNone) {
              job.state = queued_reason == core::CancelReason::kCancelled
                              ? JobState::kCancelled
                              : JobState::kDeadlineExceeded;
              if (job.attempt == 0) {
                job.queue_ms = (obs::trace_now_us() - job.enqueue_us) / 1000.0;
              }
              if (obs::trace_enabled()) {
                obs::JobContext context;
                context.job_id = id;
                context.tenant = job.spec.tenant;
                context.attempt = job.attempt;
                obs::JobScope scope(context, job_lane(id),
                                    "job-" + std::to_string(id));
                obs::emit_instant(
                    "svc", "terminal",
                    {obs::arg("state", job_state_name(job.state)),
                     obs::arg("cause", "expired_in_queue")});
              }
              finalize_terminal_locked(job);
              emit_job_event(JobEvent::Kind::kTerminal, id,
                             job.spec.tenant, job.state, job.attempt);
              done_cv_.notify_all();
              continue;
            }
            job.state = JobState::kRunning;
            if (job.attempt == 0) {
              job.queue_ms = (obs::trace_now_us() - job.enqueue_us) / 1000.0;
            }
            spec = job.spec;
            degraded = job.degraded;
            attempt = job.attempt;
            token = job.cancel.token();
            ++running_;
            if (batch_eligible_locked(job)) {
              gather_batch_locked(job, peers);
              if (config_.batch.window_ms > 0.0 && !stopping_ &&
                  peers.size() + 1 < config_.batch.max_batch) {
                // Bounded straggler window: one timed wait for more
                // compatible arrivals, then run with whatever is there.
                work_cv_.wait_for(lock,
                                  std::chrono::duration<double, std::milli>(
                                      config_.batch.window_ms));
                gather_batch_locked(job, peers);
              }
            }
            break;
          }
          // Queue non-empty but everything is waiting out a backoff:
          // sleep until the earliest one becomes eligible (or a state
          // change wakes us).
          work_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                      earliest - now));
          continue;
        }
        work_cv_.wait(lock);
      }
    }

    emit_job_event(JobEvent::Kind::kRunning, id, spec.tenant,
                   JobState::kRunning, attempt);
    for (const BatchPeer& peer : peers) {
      emit_job_event(JobEvent::Kind::kRunning, peer.id, peer.tenant,
                     JobState::kRunning, peer.attempt);
    }

    if (chaos_.stall(id, attempt)) {
      // Injected worker stall: the job's deadline keeps ticking.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.chaos.stall_ms));
    }

    const double start_us = obs::trace_now_us();
    const double start_ms = now_ms();
    // Runs unlocked, staging everything into locals: a concurrent
    // status() of this kRunning job only ever sees fields written under
    // mutex_ (the kRunning transition above, the commit below). The
    // JobScope binds this job's causal identity for the whole execution:
    // cache lookups, session iterations, watchdog rungs and sparse shard
    // lanes all inherit job/tenant/attempt args and the job's trace lane.
    ExecResult result;
    {
      obs::JobContext context;
      context.job_id = id;
      context.tenant = spec.tenant;
      context.attempt = attempt;
      obs::JobScope job_scope(context, job_lane(id),
                              "job-" + std::to_string(id));
      // A batched execution runs on a neutral (never-latched) token: one
      // member's explicit cancel must not kill its batch peers. Members'
      // own latched cancels are honored at commit, and batch eligibility
      // already excludes deadline jobs.
      const core::CancelToken exec_token =
          peers.empty() ? token : core::CancelToken();
      result = execute(spec, id, attempt, degraded, exec_token,
                       peers.empty() ? nullptr : &peers);
    }
    const double run_ms = now_ms() - start_ms;
    JobState final_state;
    if (result.cancel_reason == core::CancelReason::kCancelled) {
      final_state = JobState::kCancelled;
    } else if (result.cancel_reason == core::CancelReason::kDeadlineExceeded) {
      final_state = JobState::kDeadlineExceeded;
    } else if (!result.error.empty()) {
      final_state = JobState::kFailed;
    } else {
      final_state = JobState::kDone;
    }
    const bool cache_hit = result.cache_hit;
    const std::string error_brief = result.error;

    bool leader_retried = false;
    bool any_retried = false;
    struct TerminalNote {
      std::uint64_t id = 0;
      std::string tenant;
      JobState state = JobState::kDone;
      std::size_t attempt = 0;
    };
    std::vector<TerminalNote> terminals;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // One commit routine for the leader and every batch peer. Transient
      // failures re-enqueue with jittered backoff instead of going
      // terminal — unless the retry budget is spent or the job's own
      // deadline/cancel has already latched. Peers committing a shared
      // result copy it (reports are a pure function of the spec, so the
      // copy is bit-identical to what their solo run would have produced)
      // and count as cache hits, like their solo single-flight wait would
      // have.
      const auto commit_one = [&](Job& job, bool is_leader) {
        JobState state = final_state;
        if (!peers.empty() &&
            job.cancel.reason() == core::CancelReason::kCancelled) {
          // An explicit cancel latched while the batched execution ran on
          // the neutral token: honor it. The full result stays attached,
          // like a cancel racing completion.
          state = JobState::kCancelled;
        }
        if (state == JobState::kFailed && result.transient &&
            job.attempt < config_.qos.max_retries &&
            job.cancel.reason() == core::CancelReason::kNone) {
          const double backoff =
              retry_backoff_ms(config_.qos, job.id, job.attempt);
          ++job.attempt;
          job.not_before_ms = clock_now_ms() + backoff;
          job.state = JobState::kQueued;
          job.error.clear();
          queue_.push_back(job.id);
          timing_metrics_.gauge("svc.queue.depth")
              .set(static_cast<double>(queue_.size()));
          ++tallies_.retries;
          qos_metrics_.counter("svc.retry.count").add(1.0);
          --running_;
          any_retried = true;
          if (is_leader) leader_retried = true;
          if (obs::trace_enabled()) {
            obs::emit_instant(
                "svc", "retry",
                {obs::arg("job", static_cast<std::size_t>(job.id)),
                 obs::arg("attempt", job.attempt),
                 obs::arg("backoff_ms", backoff),
                 obs::arg("error", result.error)});
          }
          // Under mutex_ so the retry's queued event lands before another
          // worker can emit the next attempt's running event.
          emit_job_event(JobEvent::Kind::kQueued, job.id, job.spec.tenant,
                         JobState::kQueued, job.attempt);
          return;
        }
        job.cache_hit = is_leader ? result.cache_hit : true;
        job.error = result.error;
        job.report_json = result.report_json;
        job.report = result.report;
        job.characterization_ms = is_leader ? result.characterization_ms : 0.0;
        job.quality_error = result.quality_error;
        job.energy_ratio = result.energy_ratio;
        if (is_leader) {
          job.metrics = std::move(result.metrics);
        } else {
          // Deep copy: the peer's registry is what its own execution would
          // have written (session metrics are deterministic per spec).
          job.metrics = std::make_unique<obs::MetricsRegistry>();
          job.metrics->merge(*result.metrics);
          cache().record_batched_hit();
        }
        job.run_ms = run_ms;
        job.state = state;
        --running_;
        const TerminalNote note{job.id, job.spec.tenant, state, job.attempt};
        finalize_terminal_locked(job);
        if (is_leader && !cache_hit) {
          timing_metrics_.histogram("svc.characterization_ms", 0.0, 60000.0,
                                    64)
              .record(result.characterization_ms);
        }
        // The Job may have just been retired — only locals below this line.
        terminals.push_back(note);
      };
      // Peers first (they copy result.metrics), leader last (it moves it).
      for (const BatchPeer& peer : peers) {
        commit_one(*jobs_.at(peer.id), /*is_leader=*/false);
      }
      commit_one(*jobs_.at(id), /*is_leader=*/true);
      if (config_.batch.enabled) {
        ++tallies_.batch_groups;
        tallies_.batch_jobs += 1 + peers.size();
        timing_metrics_.counter("svc.batch.groups").add(1.0);
        timing_metrics_.counter("svc.batch.jobs")
            .add(1.0 + static_cast<double>(peers.size()));
        timing_metrics_.histogram("svc.batch.size", 0.0, 64.0, 32)
            .record(1.0 + static_cast<double>(peers.size()));
      }
    }
    if (any_retried) work_cv_.notify_all();
    if (terminals.empty()) continue;  // every batch member retried
    if (!leader_retried && obs::trace_enabled()) {
      // Both the job span and its terminal cause render in the job's own
      // lane (job/tenant/attempt attached by the JobScope).
      obs::JobContext context;
      context.job_id = id;
      context.tenant = spec.tenant;
      context.attempt = attempt;
      obs::JobScope scope(context, job_lane(id),
                          "job-" + std::to_string(id));
      obs::emit_span("svc", "job", start_us,
                     {obs::arg("app", spec.app),
                      obs::arg("dataset", spec.dataset),
                      obs::arg("state", job_state_name(final_state)),
                      obs::arg("cache_hit", cache_hit)});
      obs::emit_instant("svc", "terminal",
                        {obs::arg("state", job_state_name(final_state)),
                         obs::arg("cause", error_brief.empty()
                                               ? std::string(job_state_name(
                                                     final_state))
                                               : error_brief),
                         obs::arg("cache_hit", cache_hit)});
    }
    for (const TerminalNote& note : terminals) {
      emit_job_event(JobEvent::Kind::kTerminal, note.id, note.tenant,
                     note.state, note.attempt);
    }
    done_cv_.notify_all();
  }
}

ServiceRuntime::ExecResult ServiceRuntime::execute(
    const JobSpec& spec, std::uint64_t id, std::size_t attempt,
    bool degraded, const core::CancelToken& cancel,
    const std::vector<BatchPeer>* peers) {
  ExecResult result;
  result.metrics = std::make_unique<obs::MetricsRegistry>();
  try {
    if (chaos_.crash(id, attempt)) {
      // Injected hard failure of this attempt — transient by definition,
      // so the retry ladder gets exercised.
      result.error = "chaos: injected crash";
      result.transient = true;
      return result;
    }

    core::CharacterizationOptions char_options;
    if (spec.characterization_iterations > 0) {
      char_options.iterations = spec.characterization_iterations;
    }
    char_options.cancel = cancel;

    // Degradation trades quality for latency with the paper's own knob:
    // a coarser static QCS level and a tighter iteration budget.
    std::string strategy_name = spec.strategy;
    std::size_t max_iterations = spec.max_iterations;
    if (degraded) {
      if (!config_.qos.degraded_strategy.empty() &&
          make_strategy(config_.qos.degraded_strategy) != nullptr) {
        strategy_name = config_.qos.degraded_strategy;
      }
      if (config_.qos.degraded_max_iterations > 0) {
        max_iterations = max_iterations == 0
                             ? config_.qos.degraded_max_iterations
                             : std::min(max_iterations,
                                        config_.qos.degraded_max_iterations);
      }
    }

    // Everything a job touches is built from its spec alone: dataset and
    // method on this worker's stack, ALU as a fresh clone of the app
    // prototype. That isolation is what makes per-job reports
    // thread-count-invariant.
    const auto run_with = [&](opt::IterativeMethod& method,
                              const arith::QcsAlu& prototype,
                              const arith::QcsConfig& qcs_config,
                              const std::string& workload_tag) {
      const std::unique_ptr<arith::QcsAlu> alu = prototype.clone_fresh();
      const std::unique_ptr<core::Strategy> strategy =
          make_strategy(strategy_name);

      // The cache key and the characterization both use the CLEAN ALU —
      // a chaos-faulted profile must never poison the shared cache; only
      // this attempt's ONLINE stage runs on the faulty datapath.
      const core::CharacterizationKey key = core::characterization_cache_key(
          method, *alu, char_options, workload_tag);
      const core::ModeCharacterization profile = cache().get_or_compute(
          key,
          [&] {
            const double t0 = now_ms();
            core::ModeCharacterization computed =
                core::characterize(method, *alu, char_options);
            result.characterization_ms = now_ms() - t0;
            return computed;
          },
          &result.cache_hit);

      std::unique_ptr<arith::QcsAlu> faulty;
      if (chaos_.alu_fault(id, attempt)) {
        // Per-attempt seed: a retry sees a FRESH fault stream (a straight
        // clone would replay the identical faults and never recover).
        arith::FaultConfig fault = arith::FaultConfig::uniform_approximate(
            config_.chaos.alu_fault_rate,
            chaos_.alu_fault_seed(id, attempt));
        if (config_.chaos.alu_fault_accurate) {
          // Unsurvivable regime: the watchdog's safe mode (accurate) is
          // just as faulty, so the recovery ladder must end in an abort.
          fault.rate_per_op[arith::mode_index(arith::ApproxMode::kAccurate)] =
              config_.chaos.alu_fault_rate;
        }
        faulty = std::make_unique<arith::FaultyQcsAlu>(fault, qcs_config);
      }
      arith::QcsAlu& session_alu = faulty ? *faulty : *alu;

      core::SessionBuilder builder;
      builder.method(method)
          .strategy(*strategy)
          .alu(session_alu)
          .max_iterations(max_iterations)
          .watchdog(config_.watchdog)
          .keep_trace(spec.keep_trace)
          .metrics(result.metrics.get())
          .characterization(profile)
          .cancel(cancel);
      if (config_.on_job_event && config_.progress_every > 0) {
        // The streaming seam: subsample the session's per-iteration
        // callback down to every `progress_every`-th iteration and
        // forward it as a kProgress event.
        const std::size_t stride = config_.progress_every;
        builder.on_progress(
            [this, id, attempt, &spec, stride, peers](
                const core::SessionProgress& progress) {
              if (progress.iteration % stride != 0) return;
              emit_job_event(JobEvent::Kind::kProgress, id, spec.tenant,
                             JobState::kRunning, attempt, progress.iteration,
                             progress.objective);
              if (peers != nullptr) {
                // The shared execution IS each batch member's execution:
                // fan the same iteration marks out to every peer's stream.
                for (const BatchPeer& peer : *peers) {
                  emit_job_event(JobEvent::Kind::kProgress, peer.id,
                                 peer.tenant, JobState::kRunning, peer.attempt,
                                 progress.iteration, progress.objective);
                }
              }
            });
      }
      result.report = builder.run();
      result.report_json = core::report_to_json(result.report);

      // Per-job convergence telemetry, deterministic from (report,
      // profile) alone: the QEM quality surrogate is the steps-weighted
      // characterized quality error of the modes the run actually used,
      // and the energy ratio compares spent energy against an
      // all-accurate run of the same length — the paper's quality/energy
      // tradeoff as one exported pair per job.
      const std::size_t iterations =
          std::max<std::size_t>(result.report.iterations, 1);
      double quality_sum = 0.0;
      double energy_sum = 0.0;
      for (std::size_t m = 0; m < arith::kNumModes; ++m) {
        const double steps =
            static_cast<double>(result.report.steps_per_mode[m]);
        quality_sum += steps * profile.quality_error[m];
        energy_sum += steps * profile.energy_per_op[m];
      }
      const double accurate =
          profile.energy_per_op[arith::mode_index(
              arith::ApproxMode::kAccurate)];
      result.quality_error =
          quality_sum / static_cast<double>(iterations);
      result.energy_ratio =
          accurate > 0.0
              ? energy_sum / (static_cast<double>(iterations) * accurate)
              : 1.0;

      switch (result.report.status) {
        case core::RunStatus::kCancelled:
          result.cancel_reason = core::CancelReason::kCancelled;
          break;
        case core::RunStatus::kDeadlineExceeded:
          result.cancel_reason = core::CancelReason::kDeadlineExceeded;
          break;
        case core::RunStatus::kDiverged:
        case core::RunStatus::kNumericalFault:
          // The watchdog exhausted its recovery ladder. Under injected
          // ALU faults that is a transient outcome: a retry on a fresh
          // fault stream may well converge.
          result.error = std::string("aborted: ") +
                         std::string(core::run_status_name(
                             result.report.status));
          result.transient = true;
          break;
        default:
          break;
      }
    };

    if (spec.app == "gmm") {
      const workloads::GmmDataset dataset =
          workloads::make_gmm_dataset(*gmm_dataset_id(spec.dataset));
      apps::GmmEm method(dataset);
      run_with(method, gmm_alu_, arith::QcsConfig{}, dataset.name);
    } else {
      const workloads::TimeSeriesDataset dataset =
          workloads::make_series_dataset(*series_id(spec.dataset));
      apps::AutoRegression method(dataset);
      run_with(method, ar_alu_, apps::ar_qcs_config(), dataset.name);
    }
  } catch (const core::CancelledError& error) {
    if (cancel.check() != core::CancelReason::kNone) {
      // Our own token stopped the offline stage.
      result.cancel_reason = cancel.check();
    } else {
      // A single-flight PEER's cancellation aborted the characterization
      // we were waiting on — nothing wrong with THIS job; retry-eligible.
      result.error = std::string("transient: ") + error.what();
      result.transient = true;
    }
  } catch (const std::exception& error) {
    result.error = error.what();
  } catch (...) {
    result.error = "unknown error";
  }
  return result;
}

JobSnapshot ServiceRuntime::snapshot_locked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.spec = job.spec;
  snapshot.cache_hit = job.cache_hit;
  snapshot.error = job.error;
  snapshot.report_json = job.report_json;
  snapshot.report = job.report;
  snapshot.queue_ms = job.queue_ms;
  snapshot.run_ms = job.run_ms;
  snapshot.characterization_ms = job.characterization_ms;
  snapshot.degraded = job.degraded;
  snapshot.attempts = job.attempt + 1;
  return snapshot;
}

std::optional<JobSnapshot> ServiceRuntime::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

bool ServiceRuntime::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (jobs_.find(id) == jobs_.end()) return false;
  // Re-find on every wake: the job can be retired (erased) while we wait,
  // which itself proves it reached a terminal state.
  done_cv_.wait(lock, [&] {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return true;
    return job_state_terminal(it->second->state);
  });
  return true;
}

bool ServiceRuntime::cancel(std::uint64_t id) {
  bool went_terminal = false;
  std::string tenant;
  std::size_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    if (job_state_terminal(job.state)) return false;
    job.cancel.cancel();
    tenant = job.spec.tenant;
    attempt = job.attempt;
    if (job.state == JobState::kQueued) {
      // Still waiting: no worker to release, go terminal on the spot.
      const auto queued =
          std::find(queue_.begin(), queue_.end(), id);
      if (queued != queue_.end()) queue_.erase(queued);
      timing_metrics_.gauge("svc.queue.depth")
          .set(static_cast<double>(queue_.size()));
      job.state = JobState::kCancelled;
      if (job.attempt == 0) {
        job.queue_ms = (obs::trace_now_us() - job.enqueue_us) / 1000.0;
      }
      finalize_terminal_locked(job);
      emit_job_event(JobEvent::Kind::kTerminal, id, job.spec.tenant,
                     JobState::kCancelled, job.attempt);
      went_terminal = true;
    }
    // kRunning: the latched token stops the session within one
    // iteration; the worker commits kCancelled with the partial result.
  }
  if (obs::trace_enabled()) {
    obs::JobContext context;
    context.job_id = id;
    context.tenant = tenant;
    context.attempt = attempt;
    obs::JobScope scope(context, job_lane(id), "job-" + std::to_string(id));
    obs::emit_instant("svc", "cancel", {});
    if (went_terminal) {
      obs::emit_instant("svc", "terminal",
                        {obs::arg("state", "cancelled"),
                         obs::arg("cause", "cancelled_in_queue")});
    }
  }
  if (went_terminal) done_cv_.notify_all();
  return true;
}

bool ServiceRuntime::forget(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  if (!job_state_terminal(it->second->state)) return false;
  retire_locked(it);
  return true;
}

std::map<std::uint64_t, std::unique_ptr<ServiceRuntime::Job>>::iterator
ServiceRuntime::retire_locked(
    std::map<std::uint64_t, std::unique_ptr<Job>>::iterator it) {
  if (it->second->metrics != nullptr) {
    // Per-tenant aggregates: retention eviction must not collapse tenant
    // attribution, or exported tenant labels would drift as jobs age out.
    std::unique_ptr<obs::MetricsRegistry>& slot =
        retired_metrics_[it->second->spec.tenant];
    if (slot == nullptr) slot = std::make_unique<obs::MetricsRegistry>();
    slot->merge(*it->second->metrics);
  }
  --terminal_retained_;
  return jobs_.erase(it);
}

void ServiceRuntime::retire_excess_locked() {
  if (config_.retain_terminal == 0) return;
  // jobs_ is id-ordered, so this retires the lowest-id terminal jobs;
  // the (bounded) queued/running prefix is skipped, never erased.
  auto it = jobs_.begin();
  while (terminal_retained_ > config_.retain_terminal && it != jobs_.end()) {
    if (job_state_terminal(it->second->state)) {
      it = retire_locked(it);
    } else {
      ++it;
    }
  }
}

std::optional<JobSnapshot> ServiceRuntime::result(std::uint64_t id) {
  if (!wait(id)) return std::nullopt;
  return status(id);
}

void ServiceRuntime::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

ServiceStats ServiceRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = tallies_;
  stats.queued = queue_.size();
  stats.running = running_;
  stats.cache = cache().stats();
  return stats;
}

void ServiceRuntime::collect_metrics(obs::MetricsRegistry& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Retired per-tenant aggregates first (tenant order), then jobs_ in id
  // order (std::map); merging in that fixed order makes the
  // counter/histogram aggregate thread-count-invariant (see the
  // collect_metrics declaration for the gauge caveat under retirement).
  for (const auto& [tenant, registry] : retired_metrics_) {
    out.merge(*registry);
  }
  for (const auto& [id, job] : jobs_) {
    if (job->metrics != nullptr && job_state_terminal(job->state)) {
      out.merge(*job->metrics);
    }
  }
  out.merge(cache_metrics_);
  out.merge(qos_metrics_);
}

void ServiceRuntime::export_metric_parts(std::vector<MetricsPart>& jobs,
                                         obs::MetricsRegistry& retired,
                                         obs::MetricsRegistry& qos) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, job] : jobs_) {
    if (job->metrics == nullptr || !job_state_terminal(job->state)) continue;
    MetricsPart part;
    part.id = id;
    part.spec = job->spec;
    part.metrics = std::make_unique<obs::MetricsRegistry>();
    part.metrics->merge(*job->metrics);
    jobs.push_back(std::move(part));
  }
  for (const auto& [tenant, registry] : retired_metrics_) {
    retired.merge(*registry);
  }
  qos.merge(qos_metrics_);
}

obs::QualityScorecard ServiceRuntime::scorecard() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scorecard_;
}

std::string ServiceRuntime::scorecard_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scorecard_.to_json();
}

void ServiceRuntime::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void ServiceRuntime::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void ServiceRuntime::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    paused_ = false;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace approxit::svc
