// ServiceRuntime: the multi-tenant serving loop over ApproxIt sessions.
//
// Jobs name a workload (app + dataset), a reconfiguration strategy and an
// iteration budget; the runtime admits them into a bounded queue, runs them
// on a fixed pool of worker threads — each job on its own
// QcsAlu::clone_fresh() instance — and amortizes the offline
// characterization stage through a shared ProfileCache. The three
// load-bearing pieces:
//
//  - Scheduler: priority-aware queue drained by `threads` workers (higher
//    JobSpec::priority first, FIFO within a priority; retried jobs wait
//    out their backoff before becoming eligible). Every job builds its
//    method, strategy and ALU clone from its spec alone, so per-job
//    RunReports are bit-identical for any worker count.
//  - Admission control: submit() rejects (never blocks) when a tenant's
//    token bucket is empty ("rate_limited"), the queue is at capacity
//    ("queue_full"), the shed watermark is hit ("shed_overload" — unless
//    priority >= 1, which degrades instead) or a tenant already holds
//    `per_tenant_cap` queued+running jobs ("tenant_cap"). Malformed specs
//    are rejected up front ("bad_request: ..."). Between the degrade and
//    shed watermarks, jobs are admitted DEGRADED: a coarser static QCS
//    level and a capped iteration budget (svc/qos.h).
//  - ProfileCache: characterization is resolved with get_or_compute under
//    a key from core::characterization_cache_key, so N jobs over the same
//    (method, workload, ALU, options) tuple characterize ONCE per process
//    — or zero times after a warm restart, via the cache's disk tier.
//
// Resilience: jobs carry an optional deadline (their own deadline_ms, or
// the service SLO); it is enforced with a cooperative core::CancelToken,
// so an expired or cancel()led job releases its worker within ONE
// iteration and surfaces kDeadlineExceeded / kCancelled with the partial
// result reached so far. Transient failures — injected crashes, ALU-fault
// watchdog aborts, a single-flight peer's cancellation — are retried with
// deterministic jittered backoff up to qos.max_retries. A seeded
// ChaosConfig (svc/chaos.h) injects stalls, crashes, faulty ALUs, cache
// corruption and clock skew, all keyed on (seed, job, attempt) so chaos
// runs are reproducible for any worker count.
//
// Retention: terminal jobs stay queryable via status()/result() until the
// retain_terminal bound is hit; beyond it the lowest-id terminal jobs are
// retired — snapshot dropped, metrics folded into a persistent aggregate —
// so memory is bounded for arbitrarily long job streams. forget() retires
// a terminal job eagerly.
//
// Metrics determinism: each job writes into its own MetricsRegistry;
// collect_metrics() merges them in job-id order plus the cache counters,
// so the merged registry is identical for any thread count (single-flight
// waiters count as cache hits, which keeps even the hit/miss tallies
// thread-invariant). Wall-clock service metrics (svc.job.queue_ms,
// svc.job.run_ms, svc.characterization_ms) live in a SEPARATE timing
// registry that makes no determinism claim.
//
// Cross-job batching (BatchConfig): when enabled, a worker that claims a
// job also claims every queued job with the SAME execution-relevant spec
// (app, dataset, strategy, budgets, keep_trace, degraded admission) up to
// batch.max_batch, executes the session ONCE, and commits a deep copy of
// the result to every member. Because execute() builds everything from the
// spec alone and reports are a pure function of (spec, degraded, runtime
// config), the members' reports are bit-identical to what their own solo
// executions would have produced — batching off is the differential
// reference. Jobs with a deadline, a latched cancel, or under chaos
// injection never batch (solo execution preserves their cancellation
// latency and per-attempt fault streams). Batched members count as
// profile-cache hits, exactly as their solo runs would have resolved
// against the leader's single-flight characterization.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arith/alu.h"
#include "core/cancel.h"
#include "core/session.h"
#include "core/watchdog.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "svc/chaos.h"
#include "svc/profile_cache.h"
#include "svc/qos.h"

namespace approxit::svc {

/// Lifecycle of one job. kDone, kFailed, kCancelled and kDeadlineExceeded
/// are terminal.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,          ///< cancel()led before finishing.
  kDeadlineExceeded,   ///< Deadline/SLO expired (queued or mid-run).
};

/// Lowercase state label ("queued", "running", "done", "failed",
/// "cancelled", "deadline_exceeded").
std::string_view job_state_name(JobState state);

/// True for the four terminal states.
bool job_state_terminal(JobState state);

/// One lifecycle event of a job, pushed through
/// ServiceConfig::on_job_event: queued -> running -> (progress)* ->
/// terminal, with a fresh queued event per retry attempt. The streaming
/// seam the networked front end subscribes on.
struct JobEvent {
  enum class Kind { kQueued, kRunning, kProgress, kTerminal };
  Kind kind = Kind::kQueued;
  std::uint64_t id = 0;
  std::string tenant;
  /// State the job holds as of this event (kTerminal events carry the
  /// terminal state: done/failed/cancelled/deadline_exceeded).
  JobState state = JobState::kQueued;
  std::size_t attempt = 0;    ///< 0-based execution attempt.
  /// kProgress only: executed iterations and objective so far.
  std::size_t iteration = 0;
  double objective = 0.0;
};

/// Lowercase event-kind label ("queued", "running", "progress",
/// "terminal").
std::string_view job_event_kind_name(JobEvent::Kind kind);

/// Cross-job micro-batching policy. See the file comment: batching is a
/// pure scheduling optimization — per-job reports, ledgers and energies
/// stay bit-identical to solo execution.
struct BatchConfig {
  /// Coalesce compatible queued jobs into one execution. Default off.
  bool enabled = false;
  /// Max jobs per batch, leader included (clamped to >= 1).
  std::size_t max_batch = 8;
  /// After claiming a leader with room to spare, wait up to this long for
  /// more compatible jobs to arrive before executing. 0 (default) batches
  /// only what is already queued.
  double window_ms = 0.0;
};

/// Construction parameters for ServiceRuntime.
struct ServiceConfig {
  /// Worker threads draining the job queue (clamped to >= 1).
  std::size_t threads = 4;
  /// Queued (not yet running) job capacity; submissions beyond it are
  /// rejected with "queue_full" (clamped to >= 1).
  std::size_t queue_capacity = 64;
  /// Max queued+running jobs per tenant; 0 disables the cap. Beyond it
  /// submissions are rejected with "tenant_cap".
  std::size_t per_tenant_cap = 0;
  /// Max terminal (done/failed) jobs retained for status()/result();
  /// beyond it the lowest-id terminal job is retired — its metrics fold
  /// into a persistent aggregate (collect_metrics stays complete) and its
  /// snapshot is forgotten. 0 retains every job forever.
  std::size_t retain_terminal = 1024;
  /// Shared characterization-profile cache configuration. Ignored when
  /// `shared_cache` is set.
  ProfileCacheConfig cache;
  /// When non-null, this runtime resolves characterizations through the
  /// given externally-owned cache instead of constructing its own — the
  /// sharding seam: every shard behind a ShardRouter hits one cache, so a
  /// profile warmed by any shard is warm for all of them. The cache must
  /// outlive the runtime (ProfileCache is thread-safe).
  ProfileCache* shared_cache = nullptr;
  /// Cross-job micro-batching (off by default).
  BatchConfig batch;
  /// Per-tenant QoS: SLO deadline, token bucket, degrade/shed watermarks,
  /// retry policy. Defaults are all-off (pre-QoS behavior).
  QosConfig qos;
  /// Watchdog / recovery-ladder configuration applied to every job's
  /// session. The default (non-finite + divergence detection) never fires
  /// on a healthy run; a service expecting faulty datapaths can arm the
  /// stall/oscillation detectors and tighten the recovery budget here.
  core::WatchdogConfig watchdog;
  /// Seeded fault injection (svc/chaos.h). Default off.
  ChaosConfig chaos;
  /// Per-tenant quality scorecard policy (rolling window, degradation
  /// threshold). The scorecard itself always runs; the threshold signal is
  /// off unless quality_threshold > 0.
  obs::ScorecardConfig telemetry;
  /// Start with the workers paused (admission still open) — lets tests
  /// fill the queue deterministically before anything runs.
  bool start_paused = false;
  /// Job lifecycle hook, fixed at construction (never mutated afterwards,
  /// so it is invoked without synchronization of its own). Called from
  /// submit()'s caller thread, from cancel()'s caller thread and from
  /// worker threads — concurrently across jobs, but in causal order per
  /// job (queued before running before progress before terminal; the
  /// queued/queue-death events fire while the runtime lock is HELD to
  /// pin that order). The hook must therefore be cheap and must NOT call
  /// back into the runtime: hand the event off (e.g. post it into an
  /// event loop) and return. No events fire after shutdown() returns.
  std::function<void(const JobEvent&)> on_job_event;
  /// kProgress event stride: with on_job_event set, every
  /// `progress_every`-th executed iteration of a running job emits a
  /// progress event. 0 (default) disables progress events; queued/
  /// running/terminal events only depend on on_job_event being set.
  std::size_t progress_every = 0;
};

/// One job request. `app` and `dataset` name the workload, `strategy` the
/// reconfiguration policy:
///   app "gmm": datasets 3cluster | 3d3cluster | 4cluster
///   app "ar":  datasets hangseng | nasdaq | sp500
///   strategy:  incremental | adaptive | accurate | level1..level4
struct JobSpec {
  std::string tenant = "default";
  std::string app;
  std::string dataset;
  std::string strategy = "incremental";
  /// Iteration budget; 0 uses the dataset's MAX_ITER.
  std::size_t max_iterations = 0;
  /// Offline-stage probe iterations; 0 uses the characterization default.
  std::size_t characterization_iterations = 0;
  /// Keep the per-iteration trace in the RunReport (off by default — a
  /// serving runtime returns aggregates, not traces).
  bool keep_trace = false;
  /// Relative deadline in milliseconds from admission; 0 falls back to the
  /// service SLO (QosConfig::slo_ms), and 0 there means no deadline. An
  /// expired job stops within one iteration (kDeadlineExceeded, partial
  /// result attached).
  double deadline_ms = 0.0;
  /// Scheduling priority: higher runs first; priority >= 1 jobs degrade
  /// instead of being shed at the shed watermark.
  int priority = 0;
};

/// Point-in-time view of one job. Terminal snapshots (done/failed) are
/// immutable.
struct JobSnapshot {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobSpec spec;
  /// True when the characterization came from the cache (memory, disk, or
  /// a concurrent computation) rather than this job's own compute.
  bool cache_hit = false;
  std::string error;        ///< Failure reason (failed jobs only).
  std::string report_json;  ///< core::report_to_json of the result.
  /// The result. Done jobs carry the full report; cancelled/expired jobs
  /// carry the PARTIAL result (iterations, objective, state) reached when
  /// they stopped; failed aborts carry the report up to the abort.
  core::RunReport report;
  double queue_ms = 0.0;    ///< Admission -> first scheduled.
  double run_ms = 0.0;      ///< Scheduled -> terminal (includes offline stage).
  /// This job's own characterization compute time (0 on cache hits).
  double characterization_ms = 0.0;
  /// Admitted under overload: ran the degraded strategy/budget (svc/qos.h).
  bool degraded = false;
  /// Executions (1 + retries taken).
  std::size_t attempts = 1;
};

/// Service-level tallies.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_tenant_cap = 0;
  std::size_t rejected_bad_request = 0;
  std::size_t rejected_rate_limited = 0;  ///< Token bucket empty.
  std::size_t shed = 0;                   ///< Rejected at the shed watermark.
  std::size_t degraded = 0;               ///< Admitted degraded.
  std::size_t retries = 0;                ///< Re-executions scheduled.
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t deadline_exceeded = 0;
  /// Worker executions with batching enabled (solo runs count as groups of
  /// one) and the jobs they committed; batch_jobs / batch_groups is the
  /// batching occupancy. In-process telemetry only — batch formation is
  /// timing-dependent, so these are NOT part of the wire StatsSummary or
  /// any byte-identity claim.
  std::size_t batch_groups = 0;
  std::size_t batch_jobs = 0;
  ProfileCacheStats cache;
};

/// The serving runtime. Thread-safe; owns its workers, jobs and cache.
class ServiceRuntime {
 public:
  explicit ServiceRuntime(ServiceConfig config = {});
  ~ServiceRuntime();

  ServiceRuntime(const ServiceRuntime&) = delete;
  ServiceRuntime& operator=(const ServiceRuntime&) = delete;

  /// Validates `spec` without running anything. Returns false (with
  /// `error` set when non-null) on unknown app/dataset/strategy.
  static bool validate(const JobSpec& spec, std::string* error = nullptr);

  /// Admits a job. Returns its id, or nullopt with `error` set to
  /// "bad_request: ...", "queue_full" or "tenant_cap". Never blocks.
  std::optional<std::uint64_t> submit(const JobSpec& spec,
                                      std::string* error = nullptr);

  /// Current snapshot of a job; nullopt for unknown ids.
  std::optional<JobSnapshot> status(std::uint64_t id) const;

  /// Blocks until the job is terminal, then returns its snapshot; nullopt
  /// for unknown (or already-retired) ids.
  std::optional<JobSnapshot> result(std::uint64_t id);

  /// Blocks until the job is terminal. False for unknown ids; true if the
  /// job is retired while being waited on (it was terminal to be retired).
  bool wait(std::uint64_t id);

  /// Requests cancellation. A queued job goes terminal (kCancelled)
  /// immediately; a running job's CancelToken is latched and the worker
  /// commits kCancelled within one iteration. False for unknown or
  /// already-terminal ids.
  bool cancel(std::uint64_t id);

  /// The runtime's millisecond clock (monotonic, plus the chaos clock
  /// skew) — the axis deadlines, token buckets and retry timers live on.
  double clock_now_ms() const;

  /// The admission cost surrogate of a job: iteration budget x problem
  /// dimension (what a tenant's token bucket is charged).
  static double job_cost(const JobSpec& spec);

  /// The Chrome-trace lane a job's causal events render in. Lanes 1..N are
  /// the worker threads; job lanes start above them so the two families
  /// never collide.
  static constexpr std::uint32_t job_lane(std::uint64_t id) {
    return static_cast<std::uint32_t>(1000 + id);
  }

  /// Retires a terminal job now: folds its metrics into the persistent
  /// aggregate and drops its snapshot. False for unknown or still
  /// queued/running ids.
  bool forget(std::uint64_t id);

  /// Blocks until the queue is empty and no job is running.
  void wait_idle();

  ServiceStats stats() const;

  /// Merges the DETERMINISTIC metrics — the retired-job aggregate, then
  /// per-job registries in job-id order (terminal jobs only), then the
  /// profile-cache counters — into `out`. Counters and histograms are
  /// identical for any worker count over the same job sequence; gauges are
  /// too as long as at least one RETAINED job wrote them (retirement folds
  /// gauges in completion order, but any retained writer overrides).
  void collect_metrics(obs::MetricsRegistry& out) const;

  /// One terminal job's deterministic metrics, exported for an external
  /// merge (ShardRouter). `metrics` is a fresh copy — mutating it does not
  /// touch the job.
  struct MetricsPart {
    std::uint64_t id = 0;
    JobSpec spec;
    std::unique_ptr<obs::MetricsRegistry> metrics;
  };

  /// Snapshot of the deterministic metric sources, un-merged: per-job
  /// registries (terminal retained jobs, id order, spec attached so the
  /// caller can order the global merge by a shard-count-invariant key),
  /// the retired-job aggregate (tenant order; empty until retention has
  /// evicted), and the qos counters (integer-valued, so any merge order is
  /// exact). Cache counters are NOT included — a shared-cache deployment
  /// owns those externally.
  void export_metric_parts(std::vector<MetricsPart>& jobs,
                           obs::MetricsRegistry& retired,
                           obs::MetricsRegistry& qos) const;

  /// Wall-clock service metrics (svc.job.queue_ms / svc.job.run_ms /
  /// svc.characterization_ms plus per-tenant latency/deadline-burn
  /// histograms, batch-size counters and the queue-depth gauge). Not
  /// deterministic.
  const obs::MetricsRegistry& timing_metrics() const {
    return timing_metrics_;
  }

  /// Copy of the per-tenant SLO/quality scorecard (rolling windows follow
  /// job COMPLETION order, so scorecard state is operational — the
  /// deterministic per-tenant aggregates live in collect_metrics()).
  obs::QualityScorecard scorecard() const;

  /// QualityScorecard::to_json() of the live scorecard.
  std::string scorecard_json() const;

  ProfileCache& profile_cache() { return cache(); }

  /// Stops/resumes the workers' queue drain; admission stays open.
  void pause();
  void resume();

  /// Drains the queue, waits for running jobs and joins the workers.
  /// Subsequent submits are rejected ("shutting_down"). Idempotent.
  void shutdown();

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;  ///< Immutable after submit().
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    bool degraded = false;    ///< Admitted past the degrade watermark.
    std::size_t attempt = 0;  ///< 0-based execution attempt.
    std::string error;
    std::string report_json;
    core::RunReport report;
    double enqueue_us = 0.0;
    double queue_ms = 0.0;
    double run_ms = 0.0;
    double characterization_ms = 0.0;
    /// Earliest runtime-clock time this job may be scheduled: admission
    /// time, or the retry backoff. An absolute stamp, never a sentinel —
    /// the runtime clock may sit anywhere on its axis under chaos skew.
    double not_before_ms = 0.0;
    /// Deadline + explicit-cancel state; its token threads through the
    /// session and characterization of every attempt.
    core::CancelSource cancel;
    /// The relative deadline applied at admission (spec or SLO fallback);
    /// 0 when the job has none. Denominator of the deadline-burn ratio.
    double deadline_rel_ms = 0.0;
    /// QEM quality surrogate of the final attempt (steps-weighted epsilon).
    double quality_error = 0.0;
    /// Spent energy relative to an all-accurate run of the same length.
    double energy_ratio = 1.0;
    /// Set at the terminal transition (moved in from the execution, or
    /// created by finalize for jobs that die in the queue); null before.
    std::unique_ptr<obs::MetricsRegistry> metrics;
  };

  /// execute()'s staging area. The worker runs the whole session into
  /// these locals and commits them to the Job under mutex_ alongside the
  /// terminal state transition, so status()/result() never observe a
  /// half-written running job.
  struct ExecResult {
    bool cache_hit = false;
    std::string error;
    std::string report_json;
    core::RunReport report;
    double characterization_ms = 0.0;
    /// Why the run stopped cooperatively (kNone when it ran to the end).
    core::CancelReason cancel_reason = core::CancelReason::kNone;
    /// Failure is transient (injected crash, watchdog abort under faults,
    /// a single-flight peer's cancellation): eligible for retry.
    bool transient = false;
    double quality_error = 0.0;
    double energy_ratio = 1.0;
    std::unique_ptr<obs::MetricsRegistry> metrics;
  };

  /// A job riding along on a leader's execution (worker-local copy of the
  /// fields needed outside the lock).
  struct BatchPeer {
    std::uint64_t id = 0;
    std::size_t attempt = 0;
    std::string tenant;
  };

  void worker_loop(std::size_t worker_index);

  /// Builds everything from the spec and runs the session. Never throws
  /// (failures land in the result's error). Touches no Job state. When
  /// `peers` is non-null, progress events fan out to every peer id as well
  /// as the leader's.
  ExecResult execute(const JobSpec& spec, std::uint64_t id,
                     std::size_t attempt, bool degraded,
                     const core::CancelToken& cancel,
                     const std::vector<BatchPeer>* peers = nullptr);

  /// True when `job` may join a batch: batching on, no chaos injection, no
  /// deadline, no latched cancel. Caller must hold mutex_.
  bool batch_eligible_locked(const Job& job) const;

  /// Claims queued jobs whose execution-relevant spec matches the
  /// (already-claimed, kRunning) leader, up to max_batch total, appending
  /// them to `peers` in queue order. Caller must hold mutex_.
  void gather_batch_locked(const Job& leader, std::vector<BatchPeer>& peers);

  /// Terminal bookkeeping shared by worker commit, queue-expiry and
  /// queued-cancel: tallies, tenant release, retention. Caller must hold
  /// mutex_; `job` must already be in its terminal state.
  void finalize_terminal_locked(Job& job);

  /// Fires config_.on_job_event when set. See ServiceConfig::on_job_event
  /// for the per-site locking contract (kQueued and queue-death kTerminal
  /// events fire under mutex_; worker-side events fire unlocked).
  void emit_job_event(JobEvent::Kind kind, std::uint64_t id,
                      const std::string& tenant, JobState state,
                      std::size_t attempt, std::size_t iteration = 0,
                      double objective = 0.0) const;

  JobSnapshot snapshot_locked(const Job& job) const;

  /// Folds the job's metrics into its tenant's retired aggregate and
  /// erases it. Caller must hold mutex_; the job must be terminal.
  std::map<std::uint64_t, std::unique_ptr<Job>>::iterator retire_locked(
      std::map<std::uint64_t, std::unique_ptr<Job>>::iterator it);

  /// Retires lowest-id terminal jobs until at most retain_terminal remain.
  void retire_excess_locked();

  /// The cache this runtime resolves against: the external shared tier
  /// when configured, its own otherwise.
  ProfileCache& cache() {
    return config_.shared_cache != nullptr ? *config_.shared_cache : cache_;
  }
  const ProfileCache& cache() const {
    return config_.shared_cache != nullptr ? *config_.shared_cache : cache_;
  }

  ServiceConfig config_;
  ChaosEngine chaos_;
  obs::MetricsRegistry cache_metrics_;   ///< svc.profile_cache.* counters.
  obs::MetricsRegistry timing_metrics_;  ///< Wall-clock histograms.
  ProfileCache cache_;  ///< Unused (inert config) under shared_cache.
  arith::QcsAlu gmm_alu_;  ///< Prototype; jobs run on clone_fresh() copies.
  arith::QcsAlu ar_alu_;   ///< Prototype for the AR datapath Q format.

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Queue/pause/stop changes.
  std::condition_variable done_cv_;  ///< Job completions.
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  /// Retired-job aggregates keyed by tenant, so exported tenant labels
  /// stay complete after retention eviction (merged in tenant order, which
  /// is deterministic for any worker count).
  std::map<std::string, std::unique_ptr<obs::MetricsRegistry>>
      retired_metrics_;
  std::size_t terminal_retained_ = 0;  ///< Terminal jobs still in jobs_.
  obs::QualityScorecard scorecard_;    ///< Guarded by mutex_.
  std::deque<std::uint64_t> queue_;
  std::map<std::string, std::size_t> tenant_active_;
  std::map<std::string, TokenBucket> tenant_buckets_;
  obs::MetricsRegistry qos_metrics_;  ///< svc.shed/degraded/retry/... counters.
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  ServiceStats tallies_;  ///< submitted/rejected/completed/failed only.

  std::vector<std::thread> workers_;
};

}  // namespace approxit::svc
