// Per-tenant quality of service for the serving runtime: latency SLOs,
// token-bucket admission, and graceful degradation under overload.
//
// ApproxIt's central trade — energy/latency against solution quality — is
// exactly the knob a loaded service wants to turn BEFORE it starts
// rejecting work. The QoS layer therefore degrades before it sheds:
//
//  - Token bucket, per tenant: each submission charges a COST SURROGATE
//    (iteration budget x problem dimension — the work a job buys, not just
//    a request count), refilled at `tenant_rate` units/second up to
//    `tenant_burst`. An empty bucket rejects with "rate_limited".
//  - Two watermarks on queue depth: past `degrade_watermark` jobs are
//    admitted DEGRADED — a coarser static QCS level (the paper's own
//    accuracy knob) and a capped iteration budget — trading quality for
//    latency exactly as the paper trades it for energy. Past
//    `shed_watermark` jobs are rejected with "shed_overload", except
//    priority >= 1 jobs, which degrade instead of shedding.
//  - SLO deadline: `slo_ms` is the default relative deadline applied to
//    jobs that do not carry their own; the runtime turns it into a
//    cooperative CancelToken deadline, so an over-budget job releases its
//    worker within one iteration.
//  - Retry policy: transiently-failed jobs (injected crashes, ALU-fault
//    aborts, single-flight peers' cancellations) are re-enqueued up to
//    `max_retries` times with deterministic jittered exponential backoff
//    (seeded per job id and attempt — identical schedules for any worker
//    count).
//
// All knobs default OFF: a default-constructed QosConfig reproduces the
// pre-QoS runtime exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace approxit::svc {

/// QoS policy of one ServiceRuntime (see header comment).
struct QosConfig {
  /// Default relative deadline in milliseconds for jobs that do not set
  /// JobSpec::deadline_ms. 0 = no default deadline.
  double slo_ms = 0.0;
  /// Queue depth at or past which new jobs are admitted degraded.
  /// 0 disables degradation.
  std::size_t degrade_watermark = 0;
  /// Queue depth at or past which new jobs are shed ("shed_overload");
  /// priority >= 1 jobs degrade instead. 0 disables shedding.
  std::size_t shed_watermark = 0;
  /// Strategy a degraded job runs with (a coarser static level is the
  /// paper-faithful choice; any valid strategy name is accepted).
  std::string degraded_strategy = "level2";
  /// Iteration cap for degraded jobs (applied as min with the job's own
  /// budget). 0 = no extra cap.
  std::size_t degraded_max_iterations = 0;
  /// Token-bucket refill rate in cost units per second; 0 disables the
  /// bucket. Cost of a job = iteration budget x problem dimension
  /// (job_cost).
  double tenant_rate = 0.0;
  /// Bucket capacity in cost units (clamped to >= one default job cost
  /// when the bucket is enabled).
  double tenant_burst = 0.0;
  /// Max re-executions of a transiently-failed job (0 = fail fast).
  std::size_t max_retries = 0;
  /// Backoff before retry k (0-based): min(retry_max_ms, retry_base_ms *
  /// 2^k) scaled by a deterministic jitter in [0.5, 1.0).
  double retry_base_ms = 10.0;
  double retry_max_ms = 1000.0;
  /// Seed of the jitter stream; the backoff of (job, attempt) depends only
  /// on this seed and those two numbers.
  std::uint64_t retry_seed = 0x51a0;
};

/// Classic token bucket over a caller-supplied millisecond clock (the
/// runtime feeds its own — possibly chaos-skewed — clock, so tests control
/// time). Not thread-safe; the runtime serializes access under its mutex.
class TokenBucket {
 public:
  /// `rate` in units/second, `burst` = capacity; starts full.
  TokenBucket(double rate, double burst, double now_ms);

  /// Takes `cost` units if available after refilling to `now_ms`.
  bool try_take(double cost, double now_ms);

  /// Units available after refilling to `now_ms` (observation only).
  double available(double now_ms);

 private:
  void refill(double now_ms);

  double rate_;
  double burst_;
  double tokens_;
  double last_ms_;
};

/// Deterministic jittered exponential backoff in milliseconds for retry
/// `attempt` (0-based) of job `job_id`.
double retry_backoff_ms(const QosConfig& qos, std::uint64_t job_id,
                        std::size_t attempt);

}  // namespace approxit::svc
