#include "svc/protocol.h"

#include <utility>

namespace approxit::svc {

std::optional<std::string> check_proto(const WireObject& request) {
  if (!request.has("proto")) return std::nullopt;  // v1 dialect.
  const std::int64_t proto = request.get_int("proto", 0);
  if (proto >= 1 && proto <= kProtoVersion) return std::nullopt;
  return "unsupported_proto: server speaks 1.." +
         std::to_string(kProtoVersion);
}

OpKind classify_op(const WireObject& request) {
  const std::string op = request.get_string("op");
  if (op == "hello") return OpKind::kHello;
  if (op == "submit") {
    return request.get_bool("stream", false) ? OpKind::kSubmitStream
                                             : OpKind::kSubmit;
  }
  if (op == "status") return OpKind::kStatus;
  if (op == "result") return OpKind::kResult;
  if (op == "cancel") return OpKind::kCancel;
  if (op == "forget") return OpKind::kForget;
  if (op == "stats" || op == "stats_export") return OpKind::kStats;
  if (op == "stream") return OpKind::kStream;
  if (op == "shutdown") return OpKind::kShutdown;
  return OpKind::kUnknown;
}

JobSpec job_spec_from_wire(const WireObject& request) {
  JobSpec spec;
  spec.tenant = request.get_string("tenant", "default");
  spec.app = request.get_string("app");
  spec.dataset = request.get_string("dataset");
  spec.strategy = request.get_string("strategy", "incremental");
  spec.max_iterations =
      static_cast<std::size_t>(request.get_int("max_iterations", 0));
  spec.characterization_iterations = static_cast<std::size_t>(
      request.get_int("characterization_iterations", 0));
  spec.keep_trace = request.get_bool("keep_trace", false);
  spec.deadline_ms = request.get_double("deadline_ms", 0.0);
  spec.priority = static_cast<int>(request.get_int("priority", 0));
  return spec;
}

void job_spec_to_wire(const JobSpec& spec, WireWriter& out) {
  out.field("tenant", spec.tenant)
      .field("app", spec.app)
      .field("dataset", spec.dataset)
      .field("strategy", spec.strategy);
  if (spec.max_iterations > 0) {
    out.field("max_iterations", spec.max_iterations);
  }
  if (spec.characterization_iterations > 0) {
    out.field("characterization_iterations",
              spec.characterization_iterations);
  }
  if (spec.keep_trace) out.field("keep_trace", true);
  if (spec.deadline_ms > 0.0) out.field("deadline_ms", spec.deadline_ms);
  if (spec.priority != 0) {
    out.field("priority", static_cast<std::int64_t>(spec.priority));
  }
}

std::optional<JobState> job_state_from_name(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  if (name == "deadline_exceeded") return JobState::kDeadlineExceeded;
  return std::nullopt;
}

JobStatus job_status_from_snapshot(const JobSnapshot& snapshot) {
  JobStatus status;
  status.id = snapshot.id;
  status.state = snapshot.state;
  status.error = snapshot.error;
  status.cache_hit = snapshot.cache_hit;
  status.queue_ms = snapshot.queue_ms;
  status.run_ms = snapshot.run_ms;
  status.characterization_ms = snapshot.characterization_ms;
  status.degraded = snapshot.degraded;
  status.attempts = snapshot.attempts;
  status.report_json = snapshot.report_json;
  return status;
}

namespace {

/// The v1 rule, kept in v2: the report rides along only for jobs whose
/// payload is meaningful as a (possibly partial) RESULT — done runs, and
/// cancelled / deadline-expired runs with the partial state they reached.
bool report_applies(const JobStatus& status) {
  return !status.report_json.empty() &&
         (status.state == JobState::kDone ||
          status.state == JobState::kCancelled ||
          status.state == JobState::kDeadlineExceeded);
}

}  // namespace

void job_status_to_wire(const JobStatus& status, bool include_report,
                        WireWriter& out) {
  out.field("id", static_cast<std::int64_t>(status.id));
  out.field("state", job_state_name(status.state));
  if (status.state == JobState::kFailed) {
    out.field("job_error", status.error);
  }
  if (status.terminal()) {
    out.field("cache_hit", status.cache_hit);
    out.field("queue_ms", status.queue_ms);
    out.field("run_ms", status.run_ms);
    out.field("characterization_ms", status.characterization_ms);
    out.field("degraded", status.degraded);
    out.field("attempts", status.attempts);
  }
  if (include_report && report_applies(status)) {
    out.raw("report", status.report_json);
  }
}

std::optional<JobStatus> job_status_from_wire(const WireObject& object,
                                              std::string* error) {
  const auto fail = [error](const char* message) -> std::optional<JobStatus> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!object.has("id")) return fail("missing id");
  const std::optional<JobState> state =
      job_state_from_name(object.get_string("state"));
  if (!state) return fail("missing or unknown state");
  JobStatus status;
  status.id = static_cast<std::uint64_t>(object.get_int("id", 0));
  status.state = *state;
  status.error = object.get_string("job_error");
  status.cache_hit = object.get_bool("cache_hit", false);
  status.queue_ms = object.get_double("queue_ms", 0.0);
  status.run_ms = object.get_double("run_ms", 0.0);
  status.characterization_ms =
      object.get_double("characterization_ms", 0.0);
  status.degraded = object.get_bool("degraded", false);
  status.attempts =
      static_cast<std::size_t>(object.get_int("attempts", 1));
  status.report_json = object.get_string("report");
  return status;
}

StatsSummary stats_summary_from(const ServiceStats& stats,
                                std::string metrics_json) {
  StatsSummary summary;
  summary.submitted = stats.submitted;
  summary.completed = stats.completed;
  summary.failed = stats.failed;
  summary.cancelled = stats.cancelled;
  summary.deadline_exceeded = stats.deadline_exceeded;
  summary.queued = stats.queued;
  summary.running = stats.running;
  summary.rejected_queue_full = stats.rejected_queue_full;
  summary.rejected_tenant_cap = stats.rejected_tenant_cap;
  summary.rejected_bad_request = stats.rejected_bad_request;
  summary.rejected_rate_limited = stats.rejected_rate_limited;
  summary.shed = stats.shed;
  summary.degraded = stats.degraded;
  summary.retries = stats.retries;
  summary.cache_hits = stats.cache.hits;
  summary.cache_misses = stats.cache.misses;
  summary.cache_disk_hits = stats.cache.disk_hits;
  summary.cache_stores = stats.cache.stores;
  summary.cache_evictions = stats.cache.evictions;
  summary.cache_quarantines = stats.cache.quarantines;
  summary.metrics_json = std::move(metrics_json);
  return summary;
}

void stats_summary_to_wire(const StatsSummary& summary, WireWriter& out) {
  out.field("submitted", summary.submitted)
      .field("completed", summary.completed)
      .field("failed", summary.failed)
      .field("cancelled", summary.cancelled)
      .field("deadline_exceeded", summary.deadline_exceeded)
      .field("queued", summary.queued)
      .field("running", summary.running)
      .field("rejected_queue_full", summary.rejected_queue_full)
      .field("rejected_tenant_cap", summary.rejected_tenant_cap)
      .field("rejected_bad_request", summary.rejected_bad_request)
      .field("rejected_rate_limited", summary.rejected_rate_limited)
      .field("shed", summary.shed)
      .field("degraded", summary.degraded)
      .field("retries", summary.retries)
      .field("cache_hits", summary.cache_hits)
      .field("cache_misses", summary.cache_misses)
      .field("cache_disk_hits", summary.cache_disk_hits)
      .field("cache_stores", summary.cache_stores)
      .field("cache_evictions", summary.cache_evictions)
      .field("cache_quarantines", summary.cache_quarantines);
  if (!summary.metrics_json.empty()) {
    out.raw("metrics", summary.metrics_json);
  }
}

StatsSummary stats_summary_from_wire(const WireObject& object) {
  const auto count = [&object](const char* key) {
    return static_cast<std::size_t>(object.get_int(key, 0));
  };
  StatsSummary summary;
  summary.submitted = count("submitted");
  summary.completed = count("completed");
  summary.failed = count("failed");
  summary.cancelled = count("cancelled");
  summary.deadline_exceeded = count("deadline_exceeded");
  summary.queued = count("queued");
  summary.running = count("running");
  summary.rejected_queue_full = count("rejected_queue_full");
  summary.rejected_tenant_cap = count("rejected_tenant_cap");
  summary.rejected_bad_request = count("rejected_bad_request");
  summary.rejected_rate_limited = count("rejected_rate_limited");
  summary.shed = count("shed");
  summary.degraded = count("degraded");
  summary.retries = count("retries");
  summary.cache_hits = count("cache_hits");
  summary.cache_misses = count("cache_misses");
  summary.cache_disk_hits = count("cache_disk_hits");
  summary.cache_stores = count("cache_stores");
  summary.cache_evictions = count("cache_evictions");
  summary.cache_quarantines = count("cache_quarantines");
  summary.metrics_json = object.get_string("metrics");
  return summary;
}

bool is_event_line(const WireObject& object) { return object.has("event"); }

std::string encode_hello_event() {
  WireWriter event;
  event.field("event", "hello")
      .field("proto", static_cast<std::int64_t>(kProtoVersion))
      .field("service", "approxit");
  return event.str();
}

namespace {

void append_event_header(const JobEvent& event, WireWriter& out) {
  out.field("event", job_event_kind_name(event.kind))
      .field("id", static_cast<std::int64_t>(event.id))
      .field("tenant", event.tenant)
      .field("state", job_state_name(event.state))
      .field("attempt", event.attempt);
}

}  // namespace

std::string encode_job_event(const JobEvent& event) {
  WireWriter out;
  append_event_header(event, out);
  if (event.kind == JobEvent::Kind::kProgress) {
    out.field("iteration", event.iteration)
        .field("objective", event.objective);
  }
  return out.str();
}

std::string encode_terminal_event(const JobEvent& event,
                                  const JobStatus& status) {
  WireWriter out;
  out.field("event", job_event_kind_name(JobEvent::Kind::kTerminal))
      .field("tenant", event.tenant)
      .field("attempt", event.attempt);
  // The status payload carries id/state (and the report, when it
  // applies) — the same encoder result responses use.
  job_status_to_wire(status, /*include_report=*/true, out);
  return out.str();
}

std::optional<StreamEvent> stream_event_from_wire(const WireObject& object,
                                                  std::string* error) {
  const auto fail = [error](const char* message) -> std::optional<StreamEvent> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!is_event_line(object)) return fail("not an event line");
  StreamEvent event;
  event.event = object.get_string("event");
  if (event.event == "hello") {
    event.proto = static_cast<int>(object.get_int("proto", 1));
    return event;
  }
  event.id = static_cast<std::uint64_t>(object.get_int("id", 0));
  event.tenant = object.get_string("tenant");
  event.state = object.get_string("state");
  event.attempt = static_cast<std::size_t>(object.get_int("attempt", 0));
  event.iteration = static_cast<std::size_t>(object.get_int("iteration", 0));
  event.objective = object.get_double("objective", 0.0);
  if (event.event == "terminal") {
    std::string status_error;
    const std::optional<JobStatus> status =
        job_status_from_wire(object, &status_error);
    if (!status) {
      return fail("malformed terminal event");
    }
    event.status = *status;
  }
  return event;
}

std::string encode_stream_event(const StreamEvent& event) {
  if (event.event == "hello") return encode_hello_event();
  JobEvent raw;
  raw.id = event.id;
  raw.tenant = event.tenant;
  raw.state = job_state_from_name(event.state).value_or(JobState::kQueued);
  raw.attempt = event.attempt;
  raw.iteration = event.iteration;
  raw.objective = event.objective;
  if (event.event == "terminal") {
    raw.kind = JobEvent::Kind::kTerminal;
    if (event.status) return encode_terminal_event(raw, *event.status);
    JobStatus fallback;
    fallback.id = event.id;
    fallback.state = raw.state;
    fallback.attempts = event.attempt + 1;
    return encode_terminal_event(raw, fallback);
  }
  raw.kind = event.event == "running"    ? JobEvent::Kind::kRunning
             : event.event == "progress" ? JobEvent::Kind::kProgress
                                         : JobEvent::Kind::kQueued;
  return encode_job_event(raw);
}

std::string encode_status_response(std::string_view op,
                                   const JobStatus& status,
                                   bool include_report) {
  WireWriter response;
  response.field("ok", true).field("op", op);
  job_status_to_wire(status, include_report, response);
  return response.str();
}

std::string encode_error(std::string_view op, std::string_view error) {
  WireWriter response;
  response.field("ok", false);
  if (!op.empty()) response.field("op", op);
  response.field("error", error);
  return response.str();
}

std::string encode_parse_error(std::string_view detail) {
  WireWriter response;
  response.field("ok", false)
      .field("error", "parse_error: " + std::string(detail));
  return response.str();
}

}  // namespace approxit::svc
