// Telemetry plane: metric export and per-tenant quality scorecards.
//
// The MetricsRegistry (obs/metrics.h) is deliberately dumb in-process
// state; this header is what turns it into a fleet-grade signal:
//
//   labeled()         canonical label encoding INSIDE a metric name —
//                     `svc.tenant.jobs{tenant="t1"}` — so the existing
//                     registry (sorted names, fixed merge order) carries
//                     per-tenant series without a schema change;
//   MetricsExporter   snapshots any registry into the Prometheus text
//                     exposition format or line-JSON. Output ordering is
//                     total (sorted families, sorted label sets, %.17g
//                     values), so two registries with equal contents export
//                     BYTE-IDENTICAL documents — the property the serving
//                     determinism tests gate on. export_delta() returns
//                     only what changed since the previous delta scrape
//                     (monotonic counter deltas, histogram bucket deltas),
//                     and an idle registry exports the empty string;
//   QualityScorecard  per-tenant rolling quality aggregation with an
//                     edge-triggered threshold-crossing signal — the
//                     paper's quality metric (QEM surrogate) promoted to a
//                     first-class exported, alertable series.
//
// Everything here is pure observation: exporters and scorecards read
// snapshots, never mutate the registry, and never touch the numeric path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/stats.h"

namespace approxit::obs {

// --- labeled metric names --------------------------------------------------

/// Canonical labeled metric name: `base{k1="v1",k2="v2"}` with keys sorted
/// and `\` / `"` escaped in values. Equal (base, labels) pairs always
/// produce the same string, so labeled series merge correctly across
/// registries. An empty label list returns `base` unchanged.
std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Parsed form of a (possibly labeled) registry metric name.
struct ParsedMetricName {
  std::string base;  ///< Name with any trailing `{...}` stripped.
  std::map<std::string, std::string> labels;
};

/// Inverse of labeled(). A name without a well-formed `{k="v",...}` suffix
/// parses as an unlabeled base.
ParsedMetricName parse_metric_name(std::string_view name);

// --- exporter --------------------------------------------------------------

/// Snapshots MetricsRegistry contents into interchange formats.
///
/// A default-constructed exporter is stateless for export_full(); the
/// delta baseline (what export_delta() diffs against) accumulates inside
/// the exporter, so one long-lived exporter per scrape endpoint gives
/// monotonic delta snapshots: every counter increment is reported exactly
/// once across the scrape sequence, and a scrape with no traffic since the
/// last one returns the empty string.
class MetricsExporter {
 public:
  enum class Format {
    kPrometheus,  ///< Prometheus text exposition (# TYPE + samples).
    kJsonLines,   ///< One JSON object per metric per line.
  };

  /// `prefix` is prepended to every Prometheus family name (dots and other
  /// invalid characters in metric names become '_').
  explicit MetricsExporter(std::string prefix = "approxit");

  /// Full cumulative snapshot. Deterministic: equal registry contents
  /// yield byte-identical output.
  std::string export_full(const MetricsRegistry& registry,
                          Format format) const;

  /// Changes since the previous export_delta() call (or since
  /// construction / reset_baseline()): counters report their increment,
  /// gauges their new value when it changed, histograms their bucket and
  /// sum increments. Metrics with no change are omitted entirely; a fully
  /// idle registry exports "".
  std::string export_delta(const MetricsRegistry& registry, Format format);

  /// Forgets the delta baseline: the next export_delta() reports
  /// everything as new.
  void reset_baseline();

  /// Prometheus-legal family name for a registry base name
  /// (prefix + '_' + base with invalid characters replaced by '_').
  std::string family_name(std::string_view base) const;

 private:
  struct HistogramBaseline {
    std::size_t count = 0;
    double sum = 0.0;
    std::vector<std::size_t> buckets;
  };

  /// One exportable sample, pre-parsed and pre-diffed.
  struct Sample {
    ParsedMetricName name;
    double value = 0.0;                ///< Counters/gauges.
    std::size_t count = 0;             ///< Histograms.
    double sum = 0.0;                  ///< Histograms.
    std::vector<std::size_t> buckets;  ///< Histograms (per-bin counts).
    double lo = 0.0, hi = 0.0;         ///< Histogram layout.
    util::BucketHistogram sketch;      ///< Full snapshot (quantiles).
    bool has_sketch = false;           ///< False for delta histograms.
  };

  std::string render(const std::vector<Sample>& counters,
                     const std::vector<Sample>& gauges,
                     const std::vector<Sample>& histograms,
                     Format format) const;

  std::string prefix_;
  std::map<std::string, double> counter_baseline_;
  std::map<std::string, double> gauge_baseline_;
  std::map<std::string, HistogramBaseline> histogram_baseline_;
};

// --- quality scorecard -----------------------------------------------------

/// Scorecard policy knobs.
struct ScorecardConfig {
  /// Rolling-window length (jobs) of the per-tenant quality mean.
  std::size_t window = 32;
  /// Rolling mean quality error at or above which a tenant is flagged as
  /// degraded (edge-triggered: one crossing event per excursion).
  /// 0 disables the threshold signal.
  double quality_threshold = 0.0;
};

/// Per-tenant aggregate of one scorecard.
struct TenantScore {
  std::size_t jobs = 0;
  std::size_t converged = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t degraded_admissions = 0;
  util::RunningStats quality;       ///< QEM quality error per job.
  util::RunningStats energy_ratio;  ///< Approx/accurate energy per job.
  util::RunningStats latency_ms;    ///< Admission -> terminal.
  std::deque<double> rolling;       ///< Newest-last quality window.
  bool above_threshold = false;     ///< Crossing latch.
  std::size_t threshold_crossings = 0;

  /// Mean of the rolling window (0 when empty).
  double rolling_quality() const;
};

/// Outcome fed into QualityScorecard::record for one terminal job.
struct JobOutcome {
  std::string tenant;
  double quality_error = 0.0;  ///< QEM surrogate (steps-weighted epsilon).
  double energy_ratio = 1.0;   ///< Spent energy / accurate-equivalent.
  double latency_ms = 0.0;
  bool converged = false;
  bool degraded_admission = false;
  /// Terminal state name ("done", "failed", "cancelled",
  /// "deadline_exceeded").
  std::string terminal = "done";
};

/// Aggregates terminal-job outcomes into per-tenant quality/SLO
/// distributions. NOT thread-safe (the serving runtime records under its
/// own mutex). Record order follows job completion, so rolling-window
/// state is an operational signal, not a determinism-gated one.
class QualityScorecard {
 public:
  explicit QualityScorecard(ScorecardConfig config = {});

  /// Folds one job in. Returns true when this record pushed the tenant's
  /// rolling quality mean ACROSS the threshold (rising edge only).
  bool record(const JobOutcome& outcome);

  /// Folds another scorecard in (the ShardRouter's fleet view): per-tenant
  /// counts sum, the quality/energy/latency accumulators do a Welford
  /// merge, and crossing counts add. Rolling windows concatenate
  /// this-then-other (trimmed to the window) and the threshold latch ORs —
  /// both are operational signals, not deterministic ones, matching the
  /// class contract.
  void merge(const QualityScorecard& other);

  const std::map<std::string, TenantScore>& tenants() const {
    return tenants_;
  }

  std::size_t threshold_crossings() const { return crossings_; }

  /// Writes the scorecard into a registry as labeled gauges/counters
  /// (svc.scorecard.* families with tenant labels).
  void export_to(MetricsRegistry& registry) const;

  /// The scorecard JSON document the CI job uploads:
  /// {"tenants":{"t1":{...}},"threshold_crossings":N}.
  std::string to_json() const;

 private:
  ScorecardConfig config_;
  std::map<std::string, TenantScore> tenants_;
  std::size_t crossings_ = 0;
};

}  // namespace approxit::obs
