// Structured trace events and pluggable sinks.
//
// Instrumented layers (session, ALU, strategies, watchdog, sweep) emit
// TraceEvents — instants, duration spans and metadata — into the active
// TraceSink. Three sinks ship:
//
//   RingSink         fixed-capacity in-memory ring, for tests and
//                    post-mortem inspection of the most recent events;
//   JsonlSink        one JSON object per line (machine-readable stream,
//                    folded by tools/trace_summary);
//   ChromeTraceSink  the Chrome trace-event format — load the file in
//                    chrome://tracing or https://ui.perfetto.dev and
//                    parallel sweep arms render as per-lane timelines.
//
// When no sink is active every emission site reduces to one relaxed
// atomic load (trace_enabled()), so instrumentation costs nothing in
// untraced runs and never perturbs numeric results either way.
//
// The active sink is process-global and NON-owning: install before a run,
// remove (set_trace_sink(nullptr)) before destroying the sink. Sinks must
// be thread-safe — parallel sweep arms emit concurrently, distinguished by
// a thread-local LANE id (LaneScope) that maps to the `tid` lane of the
// Chrome trace viewer.
//
// Setting APPROXIT_TRACE=<path> installs a file sink at first use:
// *.json/*.trace selects the Chrome trace format, anything else JSONL.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace approxit::obs {

/// One key/value annotation on an event. `numeric` values are serialized
/// as bare JSON numbers, everything else as escaped strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// Annotation builders (numbers keep full precision via %.17g).
TraceArg arg(std::string key, std::string_view value);
TraceArg arg(std::string key, const char* value);
TraceArg arg(std::string key, double value);
TraceArg arg(std::string key, std::size_t value);
TraceArg arg(std::string key, bool value);

/// Event flavours, mapped onto Chrome trace-event phases.
enum class EventKind : int {
  kInstant = 0,  ///< Point event (ph "i").
  kSpan = 1,     ///< Complete duration event (ph "X").
  kCounter = 2,  ///< Counter sample (ph "C").
  kMeta = 3,     ///< Metadata, e.g. lane naming (ph "M").
};

/// Kind label ("instant", "span", "counter", "meta").
std::string_view event_kind_name(EventKind kind);

/// One structured trace event.
struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string category;  ///< Layer: "session", "alu", "sweep", ...
  std::string name;      ///< Event name within the category.
  double ts_us = 0.0;    ///< Microseconds since the process trace epoch.
  double dur_us = 0.0;   ///< Span duration (kSpan only).
  std::uint32_t lane = 0;  ///< Sweep-arm lane (Chrome trace tid).
  std::vector<TraceArg> args;
};

/// Sink interface. emit() must be safe to call from multiple threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Fixed-capacity in-memory ring: keeps the newest `capacity` events,
/// counts what it had to drop.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity = 4096);

  void emit(const TraceEvent& event) override;

  /// Copy of the retained events in emission order.
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;
  std::size_t dropped() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::deque<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t dropped_ = 0;
};

/// One JSON object per line:
///   {"ts":..,"kind":"instant","cat":"session","name":"iteration",
///    "lane":0,"args":{...}}   (spans add "dur").
class JsonlSink final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path);

  /// Writes to a caller-owned stream (tests).
  explicit JsonlSink(std::ostream& out);

  ~JsonlSink() override;

  void emit(const TraceEvent& event) override;
  void flush() override;

  std::size_t events_written() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream file_;
  std::ostream* out_;
  std::size_t events_ = 0;
};

/// Chrome trace-event JSON ({"traceEvents":[...]}). The array is closed by
/// flush()/destruction; lanes named via kMeta events render as threads.
class ChromeTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit ChromeTraceSink(const std::string& path);

  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;
  void flush() override;

 private:
  void write_event_locked(const TraceEvent& event);

  std::mutex mutex_;
  std::ofstream file_;
  bool first_ = true;
  bool closed_ = false;
};

/// Serializes one event as the JSONL line payload (no trailing newline).
std::string event_to_jsonl(const TraceEvent& event);

// --- global trace state ----------------------------------------------------

/// Installs the active sink (non-owning; nullptr disables tracing). Also
/// installs the util::logging bridge so log lines >= warn become "log"
/// category events. Swap only while no instrumented code is running.
void set_trace_sink(TraceSink* sink);

/// The active sink, after APPROXIT_TRACE env bootstrapping; nullptr when
/// tracing is off.
TraceSink* trace_sink();

/// True when a sink is active — THE hot-path gate, one relaxed atomic
/// load. All instrumentation must check this before building events.
bool trace_enabled();

/// Microseconds since the process trace epoch (steady clock).
double trace_now_us();

/// Emits an instant event into the active sink (no-op when disabled).
void emit_instant(std::string_view category, std::string_view name,
                  std::vector<TraceArg> args = {});

/// Emits a span that started at `start_us` (trace_now_us() taken by the
/// caller before the work) and ends now.
void emit_span(std::string_view category, std::string_view name,
               double start_us, std::vector<TraceArg> args = {});

/// Current thread's lane id (0 outside any LaneScope).
std::uint32_t current_lane();

// --- causal job context ----------------------------------------------------

class LaneScope;

/// The causal identity of one serving job: everything emitted while a
/// JobScope is active — admission decisions, cache lookups, session
/// iterations, watchdog rungs — carries these three fields as "job",
/// "tenant" and "attempt" args, so one grep (or one Chrome-trace lane)
/// reconstructs a job's whole life across layers that never heard of the
/// serving runtime.
struct JobContext {
  std::uint64_t job_id = 0;
  std::string tenant;
  std::size_t attempt = 0;
  /// False for the empty context outside any JobScope.
  bool active = false;
};

/// This thread's job context (inactive outside any JobScope).
const JobContext& current_job();

/// Scoped job-context binding: sets the thread-local JobContext (and
/// optionally a per-job trace lane) for the duration of one job execution;
/// restores the previous context on destruction. Pure observation — when
/// tracing is off the only cost is the thread-local save/restore.
class JobScope {
 public:
  /// Binds `context` verbatim without touching the lane — the propagation
  /// form (e.g. re-binding current_job() inside a worker-pool shard; an
  /// inactive context stays inactive).
  explicit JobScope(const JobContext& context);

  /// Binds `context` as ACTIVE plus a dedicated trace lane named
  /// `lane_name`, so the job's events render as one Chrome-trace lane.
  JobScope(const JobContext& context, std::uint32_t lane,
           std::string_view lane_name);

  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;
  ~JobScope();

 private:
  JobContext previous_;
  std::unique_ptr<LaneScope> lane_;
};

/// Scoped lane binding for one sweep arm / worker: sets the thread-local
/// lane id, emits a lane-naming metadata event, restores the previous lane
/// on destruction.
class LaneScope {
 public:
  LaneScope(std::uint32_t lane, std::string_view name);
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;
  ~LaneScope();

 private:
  std::uint32_t previous_;
};

/// RAII duration span: captures the start time at construction (when
/// tracing is enabled) and emits a kSpan on destruction. Cheap no-op when
/// tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view category, std::string_view name,
             std::vector<TraceArg> args = {});
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// True when the span will emit (tracing was enabled at construction).
  bool active() const { return active_; }

  /// Attaches one more annotation (e.g. a result computed inside the
  /// span). Ignored when inactive.
  void add_arg(TraceArg arg);

 private:
  bool active_;
  double start_us_ = 0.0;
  std::string category_;
  std::string name_;
  std::vector<TraceArg> args_;
};

}  // namespace approxit::obs
