#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace approxit::obs {

namespace {

// Labeled metric names (telemetry.h labeled()) embed quoted label values,
// so names must be escaped before they can serve as JSON object keys.
std::string json_escape_name(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 4);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(lo, hi, bins))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the other side first: merging a registry into itself or
  // concurrent writers on `other` must not deadlock on ordered locks.
  const std::map<std::string, double> other_counters =
      other.counter_values();
  const std::map<std::string, double> other_gauges = other.gauge_values();
  std::map<std::string, bool> other_gauge_set;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, gauge] : other.gauges_) {
      other_gauge_set[name] = gauge->has_value();
    }
  }
  const std::map<std::string, util::BucketHistogram> other_histograms =
      other.histogram_values();

  for (const auto& [name, value] : other_counters) {
    counter(name).add(value);
  }
  for (const auto& [name, value] : other_gauges) {
    if (other_gauge_set[name]) gauge(name).set(value);
  }
  for (const auto& [name, sketch] : other_histograms) {
    if (sketch.buckets().empty()) continue;
    histogram(name, sketch.lo(), sketch.hi(), sketch.buckets().size())
        .merge_sketch(sketch);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::map<std::string, double> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->value();
  }
  return out;
}

std::map<std::string, util::BucketHistogram>
MetricsRegistry::histogram_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, util::BucketHistogram> out;
  for (const auto& [name, histogram] : histograms_) {
    out.emplace(name, histogram->snapshot());
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto counters = counter_values();
  const auto gauges = gauge_values();
  const auto histograms = histogram_values();
  std::ostringstream os;
  os.precision(17);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << '"' << json_escape_name(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << '"' << json_escape_name(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, sketch] : histograms) {
    if (!first) os << ",";
    first = false;
    os << '"' << json_escape_name(name) << "\":{\"count\":" << sketch.count()
       << ",\"mean\":" << sketch.stats().mean()
       << ",\"p50\":" << sketch.p50() << ",\"p90\":" << sketch.p90()
       << ",\"p99\":" << sketch.p99() << "}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace approxit::obs
