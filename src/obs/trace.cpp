#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/logging.h"

namespace approxit::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// JSON string escaping (mirrors core/report_io's json_escape; duplicated
/// here because obs sits below core in the layering).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + escape(args[i].key) + "\":";
    if (args[i].numeric) {
      out += args[i].value;
    } else {
      out += "\"" + escape(args[i].value) + "\"";
    }
  }
  out += "}";
}

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<bool> g_enabled{false};

/// Owns the sink installed from the APPROXIT_TRACE environment variable
/// (kept alive to the end of the process so it flushes on exit).
std::unique_ptr<TraceSink>& env_sink_storage() {
  static std::unique_ptr<TraceSink> sink;
  return sink;
}

void log_bridge(util::LogLevel level, std::string_view component,
                std::string_view message) {
  if (!trace_enabled()) return;
  emit_instant("log", util::to_string(level),
               {arg("component", component), arg("message", message)});
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// One-time APPROXIT_TRACE bootstrap: runs before the first sink query.
void ensure_env_init() {
  static const bool initialized = [] {
    (void)trace_epoch();  // pin the epoch before any event timestamps
    if (const char* path = std::getenv("APPROXIT_TRACE")) {
      if (path[0] != '\0') {
        try {
          std::unique_ptr<TraceSink> sink;
          if (ends_with(path, ".json") || ends_with(path, ".trace")) {
            sink = std::make_unique<ChromeTraceSink>(path);
          } else {
            sink = std::make_unique<JsonlSink>(path);
          }
          env_sink_storage() = std::move(sink);
          set_trace_sink(env_sink_storage().get());
        } catch (const std::exception& e) {
          APPROXIT_LOG(util::LogLevel::kError, "obs")
              << "APPROXIT_TRACE: cannot open '" << path << "': " << e.what();
        }
      }
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace

TraceArg arg(std::string key, std::string_view value) {
  return TraceArg{std::move(key), std::string(value), false};
}

TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), std::string(value), false};
}

TraceArg arg(std::string key, double value) {
  // NaN/Inf are not valid JSON numbers — encode them as strings so a
  // poisoned statistic (fault injection) cannot corrupt the sink output.
  const bool numeric = std::isfinite(value);
  return TraceArg{std::move(key), format_double(value), numeric};
}

TraceArg arg(std::string key, std::size_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}

TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false", true};
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant:
      return "instant";
    case EventKind::kSpan:
      return "span";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kMeta:
      return "meta";
  }
  return "?";
}

// --- RingSink --------------------------------------------------------------

RingSink::RingSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingSink::emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(event);
}

std::vector<TraceEvent> RingSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

std::size_t RingSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t RingSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void RingSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_ = 0;
}

// --- JsonlSink -------------------------------------------------------------

std::string event_to_jsonl(const TraceEvent& event) {
  std::string line;
  line.reserve(128);
  line += "{\"ts\":" + format_double(event.ts_us);
  line += ",\"kind\":\"" + std::string(event_kind_name(event.kind)) + "\"";
  line += ",\"cat\":\"" + escape(event.category) + "\"";
  line += ",\"name\":\"" + escape(event.name) + "\"";
  line += ",\"lane\":" + std::to_string(event.lane);
  if (event.kind == EventKind::kSpan) {
    line += ",\"dur\":" + format_double(event.dur_us);
  }
  line += ",\"args\":";
  append_args(line, event.args);
  line += "}";
  return line;
}

JsonlSink::JsonlSink(const std::string& path) : out_(nullptr) {
  file_.open(path);
  if (!file_) {
    throw std::runtime_error("JsonlSink: cannot open " + path);
  }
  out_ = &file_;
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::emit(const TraceEvent& event) {
  const std::string line = event_to_jsonl(event);
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  ++events_;
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
}

std::size_t JsonlSink::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  file_.open(path);
  if (!file_) {
    throw std::runtime_error("ChromeTraceSink: cannot open " + path);
  }
  file_ << "{\"traceEvents\":[\n";
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::write_event_locked(const TraceEvent& event) {
  const char* ph = "i";
  switch (event.kind) {
    case EventKind::kInstant:
      ph = "i";
      break;
    case EventKind::kSpan:
      ph = "X";
      break;
    case EventKind::kCounter:
      ph = "C";
      break;
    case EventKind::kMeta:
      ph = "M";
      break;
  }
  std::string record;
  record.reserve(160);
  record += first_ ? "" : ",\n";
  first_ = false;
  record += "{\"name\":\"" + escape(event.name) + "\"";
  record += ",\"cat\":\"" + escape(event.category) + "\"";
  record += ",\"ph\":\"" + std::string(ph) + "\"";
  record += ",\"ts\":" + format_double(event.ts_us);
  if (event.kind == EventKind::kSpan) {
    record += ",\"dur\":" + format_double(event.dur_us);
  }
  if (event.kind == EventKind::kInstant) {
    record += ",\"s\":\"t\"";  // thread-scoped instant
  }
  record += ",\"pid\":1,\"tid\":" + std::to_string(event.lane);
  record += ",\"args\":";
  append_args(record, event.args);
  record += "}";
  file_ << record;
}

void ChromeTraceSink::emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  write_event_locked(event);
}

void ChromeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!closed_) {
    file_ << "\n]}\n";
    closed_ = true;
  }
  file_.flush();
}

// --- global trace state ----------------------------------------------------

void set_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
  g_enabled.store(sink != nullptr, std::memory_order_release);
  // Bridge warn+ log lines into the trace (idempotent; stays installed —
  // the bridge itself checks trace_enabled()).
  util::set_log_hook(&log_bridge);
}

TraceSink* trace_sink() {
  ensure_env_init();
  return g_sink.load(std::memory_order_acquire);
}

bool trace_enabled() {
  ensure_env_init();
  return g_enabled.load(std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   trace_epoch())
      .count();
}

namespace {
thread_local std::uint32_t t_lane = 0;
thread_local JobContext t_job;

/// Appends the active job identity to an event's args — the causal stamp
/// that lets one grep follow a job through every instrumented layer.
void append_job_context(std::vector<TraceArg>& args) {
  if (!t_job.active) return;
  args.push_back(arg("job", static_cast<std::size_t>(t_job.job_id)));
  args.push_back(arg("tenant", t_job.tenant));
  args.push_back(arg("attempt", t_job.attempt));
}
}  // namespace

std::uint32_t current_lane() { return t_lane; }

const JobContext& current_job() { return t_job; }

JobScope::JobScope(const JobContext& context) : previous_(t_job) {
  // Verbatim copy: propagating an INACTIVE context (current_job() outside
  // any job) into a pool thread must stay inactive, not invent job 0.
  t_job = context;
}

JobScope::JobScope(const JobContext& context, std::uint32_t lane,
                   std::string_view lane_name)
    : previous_(t_job),
      lane_(std::make_unique<LaneScope>(lane, lane_name)) {
  t_job = context;
  t_job.active = true;
}

JobScope::~JobScope() { t_job = previous_; }

void emit_instant(std::string_view category, std::string_view name,
                  std::vector<TraceArg> args) {
  TraceSink* sink = trace_sink();
  if (!sink) return;
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.category = std::string(category);
  event.name = std::string(name);
  event.ts_us = trace_now_us();
  event.lane = t_lane;
  event.args = std::move(args);
  append_job_context(event.args);
  sink->emit(event);
}

void emit_span(std::string_view category, std::string_view name,
               double start_us, std::vector<TraceArg> args) {
  TraceSink* sink = trace_sink();
  if (!sink) return;
  TraceEvent event;
  event.kind = EventKind::kSpan;
  event.category = std::string(category);
  event.name = std::string(name);
  event.ts_us = start_us;
  event.dur_us = trace_now_us() - start_us;
  event.lane = t_lane;
  event.args = std::move(args);
  append_job_context(event.args);
  sink->emit(event);
}

LaneScope::LaneScope(std::uint32_t lane, std::string_view name)
    : previous_(t_lane) {
  t_lane = lane;
  if (TraceSink* sink = trace_sink()) {
    TraceEvent event;
    event.kind = EventKind::kMeta;
    event.category = "lane";
    event.name = "thread_name";
    event.ts_us = trace_now_us();
    event.lane = lane;
    event.args.push_back(arg("name", name));
    sink->emit(event);
  }
}

LaneScope::~LaneScope() { t_lane = previous_; }

ScopedSpan::ScopedSpan(std::string_view category, std::string_view name,
                       std::vector<TraceArg> args)
    : active_(trace_enabled()) {
  if (!active_) return;
  start_us_ = trace_now_us();
  category_ = std::string(category);
  name_ = std::string(name);
  args_ = std::move(args);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  emit_span(category_, name_, start_us_, std::move(args_));
}

void ScopedSpan::add_arg(TraceArg arg) {
  if (!active_) return;
  args_.push_back(std::move(arg));
}

}  // namespace approxit::obs
