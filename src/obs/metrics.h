// Mergeable metrics registry: named counters, gauges and histograms.
//
// Instrumented code resolves a metric ONCE (registry lock, map lookup) and
// keeps the returned handle; the hot path is then a single relaxed atomic
// add (Counter/Gauge) or a short mutex-guarded bucket increment
// (Histogram). Handles stay valid for the registry's lifetime — metrics
// are never removed, only reset to zero.
//
// Like arith::EnergyLedger and arith::FaultLedger, a registry is a VALUE
// that merges: parallel work-pool arms (util/parallel.h) each write into
// their own registry, and the arms are merged in fixed arm order
// afterwards, so the aggregate is bit-identical for any thread count
// (core/sweep.cpp is the reference user).
//
// A process-global registry (global_metrics()) backs ad-hoc
// instrumentation that has no session to hang a registry on.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/stats.h"

namespace approxit::obs {

/// Monotonic accumulator (operation counts, energy totals). Doubles keep
/// integer counts exact up to 2^53 and cover energy sums with one type.
class Counter {
 public:
  /// Adds `delta` (relaxed atomic; safe from any thread).
  void add(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written value (final objective, active thread count, ...).
class Gauge {
 public:
  void set(double value) {
    value_.store(value, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  /// False until the first set() — distinguishes "0" from "never written".
  bool has_value() const { return set_.load(std::memory_order_relaxed); }

  void reset() {
    value_.store(0.0, std::memory_order_relaxed);
    set_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram with exact side moments and p50/p90/p99
/// extraction (util::BucketHistogram under a mutex; record() is short and
/// cold relative to the spans being sampled into it).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : histogram_(lo, hi, bins) {}

  void record(double x) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(x);
  }

  /// Consistent copy of the accumulated sketch.
  util::BucketHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }

  std::size_t count() const { return snapshot().count(); }
  double quantile(double p) const { return snapshot().quantile(p); }

  void merge(const Histogram& other) { merge_sketch(other.snapshot()); }

  /// Merges an already-snapshotted sketch (layouts must match).
  void merge_sketch(const util::BucketHistogram& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.merge(other);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_ = util::BucketHistogram(histogram_.lo(), histogram_.hi(),
                                       histogram_.buckets().size());
  }

 private:
  mutable std::mutex mutex_;
  util::BucketHistogram histogram_;
};

/// Named metrics container. Lookup/creation is mutex-guarded; the returned
/// references are stable until the registry is destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter.
  Counter& counter(std::string_view name);

  /// Finds or creates the named gauge.
  Gauge& gauge(std::string_view name);

  /// Finds or creates the named histogram. The layout is fixed by the
  /// FIRST creation; later calls with a different layout return the
  /// existing histogram unchanged (merging requires stable layouts).
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins);

  /// Merges another registry: counters add, histograms merge bucket-wise,
  /// a gauge adopts the other's value when the other has been set (the
  /// merged-in arm is the more recent writer). Metrics missing on either
  /// side are created. Merging arms in a fixed order yields the same
  /// result for any thread count.
  void merge(const MetricsRegistry& other);

  /// Zeroes every metric (handles stay valid).
  void reset();

  /// Snapshots for tests/export, keyed by name in sorted order.
  std::map<std::string, double> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, util::BucketHistogram> histogram_values() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count":..,"mean":..,"p50":..,"p90":..,"p99":..},...}}.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry (never destroyed before exit).
MetricsRegistry& global_metrics();

}  // namespace approxit::obs
