#include "obs/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace approxit::obs {

namespace {

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 4);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{k="v",...}` rendering of a label map, with an optional extra label
/// appended LAST (Prometheus convention places `le` after user labels).
std::string label_block(const std::map<std::string, std::string>& labels,
                        std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escape_label_value(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + std::string(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const std::map<std::string, std::string>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  if (labels.size() == 0) return std::string(base);
  // Canonicalize through a sorted map so equal label sets always render
  // the same name regardless of call-site ordering.
  std::map<std::string, std::string> sorted;
  for (const auto& [key, value] : labels) {
    sorted[std::string(key)] = std::string(value);
  }
  return std::string(base) + label_block(sorted);
}

ParsedMetricName parse_metric_name(std::string_view name) {
  ParsedMetricName parsed;
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    parsed.base = std::string(name);
    return parsed;
  }
  parsed.base = std::string(name.substr(0, brace));
  std::string_view body = name.substr(brace + 1, name.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos || eq + 1 >= body.size() ||
        body[eq + 1] != '"') {
      break;  // Not our canonical encoding: treat the rest as opaque.
    }
    const std::string key(body.substr(pos, eq - pos));
    std::string value;
    std::size_t i = eq + 2;
    bool closed = false;
    for (; i < body.size(); ++i) {
      if (body[i] == '\\' && i + 1 < body.size()) {
        value += body[++i];
      } else if (body[i] == '"') {
        closed = true;
        ++i;
        break;
      } else {
        value += body[i];
      }
    }
    if (!closed) break;
    parsed.labels[key] = std::move(value);
    if (i < body.size() && body[i] == ',') ++i;
    pos = i;
  }
  return parsed;
}

MetricsExporter::MetricsExporter(std::string prefix)
    : prefix_(std::move(prefix)) {}

std::string MetricsExporter::family_name(std::string_view base) const {
  std::string out = prefix_.empty() ? "" : prefix_ + "_";
  for (char c : base) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string MetricsExporter::export_full(const MetricsRegistry& registry,
                                         Format format) const {
  std::vector<Sample> counters, gauges, histograms;
  for (const auto& [name, value] : registry.counter_values()) {
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.value = value;
    counters.push_back(std::move(sample));
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.value = value;
    gauges.push_back(std::move(sample));
  }
  for (const auto& [name, sketch] : registry.histogram_values()) {
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.count = sketch.count();
    sample.sum = sketch.stats().sum();
    sample.buckets = sketch.buckets();
    sample.lo = sketch.lo();
    sample.hi = sketch.hi();
    sample.sketch = sketch;
    sample.has_sketch = true;
    histograms.push_back(std::move(sample));
  }
  return render(counters, gauges, histograms, format);
}

std::string MetricsExporter::export_delta(const MetricsRegistry& registry,
                                          Format format) {
  std::vector<Sample> counters, gauges, histograms;
  for (const auto& [name, value] : registry.counter_values()) {
    const auto it = counter_baseline_.find(name);
    const double last = it == counter_baseline_.end() ? 0.0 : it->second;
    // A counter below its baseline means the registry was reset: report
    // the full current value so nothing is silently lost.
    const double delta = value >= last ? value - last : value;
    counter_baseline_[name] = value;
    if (delta == 0.0) continue;
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.value = delta;
    counters.push_back(std::move(sample));
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const auto it = gauge_baseline_.find(name);
    const bool changed = it == gauge_baseline_.end() || it->second != value;
    gauge_baseline_[name] = value;
    if (!changed) continue;
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.value = value;
    gauges.push_back(std::move(sample));
  }
  for (const auto& [name, sketch] : registry.histogram_values()) {
    HistogramBaseline& base = histogram_baseline_[name];
    const std::size_t count = sketch.count();
    const double sum = sketch.stats().sum();
    if (base.buckets.size() != sketch.buckets().size() ||
        count < base.count) {
      base.buckets.assign(sketch.buckets().size(), 0);
      base.count = 0;
      base.sum = 0.0;
    }
    if (count == base.count) continue;
    Sample sample;
    sample.name = parse_metric_name(name);
    sample.count = count - base.count;
    sample.sum = sum - base.sum;
    sample.lo = sketch.lo();
    sample.hi = sketch.hi();
    sample.buckets.resize(sketch.buckets().size());
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      sample.buckets[i] = sketch.buckets()[i] - base.buckets[i];
    }
    base.count = count;
    base.sum = sum;
    base.buckets = sketch.buckets();
    histograms.push_back(std::move(sample));
  }
  if (counters.empty() && gauges.empty() && histograms.empty()) return "";
  return render(counters, gauges, histograms, format);
}

void MetricsExporter::reset_baseline() {
  counter_baseline_.clear();
  gauge_baseline_.clear();
  histogram_baseline_.clear();
}

std::string MetricsExporter::render(const std::vector<Sample>& counters,
                                    const std::vector<Sample>& gauges,
                                    const std::vector<Sample>& histograms,
                                    Format format) const {
  std::string out;
  if (format == Format::kJsonLines) {
    const auto emit_scalar = [&](const Sample& sample, const char* type) {
      out += "{\"metric\":\"" + json_escape(sample.name.base) +
             "\",\"labels\":" + labels_json(sample.name.labels) +
             ",\"type\":\"" + type +
             "\",\"value\":" + format_double(sample.value) + "}\n";
    };
    for (const Sample& sample : counters) emit_scalar(sample, "counter");
    for (const Sample& sample : gauges) emit_scalar(sample, "gauge");
    for (const Sample& sample : histograms) {
      out += "{\"metric\":\"" + json_escape(sample.name.base) +
             "\",\"labels\":" + labels_json(sample.name.labels) +
             ",\"type\":\"histogram\"";
      out += ",\"count\":" + std::to_string(sample.count);
      out += ",\"sum\":" + format_double(sample.sum);
      if (sample.has_sketch) {
        out += ",\"mean\":" + format_double(sample.sketch.stats().mean());
        out += ",\"p50\":" + format_double(sample.sketch.p50());
        out += ",\"p90\":" + format_double(sample.sketch.p90());
        out += ",\"p99\":" + format_double(sample.sketch.p99());
      } else {
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(sample.buckets[i]);
        }
        out += "]";
      }
      out += "}\n";
    }
    return out;
  }

  // Prometheus text exposition: families sorted by exported name, one
  // # TYPE line per family, then its samples in registry (sorted) order.
  const auto emit_family =
      [&](const std::vector<Sample>& samples, const char* type,
          const auto& emit_sample) {
        std::string last_family;
        for (const Sample& sample : samples) {
          const std::string family = family_name(sample.name.base);
          if (family != last_family) {
            out += "# TYPE " + family + " " + type + "\n";
            last_family = family;
          }
          emit_sample(sample, family);
        }
      };
  emit_family(counters, "counter", [&](const Sample& s, const std::string& f) {
    out += f + label_block(s.name.labels) + " " + format_double(s.value) +
           "\n";
  });
  emit_family(gauges, "gauge", [&](const Sample& s, const std::string& f) {
    out += f + label_block(s.name.labels) + " " + format_double(s.value) +
           "\n";
  });
  emit_family(
      histograms, "histogram", [&](const Sample& s, const std::string& f) {
        std::size_t cumulative = 0;
        const std::size_t bins = s.buckets.size();
        for (std::size_t i = 0; i < bins; ++i) {
          cumulative += s.buckets[i];
          const double edge = s.lo + (s.hi - s.lo) *
                                         static_cast<double>(i + 1) /
                                         static_cast<double>(bins);
          out += f + "_bucket" +
                 label_block(s.name.labels, "le", format_double(edge)) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += f + "_bucket" + label_block(s.name.labels, "le", "+Inf") +
               " " + std::to_string(s.count) + "\n";
        out += f + "_sum" + label_block(s.name.labels) + " " +
               format_double(s.sum) + "\n";
        out += f + "_count" + label_block(s.name.labels) + " " +
               std::to_string(s.count) + "\n";
      });
  return out;
}

// --- quality scorecard -----------------------------------------------------

double TenantScore::rolling_quality() const {
  if (rolling.empty()) return 0.0;
  double sum = 0.0;
  for (double q : rolling) sum += q;
  return sum / static_cast<double>(rolling.size());
}

QualityScorecard::QualityScorecard(ScorecardConfig config)
    : config_(config) {
  if (config_.window == 0) config_.window = 1;
}

bool QualityScorecard::record(const JobOutcome& outcome) {
  TenantScore& score = tenants_[outcome.tenant];
  ++score.jobs;
  if (outcome.converged) ++score.converged;
  if (outcome.degraded_admission) ++score.degraded_admissions;
  if (outcome.terminal == "deadline_exceeded") ++score.deadline_exceeded;
  if (outcome.terminal == "cancelled") ++score.cancelled;
  if (outcome.terminal == "failed") ++score.failed;
  score.quality.add(outcome.quality_error);
  score.energy_ratio.add(outcome.energy_ratio);
  score.latency_ms.add(outcome.latency_ms);
  score.rolling.push_back(outcome.quality_error);
  while (score.rolling.size() > config_.window) score.rolling.pop_front();

  if (config_.quality_threshold <= 0.0) return false;
  const bool above = score.rolling_quality() >= config_.quality_threshold;
  const bool crossed = above && !score.above_threshold;
  score.above_threshold = above;
  if (crossed) {
    ++score.threshold_crossings;
    ++crossings_;
  }
  return crossed;
}

void QualityScorecard::merge(const QualityScorecard& other) {
  for (const auto& [tenant, theirs] : other.tenants_) {
    TenantScore& score = tenants_[tenant];
    score.jobs += theirs.jobs;
    score.converged += theirs.converged;
    score.deadline_exceeded += theirs.deadline_exceeded;
    score.cancelled += theirs.cancelled;
    score.failed += theirs.failed;
    score.degraded_admissions += theirs.degraded_admissions;
    score.quality.merge(theirs.quality);
    score.energy_ratio.merge(theirs.energy_ratio);
    score.latency_ms.merge(theirs.latency_ms);
    for (double q : theirs.rolling) score.rolling.push_back(q);
    while (score.rolling.size() > config_.window) score.rolling.pop_front();
    score.above_threshold = score.above_threshold || theirs.above_threshold;
    score.threshold_crossings += theirs.threshold_crossings;
  }
  crossings_ += other.crossings_;
}

void QualityScorecard::export_to(MetricsRegistry& registry) const {
  // Gauges throughout (set semantics): re-exporting into a long-lived
  // registry overwrites instead of double-counting.
  for (const auto& [tenant, score] : tenants_) {
    const auto set = [&](std::string_view base, double value) {
      registry.gauge(labeled(base, {{"tenant", tenant}})).set(value);
    };
    set("svc.scorecard.jobs", static_cast<double>(score.jobs));
    set("svc.scorecard.converged", static_cast<double>(score.converged));
    set("svc.scorecard.failed", static_cast<double>(score.failed));
    set("svc.scorecard.cancelled", static_cast<double>(score.cancelled));
    set("svc.scorecard.deadline_exceeded",
        static_cast<double>(score.deadline_exceeded));
    set("svc.scorecard.degraded_admissions",
        static_cast<double>(score.degraded_admissions));
    set("svc.scorecard.quality_mean", score.quality.mean());
    set("svc.scorecard.quality_max",
        score.quality.count() > 0 ? score.quality.max() : 0.0);
    set("svc.scorecard.quality_rolling", score.rolling_quality());
    set("svc.scorecard.energy_ratio_mean", score.energy_ratio.mean());
    set("svc.scorecard.latency_ms_mean", score.latency_ms.mean());
    set("svc.scorecard.threshold_crossings",
        static_cast<double>(score.threshold_crossings));
  }
  registry.gauge("svc.scorecard.total_threshold_crossings")
      .set(static_cast<double>(crossings_));
}

std::string QualityScorecard::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, score] : tenants_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(tenant) << "\":{"
       << "\"jobs\":" << score.jobs
       << ",\"converged\":" << score.converged
       << ",\"failed\":" << score.failed
       << ",\"cancelled\":" << score.cancelled
       << ",\"deadline_exceeded\":" << score.deadline_exceeded
       << ",\"degraded_admissions\":" << score.degraded_admissions
       << ",\"quality_mean\":" << score.quality.mean()
       << ",\"quality_max\":"
       << (score.quality.count() > 0 ? score.quality.max() : 0.0)
       << ",\"quality_rolling\":" << score.rolling_quality()
       << ",\"energy_ratio_mean\":" << score.energy_ratio.mean()
       << ",\"latency_ms_mean\":" << score.latency_ms.mean()
       << ",\"latency_ms_max\":"
       << (score.latency_ms.count() > 0 ? score.latency_ms.max() : 0.0)
       << ",\"threshold_crossings\":" << score.threshold_crossings << "}";
  }
  os << "},\"threshold_crossings\":" << crossings_ << "}";
  return os.str();
}

}  // namespace approxit::obs
