// Stationary iterative solvers for linear systems A x = b:
// Jacobi, Gauss-Seidel, and SOR.
//
// Implements IterativeMethod so ApproxIt can drive them: the per-row
// relaxation sums run through the ArithContext (resilient region); the
// residual-based objective f(x) = 0.5 ||Ax - b||^2 and its gradient
// A^T(Ax - b) are exact monitor quantities.
#pragma once

#include <vector>

#include "la/matrix.h"
#include "opt/iterative_method.h"

namespace approxit::opt {

/// Which stationary scheme to run.
enum class StationaryScheme { kJacobi, kGaussSeidel, kSor };

/// Returns "jacobi", "gauss_seidel" or "sor".
std::string to_string(StationaryScheme scheme);

/// Configuration for StationarySolver.
struct StationaryConfig {
  StationaryScheme scheme = StationaryScheme::kJacobi;
  double relaxation = 1.0;  ///< SOR omega in (0, 2); ignored by the others.
  std::size_t max_iter = 1000;
  double tolerance = 1e-10;  ///< Converged when ||Ax - b||_2 < tolerance.
};

/// Stationary iterative linear solver. A must be square with a nonzero
/// diagonal; convergence additionally requires the usual spectral
/// conditions (e.g. diagonal dominance), which the caller is responsible
/// for.
class StationarySolver final : public IterativeMethod {
 public:
  StationarySolver(la::Matrix a, std::vector<double> b,
                   std::vector<double> x0, StationaryConfig config);

  std::string name() const override { return to_string(config_.scheme); }
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return x_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

  /// Exact current residual norm ||A x - b||_2.
  double residual_norm() const;

 private:
  double objective_at(std::span<const double> x) const;

  la::Matrix a_;
  std::vector<double> b_;
  std::vector<double> x0_;
  StationaryConfig config_;

  std::vector<double> x_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace approxit::opt
