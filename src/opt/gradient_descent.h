// (Momentum) gradient descent over a Problem.
//
// Direction computation (the problem's gradient) and the position update
// both run through the supplied ArithContext — the two approximate-error
// sources the paper analyzes ("direction error" and "update error").
// Monitor quantities are exact.
#pragma once

#include <vector>

#include "opt/iterative_method.h"
#include "opt/problem.h"

namespace approxit::opt {

/// Configuration for GradientDescentSolver.
struct GdConfig {
  double step_size = 0.01;   ///< Fixed step alpha.
  double momentum = 0.0;     ///< Momentum coefficient beta (0 = plain GD).
  std::size_t max_iter = 1000;
  double tolerance = 1e-10;  ///< Converged when |f_k - f_{k-1}| < tolerance.
};

/// First-order iterative solver x <- x + beta v - alpha grad f(x).
class GradientDescentSolver final : public IterativeMethod {
 public:
  /// The problem must outlive the solver. `x0` is copied and used by
  /// reset().
  GradientDescentSolver(const Problem& problem, std::vector<double> x0,
                        GdConfig config);

  std::string name() const override;
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

 private:
  const Problem& problem_;
  std::vector<double> x0_;
  GdConfig config_;

  std::vector<double> x_;
  std::vector<double> velocity_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace approxit::opt
