// Conjugate gradient for SPD linear systems A x = b.
//
// The alpha/beta reductions and the x/r/p updates run through the
// ArithContext; CG's sensitivity to inexact arithmetic makes it a stress
// case for the reconfiguration strategies (approximation perturbs the
// conjugacy recurrences, so low-accuracy modes stall progress).
//
// The operator is either a dense la::Matrix or a sparse la::CsrMatrix —
// the sparse form scales the same solver to 1M+ unknown stencil systems:
// A p runs through the sharded SpMV datapath (exact arithmetic, like the
// dense matvec — the resilience partitioning keeps the operator exact
// and routes the reductions/updates), and the rr/pap reductions use
// fused arith::BatchWorkspace chains (bit- and ledger-identical to
// ctx.dot). Steady-state iterate() performs no heap allocation; every
// temporary lives in a member arena sized in reset().
#pragma once

#include <vector>

#include "arith/workspace.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "opt/iterative_method.h"

namespace approxit::opt {

/// Configuration for ConjugateGradientSolver.
struct CgConfig {
  std::size_t max_iter = 1000;
  double tolerance = 1e-10;  ///< Converged when ||A x - b||_2 < tolerance.
  /// Shard/thread plan for the sparse operator (defaults serial; ignored
  /// by the dense constructor).
  la::SpmvOptions spmv;
};

/// CG over an SPD system, exposed as an IterativeMethod.
class ConjugateGradientSolver final : public IterativeMethod {
 public:
  /// Dense operator.
  ConjugateGradientSolver(la::Matrix a, std::vector<double> b,
                          std::vector<double> x0, CgConfig config);

  /// Sparse operator; builds the transpose view for the exact monitor
  /// gradient A^T (A x - b) once at construction.
  ConjugateGradientSolver(la::CsrMatrix a, std::vector<double> b,
                          std::vector<double> x0, CgConfig config);

  std::string name() const override { return "conjugate_gradient"; }
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

  /// Exact current residual norm ||A x - b||_2.
  double residual_norm() const;

  /// True when the operator is the sparse form.
  bool sparse() const { return sparse_; }

 private:
  /// out <- A x, exact (dense matvec or serial sparse CSR walk).
  void apply_exact(std::span<const double> x, std::span<double> out) const;
  /// out <- A^T x, exact.
  void apply_transposed_exact(std::span<const double> x,
                              std::span<double> out) const;
  /// ap_ <- A p_ for the CG step (sharded SpMV on the sparse path).
  void apply_direction();
  double objective_at(std::span<const double> x) const;
  /// ctx.dot(a, b) through the fused chain (bit/ledger-identical).
  double chain_dot(arith::ArithContext& ctx, std::span<const double> a,
                   std::span<const double> b);
  void restart_direction();

  la::Matrix a_;       ///< Dense operator (dense constructor).
  la::CsrMatrix sa_;   ///< Sparse operator (sparse constructor).
  bool sparse_ = false;
  std::vector<double> b_;
  std::vector<double> x0_;
  CgConfig config_;

  std::vector<double> x_;
  std::vector<double> r_;  ///< recurrence residual (context-updated)
  std::vector<double> p_;  ///< search direction
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;

  // Iteration arenas (sized in reset(); no allocation in iterate()).
  arith::ExactContext exact_;        ///< Exact routing for the sparse A p.
  la::SpmvWorkspace ws_;             ///< Sparse operator execution state.
  arith::BatchWorkspace chain_;      ///< Fused rr/pap reduction chains.
  arith::ArithContext* bound_ctx_ = nullptr;  ///< chain_'s current bind.
  std::vector<double> x_prev_;
  std::vector<double> ap_;            ///< A p (and restart scratch).
  std::vector<double> true_residual_;
  std::vector<double> monitor_grad_;
  std::vector<double> scaled_p_;
  std::vector<double> step_;
  mutable std::vector<double> obj_ax_;  ///< objective_at scratch.
};

}  // namespace approxit::opt
