// Conjugate gradient for SPD linear systems A x = b.
//
// The alpha/beta reductions and the x/r/p updates run through the
// ArithContext; CG's sensitivity to inexact arithmetic makes it a stress
// case for the reconfiguration strategies (approximation perturbs the
// conjugacy recurrences, so low-accuracy modes stall progress).
#pragma once

#include <vector>

#include "la/matrix.h"
#include "opt/iterative_method.h"

namespace approxit::opt {

/// Configuration for ConjugateGradientSolver.
struct CgConfig {
  std::size_t max_iter = 1000;
  double tolerance = 1e-10;  ///< Converged when ||A x - b||_2 < tolerance.
};

/// CG over an SPD system, exposed as an IterativeMethod.
class ConjugateGradientSolver final : public IterativeMethod {
 public:
  ConjugateGradientSolver(la::Matrix a, std::vector<double> b,
                          std::vector<double> x0, CgConfig config);

  std::string name() const override { return "conjugate_gradient"; }
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

  /// Exact current residual norm ||A x - b||_2.
  double residual_norm() const;

 private:
  double objective_at(std::span<const double> x) const;
  void restart_direction();

  la::Matrix a_;
  std::vector<double> b_;
  std::vector<double> x0_;
  CgConfig config_;

  std::vector<double> x_;
  std::vector<double> r_;  ///< recurrence residual (context-updated)
  std::vector<double> p_;  ///< search direction
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace approxit::opt
