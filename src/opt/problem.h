// Differentiable optimization problems for the generic solvers.
//
// value() is exact (error-sensitive monitor path); gradient() is the
// error-resilient direction computation and accumulates through the
// supplied ArithContext — its error is the paper's "direction error".
#pragma once

#include <span>
#include <string>
#include <vector>

#include "arith/context.h"
#include "la/matrix.h"

namespace approxit::opt {

/// A smooth objective f: R^n -> R with context-routed gradient.
class Problem {
 public:
  virtual ~Problem() = default;

  /// Problem name for reports.
  virtual std::string name() const = 0;

  /// Number of variables n.
  virtual std::size_t dimension() const = 0;

  /// Exact objective value.
  virtual double value(std::span<const double> x) const = 0;

  /// Gradient at x, written to `out` (size n); reductions through `ctx`.
  virtual void gradient(std::span<const double> x, std::span<double> out,
                        arith::ArithContext& ctx) const = 0;

  /// True when hessian() is implemented (Newton's method support).
  virtual bool has_hessian() const { return false; }

  /// Hessian at x; only valid when has_hessian(). Exact (Newton's solve is
  /// error-sensitive). Default throws std::logic_error.
  virtual void hessian(std::span<const double> x, la::Matrix& out) const;
};

/// Convex quadratic f(x) = 0.5 x^T A x - b^T x with SPD A.
/// Gradient A x - b; Hessian A. The canonical test problem: the unique
/// minimizer solves A x = b.
class QuadraticProblem final : public Problem {
 public:
  /// `a` must be square and is assumed SPD; `b` must match its size.
  QuadraticProblem(la::Matrix a, std::vector<double> b);

  std::string name() const override { return "quadratic"; }
  std::size_t dimension() const override { return b_.size(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x, std::span<double> out,
                arith::ArithContext& ctx) const override;
  bool has_hessian() const override { return true; }
  void hessian(std::span<const double> x, la::Matrix& out) const override;

  const la::Matrix& a() const { return a_; }
  std::span<const double> b() const { return b_; }

 private:
  la::Matrix a_;
  std::vector<double> b_;
};

/// Linear least squares f(x) = (1/2m) ||A x - y||^2 over m observations.
/// Gradient (1/m) A^T (A x - y); Hessian (1/m) A^T A.
class LeastSquaresProblem final : public Problem {
 public:
  /// `a` is the m x n design matrix, `y` the m observations.
  LeastSquaresProblem(la::Matrix a, std::vector<double> y);

  std::string name() const override { return "least_squares"; }
  std::size_t dimension() const override { return a_.cols(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x, std::span<double> out,
                arith::ArithContext& ctx) const override;
  bool has_hessian() const override { return true; }
  void hessian(std::span<const double> x, la::Matrix& out) const override;

  /// Residual vector A x - y (exact).
  std::vector<double> residual(std::span<const double> x) const;

  const la::Matrix& design() const { return a_; }
  std::span<const double> observations() const { return y_; }

 private:
  la::Matrix a_;
  std::vector<double> y_;
};

/// The n-dimensional Rosenbrock function (non-convex "banana" valley) —
/// the kind of complex parameter manifold Figure 2 motivates the adaptive
/// angle-based strategy with.
///   f(x) = sum_{i<n-1} [ 100 (x_{i+1} - x_i^2)^2 + (1 - x_i)^2 ]
class RosenbrockProblem final : public Problem {
 public:
  explicit RosenbrockProblem(std::size_t n);

  std::string name() const override { return "rosenbrock"; }
  std::size_t dimension() const override { return n_; }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x, std::span<double> out,
                arith::ArithContext& ctx) const override;

 private:
  std::size_t n_;
};

}  // namespace approxit::opt
