#include "opt/gradient_descent.h"

#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

GradientDescentSolver::GradientDescentSolver(const Problem& problem,
                                             std::vector<double> x0,
                                             GdConfig config)
    : problem_(problem), x0_(std::move(x0)), config_(config) {
  if (x0_.size() != problem_.dimension()) {
    throw std::invalid_argument(
        "GradientDescentSolver: x0 dimension mismatch");
  }
  if (config_.step_size <= 0.0) {
    throw std::invalid_argument(
        "GradientDescentSolver: step size must be positive");
  }
  if (config_.momentum < 0.0 || config_.momentum >= 1.0) {
    throw std::invalid_argument(
        "GradientDescentSolver: momentum must be in [0, 1)");
  }
  reset();
}

std::string GradientDescentSolver::name() const {
  return config_.momentum > 0.0 ? "momentum_gd" : "gradient_descent";
}

void GradientDescentSolver::reset() {
  x_ = x0_;
  velocity_.assign(x_.size(), 0.0);
  current_objective_ = problem_.value(x_);
  iteration_ = 0;
}

IterationStats GradientDescentSolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  const std::vector<double> x_prev = x_;
  const double f_prev = current_objective_;

  // Exact monitor gradient at x^{k-1} (error-sensitive framework part).
  std::vector<double> monitor_grad(n);
  arith::ExactContext exact;
  problem_.gradient(x_prev, monitor_grad, exact);

  // Resilient direction computation through the context.
  std::vector<double> grad(n);
  problem_.gradient(x_, grad, ctx);

  // v <- beta v - alpha g  (combined through the context),
  // x <- x + v            (the paper's update step, through the context).
  // Both are elementwise batched passes; per-element results match the
  // fused scalar loop exactly (the chains are independent across i).
  std::vector<double> momentum_terms(n);
  std::vector<double> scaled_grad(n);
  for (std::size_t i = 0; i < n; ++i) {
    momentum_terms[i] = config_.momentum * velocity_[i];
    scaled_grad[i] = config_.step_size * grad[i];
  }
  ctx.sub_vec(momentum_terms, scaled_grad, velocity_);
  ctx.add_vec(x_, velocity_, x_);

  current_objective_ = problem_.value(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev);
  stats.state_norm = la::norm2(x_);
  const std::vector<double> step = la::subtract(x_, x_prev);
  stats.grad_dot_step = la::dot(monitor_grad, step);
  stats.grad_norm = la::norm2(monitor_grad);
  // Signed check: exact descent has improvement >= 0, so this matches the
  // |df| < tol reading; under approximation it trips on objective upticks.
  stats.converged = stats.improvement() < config_.tolerance;
  return stats;
}

std::vector<double> GradientDescentSolver::state() const {
  // Layout: [x | velocity].
  std::vector<double> snapshot = x_;
  snapshot.insert(snapshot.end(), velocity_.begin(), velocity_.end());
  return snapshot;
}

void GradientDescentSolver::restore(const std::vector<double>& snapshot) {
  const std::size_t n = x_.size();
  if (snapshot.size() != 2 * n) {
    throw std::invalid_argument(
        "GradientDescentSolver::restore: bad snapshot size");
  }
  x_.assign(snapshot.begin(), snapshot.begin() + static_cast<long>(n));
  velocity_.assign(snapshot.begin() + static_cast<long>(n), snapshot.end());
  current_objective_ = problem_.value(x_);
}

}  // namespace approxit::opt
