// Newton's method over a Problem with an exact Hessian solve.
//
// The Newton direction d = -H^{-1} g uses a context-routed gradient (the
// resilient direction computation) but an exact factorization — inverting a
// wrong Hessian is the "fatal error" class the offline resilience analysis
// keeps on exact hardware. The position update runs through the context.
#pragma once

#include <vector>

#include "opt/iterative_method.h"
#include "opt/problem.h"

namespace approxit::opt {

/// Configuration for NewtonSolver.
struct NewtonConfig {
  double damping = 1.0;  ///< Step scale in (0, 1]; 1 = full Newton step.
  std::size_t max_iter = 100;
  double tolerance = 1e-12;  ///< Converged when |f_k - f_{k-1}| < tolerance.
  double ridge = 1e-9;       ///< Added to the Hessian diagonal for stability.
};

/// Second-order iterative solver x <- x - damping * H^{-1} grad f(x).
class NewtonSolver final : public IterativeMethod {
 public:
  /// The problem must have a Hessian (Problem::has_hessian()).
  NewtonSolver(const Problem& problem, std::vector<double> x0,
               NewtonConfig config);

  std::string name() const override { return "newton"; }
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return x_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

 private:
  const Problem& problem_;
  std::vector<double> x0_;
  NewtonConfig config_;

  std::vector<double> x_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace approxit::opt
