#include "opt/newton.h"

#include <cmath>
#include <stdexcept>

#include "la/decomp.h"
#include "la/vector_ops.h"

namespace approxit::opt {

NewtonSolver::NewtonSolver(const Problem& problem, std::vector<double> x0,
                           NewtonConfig config)
    : problem_(problem), x0_(std::move(x0)), config_(config) {
  if (!problem_.has_hessian()) {
    throw std::invalid_argument("NewtonSolver: problem has no Hessian");
  }
  if (x0_.size() != problem_.dimension()) {
    throw std::invalid_argument("NewtonSolver: x0 dimension mismatch");
  }
  if (config_.damping <= 0.0 || config_.damping > 1.0) {
    throw std::invalid_argument("NewtonSolver: damping must be in (0, 1]");
  }
  reset();
}

void NewtonSolver::reset() {
  x_ = x0_;
  current_objective_ = problem_.value(x_);
  iteration_ = 0;
}

IterationStats NewtonSolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  const std::vector<double> x_prev = x_;
  const double f_prev = current_objective_;

  // Exact monitor gradient (framework part).
  std::vector<double> monitor_grad(n);
  arith::ExactContext exact;
  problem_.gradient(x_prev, monitor_grad, exact);

  // Resilient gradient through the context; exact Hessian factorization.
  std::vector<double> grad(n);
  problem_.gradient(x_, grad, ctx);
  la::Matrix hessian;
  problem_.hessian(x_, hessian);
  for (std::size_t i = 0; i < n; ++i) hessian(i, i) += config_.ridge;

  const auto direction = la::cholesky_solve(hessian, grad);
  if (!direction) {
    throw std::runtime_error(
        "NewtonSolver: Hessian not positive definite at iterate");
  }

  // x <- x - damping * d through the context (update error source).
  la::axpy(ctx, -config_.damping, *direction, x_);

  current_objective_ = problem_.value(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev);
  stats.state_norm = la::norm2(x_);
  const std::vector<double> step = la::subtract(x_, x_prev);
  stats.grad_dot_step = la::dot(monitor_grad, step);
  stats.grad_norm = la::norm2(monitor_grad);
  stats.converged = stats.improvement() < config_.tolerance;
  return stats;
}

void NewtonSolver::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != x_.size()) {
    throw std::invalid_argument("NewtonSolver::restore: bad snapshot size");
  }
  x_ = snapshot;
  current_objective_ = problem_.value(x_);
}

}  // namespace approxit::opt
