#include "opt/line_search.h"

#include <stdexcept>
#include <vector>

#include "la/vector_ops.h"

namespace approxit::opt {

LineSearchResult backtracking_line_search(const Problem& problem,
                                          std::span<const double> x,
                                          std::span<const double> direction,
                                          std::span<const double> grad,
                                          const LineSearchOptions& options) {
  if (x.size() != direction.size() || x.size() != grad.size()) {
    throw std::invalid_argument("backtracking_line_search: size mismatch");
  }
  if (options.initial_step <= 0.0 || options.shrink <= 0.0 ||
      options.shrink >= 1.0) {
    throw std::invalid_argument(
        "backtracking_line_search: bad step/shrink parameters");
  }

  LineSearchResult result;
  const double slope = la::dot(grad, direction);
  if (slope >= 0.0) {
    return result;  // not a descent direction
  }
  const double f0 = problem.value(x);
  ++result.evaluations;

  double step = options.initial_step;
  std::vector<double> trial(x.begin(), x.end());
  for (std::size_t k = 0; k < options.max_backtracks; ++k) {
    for (std::size_t i = 0; i < trial.size(); ++i) {
      trial[i] = x[i] + step * direction[i];
    }
    const double f = problem.value(trial);
    ++result.evaluations;
    if (f <= f0 + options.sufficient_decrease * step * slope) {
      result.step = step;
      result.objective = f;
      result.success = true;
      return result;
    }
    step *= options.shrink;
  }
  return result;
}

}  // namespace approxit::opt
