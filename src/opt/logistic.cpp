#include "opt/logistic.h"

#include <cmath>
#include <stdexcept>

namespace approxit::opt {

double sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double log1p_exp(double z) {
  if (z > 30.0) return z;            // exp overflow guard: log1p(e^z) ~ z
  if (z < -30.0) return std::exp(z); // log1p(tiny) ~ tiny
  return std::log1p(std::exp(z));
}

LogisticProblem::LogisticProblem(la::Matrix x, std::vector<int> y, double l2)
    : x_(std::move(x)), y_(std::move(y)), l2_(l2) {
  if (x_.rows() != y_.size() || x_.rows() == 0 || x_.cols() == 0) {
    throw std::invalid_argument("LogisticProblem: shape mismatch");
  }
  if (l2_ < 0.0) {
    throw std::invalid_argument("LogisticProblem: l2 must be >= 0");
  }
  for (int label : y_) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("LogisticProblem: labels must be 0/1");
    }
  }
}

double LogisticProblem::value(std::span<const double> w) const {
  const std::size_t m = x_.rows();
  const std::vector<double> logits = x_.matvec(w);
  double loss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    loss += log1p_exp(logits[i]) -
            (y_[i] == 1 ? logits[i] : 0.0);
  }
  loss /= static_cast<double>(m);
  double reg = 0.0;
  for (double wi : w) reg += wi * wi;
  return loss + 0.5 * l2_ * reg;
}

void LogisticProblem::gradient(std::span<const double> w,
                               std::span<double> out,
                               arith::ArithContext& ctx) const {
  const std::size_t m = x_.rows();
  const std::size_t n = x_.cols();
  if (w.size() != n || out.size() != n) {
    throw std::invalid_argument("LogisticProblem::gradient: size mismatch");
  }
  // Logits via the (possibly approximate) context — direction error source.
  std::vector<double> err(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double logit = ctx.dot(x_.row(i), w);
    // The sigmoid itself is a small exact lookup-style unit.
    err[i] = sigmoid(logit) - static_cast<double>(y_[i]);
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  // One batched column reduction per coefficient (same fold order as the
  // scalar loop).
  std::vector<double> terms(m);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      terms[i] = x_(i, j) * err[i] * inv_m;
    }
    out[j] = ctx.accumulate(terms) + l2_ * w[j];
  }
}

void LogisticProblem::hessian(std::span<const double> w,
                              la::Matrix& out) const {
  const std::size_t m = x_.rows();
  const std::size_t n = x_.cols();
  const std::vector<double> logits = x_.matvec(w);
  out = la::Matrix(n, n, 0.0);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double p = sigmoid(logits[i]);
    const double weight = p * (1.0 - p) * inv_m;
    if (weight == 0.0) continue;
    for (std::size_t r = 0; r < n; ++r) {
      const double xr = x_(i, r);
      if (xr == 0.0) continue;
      for (std::size_t c = 0; c <= r; ++c) {
        out(r, c) += weight * xr * x_(i, c);
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      out(c, r) = out(r, c);
    }
    out(r, r) += l2_;
  }
}

std::vector<double> LogisticProblem::probabilities(
    std::span<const double> w) const {
  const std::vector<double> logits = x_.matvec(w);
  std::vector<double> p(logits.size());
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = sigmoid(logits[i]);
  return p;
}

double LogisticProblem::accuracy(std::span<const double> w) const {
  const std::vector<double> p = probabilities(w);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const int predicted = p[i] >= 0.5 ? 1 : 0;
    if (predicted == y_[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(p.size());
}

}  // namespace approxit::opt
