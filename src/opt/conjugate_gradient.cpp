#include "opt/conjugate_gradient.h"

#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

ConjugateGradientSolver::ConjugateGradientSolver(la::Matrix a,
                                                 std::vector<double> b,
                                                 std::vector<double> x0,
                                                 CgConfig config)
    : a_(std::move(a)),
      b_(std::move(b)),
      x0_(std::move(x0)),
      config_(config) {
  if (a_.rows() != a_.cols() || a_.rows() != b_.size() ||
      b_.size() != x0_.size()) {
    throw std::invalid_argument("ConjugateGradientSolver: dimension mismatch");
  }
  reset();
}

void ConjugateGradientSolver::reset() {
  x_ = x0_;
  restart_direction();
  current_objective_ = objective_at(x_);
  iteration_ = 0;
}

void ConjugateGradientSolver::restart_direction() {
  // r = b - A x (exact restart; recurrences drift under approximation).
  r_ = a_.matvec(x_);
  for (std::size_t i = 0; i < r_.size(); ++i) r_[i] = b_[i] - r_[i];
  p_ = r_;
}

double ConjugateGradientSolver::objective_at(std::span<const double> x) const {
  const std::vector<double> ax = a_.matvec(x);
  double s = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = ax[i] - b_[i];
    s += r * r;
  }
  return 0.5 * s;
}

double ConjugateGradientSolver::residual_norm() const {
  return std::sqrt(2.0 * objective_at(x_));
}

IterationStats ConjugateGradientSolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  const std::vector<double> x_prev = x_;
  const double f_prev = current_objective_;

  // Exact monitor gradient A^T(Ax - b) == A(Ax - b) for symmetric A.
  std::vector<double> true_residual = a_.matvec(x_prev);
  for (std::size_t i = 0; i < n; ++i) true_residual[i] -= b_[i];
  const std::vector<double> monitor_grad = a_.matvec_transposed(true_residual);

  // One CG step with context-routed reductions and updates.
  const std::vector<double> ap = a_.matvec(p_);
  const double rr = ctx.dot(r_, r_);
  const double pap = ctx.dot(p_, ap);
  if (pap <= 0.0 || rr == 0.0) {
    // Approximation broke conjugacy (or we are converged): restart from the
    // exact residual to keep the method well-defined.
    restart_direction();
  } else {
    const double alpha = rr / pap;
    la::axpy(ctx, alpha, p_, x_);
    la::axpy(ctx, -alpha, ap, r_);
    const double rr_new = ctx.dot(r_, r_);
    const double beta = rr_new / rr;
    // p <- r + beta p, batched (the scale is exact, the add routed).
    std::vector<double> scaled_p(n);
    for (std::size_t i = 0; i < n; ++i) scaled_p[i] = beta * p_[i];
    ctx.add_vec(r_, scaled_p, p_);
  }

  current_objective_ = objective_at(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev);
  stats.state_norm = la::norm2(x_);
  const std::vector<double> step = la::subtract(x_, x_prev);
  stats.grad_dot_step = la::dot(monitor_grad, step);
  stats.grad_norm = la::norm2(monitor_grad);
  stats.converged = residual_norm() < config_.tolerance;
  return stats;
}

std::vector<double> ConjugateGradientSolver::state() const {
  // Layout: [x | r | p].
  std::vector<double> snapshot = x_;
  snapshot.insert(snapshot.end(), r_.begin(), r_.end());
  snapshot.insert(snapshot.end(), p_.begin(), p_.end());
  return snapshot;
}

void ConjugateGradientSolver::restore(const std::vector<double>& snapshot) {
  const std::size_t n = x_.size();
  if (snapshot.size() != 3 * n) {
    throw std::invalid_argument(
        "ConjugateGradientSolver::restore: bad snapshot size");
  }
  auto it = snapshot.begin();
  x_.assign(it, it + static_cast<long>(n));
  it += static_cast<long>(n);
  r_.assign(it, it + static_cast<long>(n));
  it += static_cast<long>(n);
  p_.assign(it, it + static_cast<long>(n));
  current_objective_ = objective_at(x_);
}

}  // namespace approxit::opt
