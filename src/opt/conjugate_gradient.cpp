#include "opt/conjugate_gradient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

ConjugateGradientSolver::ConjugateGradientSolver(la::Matrix a,
                                                 std::vector<double> b,
                                                 std::vector<double> x0,
                                                 CgConfig config)
    : a_(std::move(a)),
      b_(std::move(b)),
      x0_(std::move(x0)),
      config_(config) {
  if (a_.rows() != a_.cols() || a_.rows() != b_.size() ||
      b_.size() != x0_.size()) {
    throw std::invalid_argument("ConjugateGradientSolver: dimension mismatch");
  }
  reset();
}

ConjugateGradientSolver::ConjugateGradientSolver(la::CsrMatrix a,
                                                 std::vector<double> b,
                                                 std::vector<double> x0,
                                                 CgConfig config)
    : sa_(std::move(a)),
      sparse_(true),
      b_(std::move(b)),
      x0_(std::move(x0)),
      config_(config) {
  if (sa_.rows() != sa_.cols() || sa_.rows() != b_.size() ||
      b_.size() != x0_.size()) {
    throw std::invalid_argument("ConjugateGradientSolver: dimension mismatch");
  }
  sa_.build_transpose();
  ws_.set_options(config_.spmv);
  reset();
}

void ConjugateGradientSolver::reset() {
  const std::size_t n = x0_.size();
  x_ = x0_;
  r_.assign(n, 0.0);
  p_.assign(n, 0.0);
  x_prev_.assign(n, 0.0);
  ap_.assign(n, 0.0);
  true_residual_.assign(n, 0.0);
  monitor_grad_.assign(n, 0.0);
  scaled_p_.assign(n, 0.0);
  step_.assign(n, 0.0);
  obj_ax_.assign(n, 0.0);
  restart_direction();
  current_objective_ = objective_at(x_);
  iteration_ = 0;
}

void ConjugateGradientSolver::apply_exact(std::span<const double> x,
                                          std::span<double> out) const {
  if (sparse_) {
    sa_.matvec(x, out);
  } else {
    a_.matvec(x, out);
  }
}

void ConjugateGradientSolver::apply_transposed_exact(
    std::span<const double> x, std::span<double> out) const {
  if (sparse_) {
    sa_.matvec_transposed(x, out);
  } else {
    a_.matvec_transposed(x, out);
  }
}

void ConjugateGradientSolver::apply_direction() {
  if (sparse_) {
    // Exact arithmetic through the sharded SpMV datapath: the chain
    // fallback under ExactContext is the plain left fold, bit-identical
    // to matvec for any shard/thread count.
    sa_.spmv_into(exact_, ws_, p_, ap_);
  } else {
    a_.matvec(p_, ap_);
  }
}

void ConjugateGradientSolver::restart_direction() {
  // r = b - A x (exact restart; recurrences drift under approximation).
  apply_exact(x_, ap_);
  for (std::size_t i = 0; i < r_.size(); ++i) r_[i] = b_[i] - ap_[i];
  std::copy(r_.begin(), r_.end(), p_.begin());
}

double ConjugateGradientSolver::objective_at(std::span<const double> x) const {
  apply_exact(x, obj_ax_);
  double s = 0.0;
  for (std::size_t i = 0; i < obj_ax_.size(); ++i) {
    const double r = obj_ax_[i] - b_[i];
    s += r * r;
  }
  return 0.5 * s;
}

double ConjugateGradientSolver::residual_norm() const {
  return std::sqrt(2.0 * objective_at(x_));
}

double ConjugateGradientSolver::chain_dot(arith::ArithContext& ctx,
                                          std::span<const double> a,
                                          std::span<const double> b) {
  if (bound_ctx_ != &ctx) {
    chain_.bind(ctx);
    bound_ctx_ = &ctx;
  }
  // Zero-seeded dot chain: fused when eligible, ctx.dot otherwise —
  // bit- and ledger-identical either way (the BatchWorkspace contract).
  chain_.begin(0.0);
  chain_.dot(a, b);
  return chain_.finish();
}

IterationStats ConjugateGradientSolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  std::copy(x_.begin(), x_.end(), x_prev_.begin());
  const double f_prev = current_objective_;

  // Exact monitor gradient A^T(Ax - b) == A(Ax - b) for symmetric A.
  apply_exact(x_prev_, true_residual_);
  for (std::size_t i = 0; i < n; ++i) true_residual_[i] -= b_[i];
  apply_transposed_exact(true_residual_, monitor_grad_);

  // One CG step with context-routed reductions and updates.
  apply_direction();
  const double rr = chain_dot(ctx, r_, r_);
  const double pap = chain_dot(ctx, p_, ap_);
  if (pap <= 0.0 || rr == 0.0) {
    // Approximation broke conjugacy (or we are converged): restart from the
    // exact residual to keep the method well-defined.
    restart_direction();
  } else {
    const double alpha = rr / pap;
    la::axpy(ctx, alpha, p_, x_);
    la::axpy(ctx, -alpha, ap_, r_);
    const double rr_new = chain_dot(ctx, r_, r_);
    const double beta = rr_new / rr;
    // p <- r + beta p, batched (the scale is exact, the add routed).
    for (std::size_t i = 0; i < n; ++i) scaled_p_[i] = beta * p_[i];
    ctx.add_vec(r_, scaled_p_, p_);
  }

  current_objective_ = objective_at(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev_);
  stats.state_norm = la::norm2(x_);
  for (std::size_t i = 0; i < n; ++i) step_[i] = x_[i] - x_prev_[i];
  stats.grad_dot_step = la::dot(monitor_grad_, step_);
  stats.grad_norm = la::norm2(monitor_grad_);
  stats.converged = residual_norm() < config_.tolerance;
  return stats;
}

std::vector<double> ConjugateGradientSolver::state() const {
  // Layout: [x | r | p].
  std::vector<double> snapshot = x_;
  snapshot.insert(snapshot.end(), r_.begin(), r_.end());
  snapshot.insert(snapshot.end(), p_.begin(), p_.end());
  return snapshot;
}

void ConjugateGradientSolver::restore(const std::vector<double>& snapshot) {
  const std::size_t n = x_.size();
  if (snapshot.size() != 3 * n) {
    throw std::invalid_argument(
        "ConjugateGradientSolver::restore: bad snapshot size");
  }
  auto it = snapshot.begin();
  std::copy(it, it + static_cast<long>(n), x_.begin());
  it += static_cast<long>(n);
  std::copy(it, it + static_cast<long>(n), r_.begin());
  it += static_cast<long>(n);
  std::copy(it, it + static_cast<long>(n), p_.begin());
  current_objective_ = objective_at(x_);
}

}  // namespace approxit::opt
