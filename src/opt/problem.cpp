#include "opt/problem.h"

#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

void Problem::hessian(std::span<const double>, la::Matrix&) const {
  throw std::logic_error("Problem::hessian: not implemented for " + name());
}

// ---------------------------------------------------------------------------
// QuadraticProblem
// ---------------------------------------------------------------------------

QuadraticProblem::QuadraticProblem(la::Matrix a, std::vector<double> b)
    : a_(std::move(a)), b_(std::move(b)) {
  if (a_.rows() != a_.cols() || a_.rows() != b_.size()) {
    throw std::invalid_argument("QuadraticProblem: dimension mismatch");
  }
}

double QuadraticProblem::value(std::span<const double> x) const {
  const std::vector<double> ax = a_.matvec(x);
  return 0.5 * la::dot(ax, x) - la::dot(b_, x);
}

void QuadraticProblem::gradient(std::span<const double> x,
                                std::span<double> out,
                                arith::ArithContext& ctx) const {
  if (x.size() != b_.size() || out.size() != b_.size()) {
    throw std::invalid_argument("QuadraticProblem::gradient: size mismatch");
  }
  for (std::size_t r = 0; r < a_.rows(); ++r) {
    // Row reduction through the (possibly approximate) context; the final
    // "- b_r" is part of the same resilient region.
    out[r] = ctx.sub(ctx.dot(a_.row(r), x), b_[r]);
  }
}

void QuadraticProblem::hessian(std::span<const double>, la::Matrix& out) const {
  out = a_;
}

// ---------------------------------------------------------------------------
// LeastSquaresProblem
// ---------------------------------------------------------------------------

LeastSquaresProblem::LeastSquaresProblem(la::Matrix a, std::vector<double> y)
    : a_(std::move(a)), y_(std::move(y)) {
  if (a_.rows() != y_.size()) {
    throw std::invalid_argument("LeastSquaresProblem: dimension mismatch");
  }
  if (a_.rows() == 0 || a_.cols() == 0) {
    throw std::invalid_argument("LeastSquaresProblem: empty design matrix");
  }
}

double LeastSquaresProblem::value(std::span<const double> x) const {
  const std::vector<double> r = residual(x);
  return 0.5 * la::norm2_squared(r) / static_cast<double>(a_.rows());
}

std::vector<double> LeastSquaresProblem::residual(
    std::span<const double> x) const {
  std::vector<double> r = a_.matvec(x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= y_[i];
  return r;
}

void LeastSquaresProblem::gradient(std::span<const double> x,
                                   std::span<double> out,
                                   arith::ArithContext& ctx) const {
  if (x.size() != a_.cols() || out.size() != a_.cols()) {
    throw std::invalid_argument(
        "LeastSquaresProblem::gradient: size mismatch");
  }
  const std::size_t m = a_.rows();
  const double inv_m = 1.0 / static_cast<double>(m);
  // Residuals: row dot products through the context (direction error source).
  std::vector<double> r(m);
  for (std::size_t i = 0; i < m; ++i) {
    r[i] = ctx.sub(ctx.dot(a_.row(i), x), y_[i]);
  }
  // out = (1/m) A^T r, batched column accumulations through the context.
  std::vector<double> terms(m);
  for (std::size_t j = 0; j < a_.cols(); ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      terms[i] = a_(i, j) * r[i];
    }
    out[j] = ctx.accumulate(terms) * inv_m;
  }
}

void LeastSquaresProblem::hessian(std::span<const double>,
                                  la::Matrix& out) const {
  const std::size_t n = a_.cols();
  const double inv_m = 1.0 / static_cast<double>(a_.rows());
  out = la::Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    for (std::size_t r = 0; r < n; ++r) {
      const double air = a_(i, r);
      if (air == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        out(r, c) += air * a_(i, c) * inv_m;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RosenbrockProblem
// ---------------------------------------------------------------------------

RosenbrockProblem::RosenbrockProblem(std::size_t n) : n_(n) {
  if (n_ < 2) {
    throw std::invalid_argument("RosenbrockProblem: dimension must be >= 2");
  }
}

double RosenbrockProblem::value(std::span<const double> x) const {
  double f = 0.0;
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    const double t1 = x[i + 1] - x[i] * x[i];
    const double t2 = 1.0 - x[i];
    f += 100.0 * t1 * t1 + t2 * t2;
  }
  return f;
}

void RosenbrockProblem::gradient(std::span<const double> x,
                                 std::span<double> out,
                                 arith::ArithContext& ctx) const {
  if (x.size() != n_ || out.size() != n_) {
    throw std::invalid_argument("RosenbrockProblem::gradient: size mismatch");
  }
  for (std::size_t i = 0; i < n_; ++i) out[i] = 0.0;
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    const double t1 = x[i + 1] - x[i] * x[i];
    // d/dx_i and d/dx_{i+1} contributions combined through the context.
    out[i] = ctx.add(out[i], -400.0 * x[i] * t1 - 2.0 * (1.0 - x[i]));
    out[i + 1] = ctx.add(out[i + 1], 200.0 * t1);
  }
}

}  // namespace approxit::opt
