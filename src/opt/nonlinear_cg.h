// Nonlinear conjugate gradient (Fletcher-Reeves / Polak-Ribiere+) with
// backtracking line search, exposed as an IterativeMethod.
//
// Gradient evaluations route through the ArithContext (direction error);
// the beta recurrence and the position update also run through the context
// (update error); line-search objective evaluations are exact monitor-side
// work, like every convergence check in this library.
#pragma once

#include <vector>

#include "opt/iterative_method.h"
#include "opt/line_search.h"
#include "opt/problem.h"

namespace approxit::opt {

/// Beta formula selection.
enum class CgBeta { kFletcherReeves, kPolakRibierePlus };

/// Returns "fletcher_reeves" or "polak_ribiere+".
std::string to_string(CgBeta beta);

/// Configuration for NonlinearCgSolver.
struct NonlinearCgConfig {
  CgBeta beta = CgBeta::kPolakRibierePlus;
  LineSearchOptions line_search{};
  /// Restart to steepest descent every `restart_period` iterations
  /// (0 = dimension-based default n).
  std::size_t restart_period = 0;
  std::size_t max_iter = 1000;
  double tolerance = 1e-12;  ///< Converged when f stops decreasing by this.
};

/// Nonlinear CG over a Problem.
class NonlinearCgSolver final : public IterativeMethod {
 public:
  NonlinearCgSolver(const Problem& problem, std::vector<double> x0,
                    NonlinearCgConfig config = {});

  std::string name() const override;
  std::size_t dimension() const override { return x_.size(); }
  void reset() override;
  IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return config_.max_iter; }
  double tolerance() const override { return config_.tolerance; }

  /// Current iterate.
  std::span<const double> x() const { return x_; }

  /// Iterations since the last steepest-descent restart.
  std::size_t iterations_since_restart() const { return since_restart_; }

 private:
  void restart_direction(arith::ArithContext& ctx);

  const Problem& problem_;
  std::vector<double> x0_;
  NonlinearCgConfig config_;
  std::size_t restart_period_;

  std::vector<double> x_;
  std::vector<double> grad_;       ///< g_{k} (context-computed)
  std::vector<double> direction_;  ///< d_{k}
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
  std::size_t since_restart_ = 0;
};

}  // namespace approxit::opt
