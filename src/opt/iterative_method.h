// The iterative-method abstraction ApproxIt orchestrates.
//
// An IterativeMethod advances one iteration at a time through a supplied
// ArithContext (the QCS ALU in approximate runs, ExactContext in reference
// runs). Everything the online reconfiguration strategies need — objective
// values, step/state norms, the gradient/step dot product, the manifold
// steepness — is reported per iteration in IterationStats; these monitor
// quantities are computed exactly (they belong to the framework's error-
// sensitive part).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "arith/context.h"

namespace approxit::opt {

/// Per-iteration monitor quantities consumed by the reconfiguration
/// strategies (Section 4 of the paper).
struct IterationStats {
  std::size_t iteration = 0;      ///< 1-based index of the completed step.
  double objective_before = 0.0;  ///< f(x^{k-1}).
  double objective_after = 0.0;   ///< f(x^k).
  double step_norm = 0.0;         ///< ||x^k - x^{k-1}||_2 ("update" size).
  double state_norm = 0.0;        ///< ||x^k||_2.
  double grad_dot_step = 0.0;     ///< grad f(x^{k-1})^T (x^k - x^{k-1}).
  double grad_norm = 0.0;         ///< ||grad f(x^{k-1})||_2 (steepness).
  bool converged = false;         ///< Method's own convergence test passed.

  /// Objective improvement f(x^{k-1}) - f(x^k); positive means progress.
  double improvement() const { return objective_before - objective_after; }

  /// True when every monitor quantity is finite. Transient hardware
  /// faults (arith/fault_injector.h) can drive NaN/Inf into the iterate;
  /// strategies and the convergence watchdog must not base decisions on
  /// poisoned statistics (NaN comparisons are silently false).
  bool finite() const {
    return std::isfinite(objective_before) &&
           std::isfinite(objective_after) && std::isfinite(step_norm) &&
           std::isfinite(state_norm) && std::isfinite(grad_dot_step) &&
           std::isfinite(grad_norm);
  }
};

/// Interface implemented by every iterative method (generic solvers in
/// opt/, applications in apps/).
///
/// Contract:
///  - reset() returns to the initial iterate (deterministic).
///  - iterate() performs exactly one iteration; resilient-region arithmetic
///    goes through `ctx`; monitor quantities in the returned stats are
///    exact.
///  - state()/restore() snapshot and roll back the full mutable state
///    (the function scheme's one-iteration rollback).
class IterativeMethod {
 public:
  virtual ~IterativeMethod() = default;

  /// Human-readable method name ("gradient_descent", "gmm_em", ...).
  virtual std::string name() const = 0;

  /// Number of optimization variables (flattened state size may be larger).
  virtual std::size_t dimension() const = 0;

  /// Restores the initial iterate and clears the iteration counter.
  virtual void reset() = 0;

  /// Runs one iteration through `ctx` and reports monitor statistics.
  virtual IterationStats iterate(arith::ArithContext& ctx) = 0;

  /// Exact objective value at the current state.
  virtual double objective() const = 0;

  /// Flattened snapshot of the full mutable state (for rollback).
  virtual std::vector<double> state() const = 0;

  /// Restores a snapshot taken by state(). Must also rewind the objective
  /// bookkeeping so that the next iterate() reports consistent stats.
  virtual void restore(const std::vector<double>& snapshot) = 0;

  /// Iteration budget (the paper's MAX_ITER).
  virtual std::size_t max_iterations() const = 0;

  /// Convergence threshold (the paper's Convergence column).
  virtual double tolerance() const = 0;
};

}  // namespace approxit::opt
