#include "opt/nonlinear_cg.h"

#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

std::string to_string(CgBeta beta) {
  switch (beta) {
    case CgBeta::kFletcherReeves:
      return "fletcher_reeves";
    case CgBeta::kPolakRibierePlus:
      return "polak_ribiere+";
  }
  return "?";
}

NonlinearCgSolver::NonlinearCgSolver(const Problem& problem,
                                     std::vector<double> x0,
                                     NonlinearCgConfig config)
    : problem_(problem), x0_(std::move(x0)), config_(config) {
  if (x0_.size() != problem_.dimension()) {
    throw std::invalid_argument("NonlinearCgSolver: x0 dimension mismatch");
  }
  restart_period_ =
      config_.restart_period > 0 ? config_.restart_period : x0_.size();
  reset();
}

std::string NonlinearCgSolver::name() const {
  return "nonlinear_cg(" + to_string(config_.beta) + ")";
}

void NonlinearCgSolver::restart_direction(arith::ArithContext& ctx) {
  grad_.resize(x_.size());
  problem_.gradient(x_, grad_, ctx);
  direction_.assign(grad_.begin(), grad_.end());
  for (double& d : direction_) d = -d;
  since_restart_ = 0;
}

void NonlinearCgSolver::reset() {
  x_ = x0_;
  current_objective_ = problem_.value(x_);
  iteration_ = 0;
  arith::ExactContext exact;
  restart_direction(exact);
}

IterationStats NonlinearCgSolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  const std::vector<double> x_prev = x_;
  const double f_prev = current_objective_;

  // Exact monitor gradient at x^{k-1}.
  std::vector<double> monitor_grad(n);
  arith::ExactContext exact;
  problem_.gradient(x_prev, monitor_grad, exact);

  // Safeguard: if the (possibly approximation-corrupted) direction is not a
  // descent direction w.r.t. the exact gradient, restart from steepest
  // descent before stepping.
  if (la::dot(monitor_grad, direction_) >= 0.0) {
    restart_direction(ctx);
  }

  // Line search along d_k (exact objective evaluations).
  const LineSearchResult search = backtracking_line_search(
      problem_, x_, direction_, grad_, config_.line_search);
  const double step = search.success ? search.step : 1e-12;

  // Position update through the context (update error source).
  la::axpy(ctx, step, direction_, x_);

  // New gradient through the context (direction error source).
  std::vector<double> grad_new(n);
  problem_.gradient(x_, grad_new, ctx);

  // Beta recurrence; the reductions run through the context too.
  double beta = 0.0;
  const double denom = ctx.dot(grad_, grad_);
  if (denom > 0.0) {
    if (config_.beta == CgBeta::kFletcherReeves) {
      beta = ctx.dot(grad_new, grad_new) / denom;
    } else {
      // PR+: max(0, g_new^T (g_new - g_old) / g_old^T g_old).
      std::vector<double> diff(n);
      ctx.sub_vec(grad_new, grad_, diff);
      beta = std::max(0.0, ctx.dot(grad_new, diff) / denom);
    }
  }

  ++since_restart_;
  if (since_restart_ >= restart_period_ || !search.success) {
    beta = 0.0;
    since_restart_ = 0;
  }
  // d <- beta d - g_new, batched elementwise.
  std::vector<double> scaled_direction(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled_direction[i] = beta * direction_[i];
  }
  ctx.sub_vec(scaled_direction, grad_new, direction_);
  grad_ = std::move(grad_new);

  current_objective_ = problem_.value(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev);
  stats.state_norm = la::norm2(x_);
  const std::vector<double> step_vec = la::subtract(x_, x_prev);
  stats.grad_dot_step = la::dot(monitor_grad, step_vec);
  stats.grad_norm = la::norm2(monitor_grad);
  stats.converged = stats.improvement() < config_.tolerance;
  return stats;
}

std::vector<double> NonlinearCgSolver::state() const {
  // Layout: [x | grad | direction].
  std::vector<double> snapshot = x_;
  snapshot.insert(snapshot.end(), grad_.begin(), grad_.end());
  snapshot.insert(snapshot.end(), direction_.begin(), direction_.end());
  return snapshot;
}

void NonlinearCgSolver::restore(const std::vector<double>& snapshot) {
  const std::size_t n = x_.size();
  if (snapshot.size() != 3 * n) {
    throw std::invalid_argument("NonlinearCgSolver::restore: bad snapshot");
  }
  auto it = snapshot.begin();
  x_.assign(it, it + static_cast<long>(n));
  it += static_cast<long>(n);
  grad_.assign(it, it + static_cast<long>(n));
  it += static_cast<long>(n);
  direction_.assign(it, it + static_cast<long>(n));
  current_objective_ = problem_.value(x_);
}

}  // namespace approxit::opt
