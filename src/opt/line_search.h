// Backtracking (Armijo) line search, shared by the nonlinear solvers.
#pragma once

#include <cstddef>
#include <span>

#include "opt/problem.h"

namespace approxit::opt {

/// Options for backtracking_line_search.
struct LineSearchOptions {
  double initial_step = 1.0;
  double shrink = 0.5;        ///< Step multiplier per backtrack.
  double sufficient_decrease = 1e-4;  ///< Armijo c1.
  std::size_t max_backtracks = 40;
};

/// Result of a line search.
struct LineSearchResult {
  double step = 0.0;        ///< Accepted step size (0 when failed).
  double objective = 0.0;   ///< f(x + step * d).
  std::size_t evaluations = 0;  ///< Objective evaluations performed.
  bool success = false;     ///< Armijo condition met.
};

/// Finds a step along `direction` from `x` satisfying the Armijo condition
///   f(x + a d) <= f(x) + c1 * a * grad^T d.
/// `grad` is the gradient at x; `direction` should be a descent direction
/// (grad^T d < 0) — otherwise the search fails immediately.
/// All evaluations are exact (line search is monitor-side logic).
LineSearchResult backtracking_line_search(
    const Problem& problem, std::span<const double> x,
    std::span<const double> direction, std::span<const double> grad,
    const LineSearchOptions& options = {});

}  // namespace approxit::opt
