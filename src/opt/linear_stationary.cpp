#include "opt/linear_stationary.h"

#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::opt {

std::string to_string(StationaryScheme scheme) {
  switch (scheme) {
    case StationaryScheme::kJacobi:
      return "jacobi";
    case StationaryScheme::kGaussSeidel:
      return "gauss_seidel";
    case StationaryScheme::kSor:
      return "sor";
  }
  return "?";
}

StationarySolver::StationarySolver(la::Matrix a, std::vector<double> b,
                                   std::vector<double> x0,
                                   StationaryConfig config)
    : a_(std::move(a)),
      b_(std::move(b)),
      x0_(std::move(x0)),
      config_(config) {
  if (a_.rows() != a_.cols() || a_.rows() != b_.size() ||
      b_.size() != x0_.size()) {
    throw std::invalid_argument("StationarySolver: dimension mismatch");
  }
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    if (a_(i, i) == 0.0) {
      throw std::invalid_argument("StationarySolver: zero diagonal entry");
    }
  }
  if (config_.scheme == StationaryScheme::kSor &&
      (config_.relaxation <= 0.0 || config_.relaxation >= 2.0)) {
    throw std::invalid_argument("StationarySolver: omega must be in (0, 2)");
  }
  reset();
}

void StationarySolver::reset() {
  x_ = x0_;
  current_objective_ = objective_at(x_);
  iteration_ = 0;
}

double StationarySolver::objective_at(std::span<const double> x) const {
  const std::vector<double> ax = a_.matvec(x);
  double s = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = ax[i] - b_[i];
    s += r * r;
  }
  return 0.5 * s;
}

double StationarySolver::residual_norm() const {
  return std::sqrt(2.0 * objective_at(x_));
}

IterationStats StationarySolver::iterate(arith::ArithContext& ctx) {
  const std::size_t n = x_.size();
  const std::vector<double> x_prev = x_;
  const double f_prev = current_objective_;

  // Exact monitor gradient A^T (A x - b) at x^{k-1}.
  std::vector<double> residual = a_.matvec(x_prev);
  for (std::size_t i = 0; i < n; ++i) residual[i] -= b_[i];
  const std::vector<double> monitor_grad = a_.matvec_transposed(residual);

  const double omega = config_.scheme == StationaryScheme::kSor
                           ? config_.relaxation
                           : 1.0;
  switch (config_.scheme) {
    case StationaryScheme::kJacobi: {
      std::vector<double> next(n, 0.0);
      std::vector<double> terms(n > 0 ? n - 1 : 0);
      for (std::size_t i = 0; i < n; ++i) {
        // sum_{j != i} a_ij x_j through the context, as one batched
        // reduction per row (same fold order as the scalar loop).
        std::size_t t = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          terms[t++] = a_(i, j) * x_[j];
        }
        const double acc = ctx.accumulate(terms);
        next[i] = (b_[i] - acc) / a_(i, i);
      }
      x_ = std::move(next);
      break;
    }
    case StationaryScheme::kGaussSeidel:
    case StationaryScheme::kSor: {
      std::vector<double> terms(n > 0 ? n - 1 : 0);
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t t = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          terms[t++] = a_(i, j) * x_[j];  // uses updated x_j for j < i
        }
        const double acc = ctx.accumulate(terms);
        const double gs = (b_[i] - acc) / a_(i, i);
        // Relaxed update through the context: x_i + omega (gs - x_i).
        x_[i] = ctx.add(x_[i], omega * ctx.sub(gs, x_[i]));
      }
      break;
    }
  }

  current_objective_ = objective_at(x_);
  ++iteration_;

  IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(x_, x_prev);
  stats.state_norm = la::norm2(x_);
  const std::vector<double> step = la::subtract(x_, x_prev);
  stats.grad_dot_step = la::dot(monitor_grad, step);
  stats.grad_norm = la::norm2(monitor_grad);
  stats.converged = residual_norm() < config_.tolerance;
  return stats;
}

void StationarySolver::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != x_.size()) {
    throw std::invalid_argument(
        "StationarySolver::restore: bad snapshot size");
  }
  x_ = snapshot;
  current_objective_ = objective_at(x_);
}

}  // namespace approxit::opt
