// Binary logistic regression as a Problem: smooth convex objective with a
// context-routed gradient and an exact Hessian (Newton = IRLS).
#pragma once

#include <vector>

#include "opt/problem.h"

namespace approxit::opt {

/// Mean cross-entropy loss of a linear logit model with optional L2
/// regularization:
///   f(w) = (1/m) sum_i [ log(1 + exp(x_i^T w)) - y_i x_i^T w ]
///          + (lambda/2) ||w||^2,  y_i in {0, 1}.
class LogisticProblem final : public Problem {
 public:
  /// `x` is the m x n feature matrix, `y` the 0/1 labels.
  LogisticProblem(la::Matrix x, std::vector<int> y, double l2 = 0.0);

  std::string name() const override { return "logistic"; }
  std::size_t dimension() const override { return x_.cols(); }
  double value(std::span<const double> w) const override;
  void gradient(std::span<const double> w, std::span<double> out,
                arith::ArithContext& ctx) const override;
  bool has_hessian() const override { return true; }
  void hessian(std::span<const double> w, la::Matrix& out) const override;

  /// Predicted probabilities sigma(x_i^T w) (exact).
  std::vector<double> probabilities(std::span<const double> w) const;

  /// Classification accuracy of the 0.5-threshold classifier (exact).
  double accuracy(std::span<const double> w) const;

  const la::Matrix& features() const { return x_; }
  std::span<const int> labels() const { return y_; }

 private:
  la::Matrix x_;
  std::vector<int> y_;
  double l2_;
};

/// Numerically stable sigmoid.
double sigmoid(double z);

/// Numerically stable log(1 + exp(z)).
double log1p_exp(double z);

}  // namespace approxit::opt
