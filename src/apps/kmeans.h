// K-means clustering (Lloyd's algorithm) as an IterativeMethod — the case
// study of Chippa et al.'s PID-controlled DES framework that Section 2.3
// uses to motivate ApproxIt.
//
// Resilient region: the centroid accumulations of the update step. The
// assignment step and the objective (within-cluster SSE) are exact. The
// mean-centroid-distance (MCD) quality sensor of [3] is exposed for the
// PID baseline strategy.
#pragma once

#include <vector>

#include "opt/iterative_method.h"
#include "workloads/datasets.h"

namespace approxit::apps {

/// Options for KMeans.
struct KMeansOptions {
  std::size_t max_iter = 0;  ///< 0 takes the dataset's.
  double tolerance = 0.0;    ///< 0 takes the dataset's.
};

/// Lloyd's algorithm over a GmmDataset (shared with the GMM benchmarks).
class KMeans final : public opt::IterativeMethod {
 public:
  explicit KMeans(const workloads::GmmDataset& dataset,
                  KMeansOptions options = {});

  std::string name() const override { return "kmeans"; }
  std::size_t dimension() const override;
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return centroids_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return max_iter_; }
  double tolerance() const override { return tolerance_; }

  /// Current centroids (row-major k x dim).
  std::span<const double> centroids() const { return centroids_; }

  /// Hard assignment of every sample to its nearest centroid (exact).
  std::vector<int> assignments() const;

  /// Mean centroid distance — the algorithm-level quality sensor of [3].
  double mean_centroid_distance() const;

 private:
  void initialize_centroids();
  double sse_at(std::span<const double> centroids) const;

  const workloads::GmmDataset& dataset_;
  std::size_t max_iter_;
  double tolerance_;

  std::vector<double> centroids_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace approxit::apps
