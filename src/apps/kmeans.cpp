#include "apps/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::apps {

KMeans::KMeans(const workloads::GmmDataset& dataset, KMeansOptions options)
    : dataset_(dataset),
      max_iter_(options.max_iter > 0 ? options.max_iter : dataset.max_iter),
      tolerance_(options.tolerance > 0.0 ? options.tolerance
                                         : dataset.convergence_tol) {
  if (dataset_.size() == 0 || dataset_.dim == 0 ||
      dataset_.num_clusters == 0) {
    throw std::invalid_argument("KMeans: empty dataset");
  }
  reset();
}

std::size_t KMeans::dimension() const {
  return dataset_.num_clusters * dataset_.dim;
}

void KMeans::initialize_centroids() {
  // Deterministic: same bounding-box diagonal placement as GmmEm, so both
  // clustering applications start identically on a given dataset.
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], dataset_.points[i * d + j]);
      hi[j] = std::max(hi[j], dataset_.points[i * d + j]);
    }
  }
  centroids_.assign(k * d, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double t = (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    for (std::size_t j = 0; j < d; ++j) {
      centroids_[c * d + j] = lo[j] + t * (hi[j] - lo[j]);
    }
  }
}

void KMeans::reset() {
  initialize_centroids();
  current_objective_ = sse_at(centroids_);
  iteration_ = 0;
}

std::vector<int> KMeans::assignments() const {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  std::vector<int> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double s = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff =
            dataset_.points[i * d + j] - centroids_[c * d + j];
        s += diff * diff;
      }
      if (s < best) {
        best = s;
        best_c = static_cast<int>(c);
      }
    }
    out[i] = best_c;
  }
  return out;
}

double KMeans::sse_at(std::span<const double> centroids) const {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      double s = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = dataset_.points[i * d + j] - centroids[c * d + j];
        s += diff * diff;
      }
      best = std::min(best, s);
    }
    total += best;
  }
  return total / static_cast<double>(n);
}

double KMeans::mean_centroid_distance() const {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::vector<int> assign = assignments();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(assign[i]);
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = dataset_.points[i * d + j] - centroids_[c * d + j];
      s += diff * diff;
    }
    total += std::sqrt(s);
  }
  return total / static_cast<double>(n);
}

opt::IterationStats KMeans::iterate(arith::ArithContext& ctx) {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  const std::vector<double> prev = centroids_;
  const double f_prev = current_objective_;

  // Assignment step: exact (error-sensitive control flow).
  const std::vector<int> assign = assignments();

  // Update step: per-cluster accumulations through the context. Member
  // values are gathered into contiguous buffers (in sample order, so each
  // reduction chain folds exactly as the scalar loop did) and reduced as
  // one batch per chain.
  std::vector<std::size_t> members;
  std::vector<double> gathered;
  members.reserve(n);
  gathered.reserve(n);
  for (std::size_t c = 0; c < k; ++c) {
    members.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(assign[i]) == c) members.push_back(i);
    }
    gathered.assign(members.size(), 1.0);
    const double count = ctx.accumulate(gathered);
    if (count <= 0.5) continue;  // empty cluster: keep previous centroid
    for (std::size_t j = 0; j < d; ++j) {
      gathered.clear();
      for (std::size_t i : members) {
        gathered.push_back(dataset_.points[i * d + j]);
      }
      centroids_[c * d + j] = ctx.accumulate(gathered) / count;
    }
  }

  current_objective_ = sse_at(centroids_);
  ++iteration_;

  opt::IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(centroids_, prev);
  stats.state_norm = la::norm2(centroids_);
  // Monitor gradient of the SSE objective w.r.t. centroids at the previous
  // position: (2/n) * count_c * (mu_c - sample_mean_c); computed exactly.
  std::vector<double> grad(k * d, 0.0);
  {
    std::vector<double> counts(k, 0.0);
    std::vector<double> sums(k * d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      counts[c] += 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        sums[c * d + j] += dataset_.points[i * d + j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < d; ++j) {
        grad[c * d + j] =
            2.0 * (counts[c] * prev[c * d + j] - sums[c * d + j]) /
            static_cast<double>(n);
      }
    }
  }
  const std::vector<double> step = la::subtract(centroids_, prev);
  stats.grad_dot_step = la::dot(grad, step);
  stats.grad_norm = la::norm2(grad);
  // Signed convergence check (see gmm.cpp): false stops under noise are
  // intentional single-mode behaviour.
  stats.converged =
      stats.improvement() < tolerance_ || stats.step_norm == 0.0;
  return stats;
}

void KMeans::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != centroids_.size()) {
    throw std::invalid_argument("KMeans::restore: bad snapshot size");
  }
  centroids_ = snapshot;
  current_objective_ = sse_at(centroids_);
}

}  // namespace approxit::apps
