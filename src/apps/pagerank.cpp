#include "apps/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::apps {

arith::QcsConfig pagerank_qcs_config() {
  arith::QcsConfig config;
  // Rank entries are O(1/n); accumulated rank mass is <= 1. A deep-fraction
  // format gives the granularity, and the ladder scales errors from ~25% of
  // a typical rank entry (level1) down to well below it (level4).
  config.format = arith::QFormat{40, 32};
  config.level_approx_bits = {12, 10, 8, 6};
  return config;
}

PageRank::PageRank(const workloads::WebGraph& graph, PageRankOptions options)
    : graph_(graph), options_(options) {
  if (graph_.nodes == 0) {
    throw std::invalid_argument("PageRank: empty graph");
  }
  if (options_.damping <= 0.0 || options_.damping >= 1.0) {
    throw std::invalid_argument("PageRank: damping must be in (0, 1)");
  }
  reset();
}

void PageRank::reset() {
  ranks_.assign(graph_.nodes, 1.0 / static_cast<double>(graph_.nodes));
  current_objective_ = residual_l1(ranks_);
  iteration_ = 0;
}

std::vector<double> PageRank::exact_step(
    const std::vector<double>& x) const {
  const std::size_t n = graph_.nodes;
  const double teleport = (1.0 - options_.damping) / static_cast<double>(n);
  std::vector<double> next(n, 0.0);
  double dangling_mass = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    const auto& links = graph_.out_links[u];
    if (links.empty()) {
      dangling_mass += x[u];
      continue;
    }
    const double share = x[u] / static_cast<double>(links.size());
    for (std::uint32_t v : links) {
      next[v] += share;
    }
  }
  const double dangling_share =
      options_.damping * dangling_mass / static_cast<double>(n);
  for (std::size_t v = 0; v < n; ++v) {
    next[v] = options_.damping * next[v] + teleport + dangling_share;
  }
  return next;
}

double PageRank::residual_l1(const std::vector<double>& x) const {
  const std::vector<double> next = exact_step(x);
  double l1 = 0.0;
  for (std::size_t v = 0; v < graph_.nodes; ++v) {
    l1 += std::abs(next[v] - x[v]);
  }
  return l1;
}

opt::IterationStats PageRank::iterate(arith::ArithContext& ctx) {
  const std::size_t n = graph_.nodes;
  const std::vector<double> prev = ranks_;
  const double f_prev = current_objective_;

  // Monitor direction: the exact one-step residual at the previous iterate.
  const std::vector<double> exact_next = exact_step(prev);
  std::vector<double> residual(n);
  for (std::size_t v = 0; v < n; ++v) residual[v] = exact_next[v] - prev[v];

  // Resilient kernel: the per-node rank accumulation runs through the
  // context (one add per edge, plus the dangling-mass accumulation).
  const double teleport = (1.0 - options_.damping) / static_cast<double>(n);
  std::vector<double> next(n, 0.0);
  std::vector<double> dangling_ranks;
  for (std::size_t u = 0; u < n; ++u) {
    const auto& links = graph_.out_links[u];
    if (links.empty()) {
      dangling_ranks.push_back(ranks_[u]);
      continue;
    }
    const double share = ranks_[u] / static_cast<double>(links.size());
    // The edge scatter stays per-op: each target's chain interleaves with
    // the others in edge-visit order, so there is no contiguous batch.
    for (std::uint32_t v : links) {
      next[v] = ctx.add(next[v], share);
    }
  }
  // The dangling-mass reduction is contiguous in node order: one batch.
  const double dangling_mass = ctx.accumulate(dangling_ranks);
  const double dangling_share =
      options_.damping * dangling_mass / static_cast<double>(n);
  // Scaling and teleport assembly are error-sensitive: exact.
  for (std::size_t v = 0; v < n; ++v) {
    next[v] = options_.damping * next[v] + teleport + dangling_share;
  }
  ranks_ = std::move(next);

  current_objective_ = residual_l1(ranks_);
  ++iteration_;

  opt::IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(ranks_, prev);
  stats.state_norm = la::norm2(ranks_);
  // Power iteration moves along the residual: the "gradient" of the L1
  // residual objective is (approximately) its negation.
  const std::vector<double> step = la::subtract(ranks_, prev);
  std::vector<double> neg_residual = residual;
  for (double& r : neg_residual) r = -r;
  stats.grad_dot_step = la::dot(neg_residual, step);
  stats.grad_norm = la::norm2(residual);
  stats.converged =
      stats.improvement() < tolerance() || stats.step_norm == 0.0;
  return stats;
}

void PageRank::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != ranks_.size()) {
    throw std::invalid_argument("PageRank::restore: bad snapshot size");
  }
  ranks_ = snapshot;
  current_objective_ = residual_l1(ranks_);
}

std::vector<std::size_t> PageRank::top_pages(std::size_t k) const {
  std::vector<std::size_t> order(graph_.nodes);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return ranks_[a] > ranks_[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

double rank_l1_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rank_l1_distance: size mismatch");
  }
  double l1 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) l1 += std::abs(a[i] - b[i]);
  return l1;
}

std::size_t top_k_overlap(const std::vector<std::size_t>& a,
                          const std::vector<std::size_t>& b) {
  std::size_t overlap = 0;
  for (std::size_t page : a) {
    if (std::find(b.begin(), b.end(), page) != b.end()) ++overlap;
  }
  return overlap;
}

}  // namespace approxit::apps
