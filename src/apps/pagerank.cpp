#include "apps/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::apps {

arith::QcsConfig pagerank_qcs_config() {
  arith::QcsConfig config;
  // Rank entries are O(1/n); accumulated rank mass is <= 1. A deep-fraction
  // format gives the granularity, and the ladder scales errors from ~25% of
  // a typical rank entry (level1) down to well below it (level4).
  config.format = arith::QFormat{40, 32};
  config.level_approx_bits = {12, 10, 8, 6};
  return config;
}

arith::QcsConfig pagerank_qcs_config(std::size_t nodes) {
  unsigned log2n = 0;
  while ((std::size_t{1} << log2n) < nodes && log2n < 40) ++log2n;
  // frac tracks log2(n) so a typical entry 1/n keeps ~26 fractional bits;
  // total stays <= 52 (the AVX2 conversion ceiling) with 2^4 of integer
  // headroom over the unit rank mass.
  const unsigned frac = std::min(47u, 26u + log2n);
  // Per-add error scale is 2^(bits - frac - 1); bits = frac - log2n - 1
  // pins level1 at ~2^-2 of a typical entry for any n.
  const unsigned b1 =
      frac > log2n + 11 ? std::max(10u, frac - log2n - 1) : 10u;
  arith::QcsConfig config;
  config.format = arith::QFormat{frac + 5, frac};
  config.level_approx_bits = {b1, b1 - 2, b1 - 4, b1 - 6};
  return config;
}

PageRank::PageRank(const workloads::WebGraph& graph, PageRankOptions options)
    : options_(options) {
  if (graph.nodes == 0) {
    throw std::invalid_argument("PageRank: empty graph");
  }
  if (options_.damping <= 0.0 || options_.damping >= 1.0) {
    throw std::invalid_argument("PageRank: damping must be in (0, 1)");
  }
  matrix_ = workloads::pagerank_transition(graph);
  dangling_ = workloads::dangling_nodes(graph);
  ws_.set_options(options_.spmv);
  reset();
}

void PageRank::reset() {
  const std::size_t n = matrix_.rows();
  ranks_.assign(n, 1.0 / static_cast<double>(n));
  prev_.assign(n, 0.0);
  next_.assign(n, 0.0);
  exact_next_.assign(n, 0.0);
  residual_.assign(n, 0.0);
  step_.assign(n, 0.0);
  dangling_gather_.assign(dangling_.size(), 0.0);
  current_objective_ = residual_l1(ranks_);
  iteration_ = 0;
}

void PageRank::exact_step_into(std::span<const double> x,
                               std::span<double> out) {
  const std::size_t n = matrix_.rows();
  const double teleport = (1.0 - options_.damping) / static_cast<double>(n);
  matrix_.matvec(x, out);
  double dangling_mass = 0.0;
  for (const std::uint32_t u : dangling_) dangling_mass += x[u];
  const double dangling_share =
      options_.damping * dangling_mass / static_cast<double>(n);
  for (std::size_t v = 0; v < n; ++v) {
    out[v] = options_.damping * out[v] + teleport + dangling_share;
  }
}

double PageRank::residual_l1(std::span<const double> x) {
  exact_step_into(x, exact_next_);
  double l1 = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    l1 += std::abs(exact_next_[v] - x[v]);
  }
  return l1;
}

opt::IterationStats PageRank::iterate(arith::ArithContext& ctx) {
  const std::size_t n = matrix_.rows();
  std::copy(ranks_.begin(), ranks_.end(), prev_.begin());
  const double f_prev = current_objective_;

  // Monitor direction: the exact one-step residual at the previous iterate.
  exact_step_into(prev_, exact_next_);
  for (std::size_t v = 0; v < n; ++v) {
    residual_[v] = exact_next_[v] - prev_[v];
  }

  // Resilient kernel: the pull-form rank accumulation y = P x runs through
  // the context — one fused chain per node, one adder op per in-link
  // (edges() ops total), sharded per options_.spmv.
  const double teleport = (1.0 - options_.damping) / static_cast<double>(n);
  matrix_.spmv_into(ctx, ws_, ranks_, next_);
  // The dangling-mass reduction is contiguous in node order: one batch.
  for (std::size_t i = 0; i < dangling_.size(); ++i) {
    dangling_gather_[i] = ranks_[dangling_[i]];
  }
  const double dangling_mass = ctx.accumulate(dangling_gather_);
  const double dangling_share =
      options_.damping * dangling_mass / static_cast<double>(n);
  // Scaling and teleport assembly are error-sensitive: exact.
  for (std::size_t v = 0; v < n; ++v) {
    next_[v] = options_.damping * next_[v] + teleport + dangling_share;
  }
  std::swap(ranks_, next_);

  current_objective_ = residual_l1(ranks_);
  ++iteration_;

  opt::IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(ranks_, prev_);
  stats.state_norm = la::norm2(ranks_);
  // Power iteration moves along the residual: the "gradient" of the L1
  // residual objective is (approximately) its negation.
  for (std::size_t v = 0; v < n; ++v) step_[v] = ranks_[v] - prev_[v];
  stats.grad_norm = la::norm2(residual_);
  for (std::size_t v = 0; v < n; ++v) residual_[v] = -residual_[v];
  stats.grad_dot_step = la::dot(residual_, step_);
  stats.converged =
      stats.improvement() < tolerance() || stats.step_norm == 0.0;
  return stats;
}

void PageRank::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != ranks_.size()) {
    throw std::invalid_argument("PageRank::restore: bad snapshot size");
  }
  std::copy(snapshot.begin(), snapshot.end(), ranks_.begin());
  current_objective_ = residual_l1(ranks_);
}

std::vector<std::size_t> PageRank::top_pages(std::size_t k) const {
  std::vector<std::size_t> order(ranks_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return ranks_[a] > ranks_[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

double rank_l1_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rank_l1_distance: size mismatch");
  }
  double l1 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) l1 += std::abs(a[i] - b[i]);
  return l1;
}

std::size_t top_k_overlap(const std::vector<std::size_t>& a,
                          const std::vector<std::size_t>& b) {
  std::size_t overlap = 0;
  for (std::size_t page : a) {
    if (std::find(b.begin(), b.end(), page) != b.end()) ++overlap;
  }
  return overlap;
}

}  // namespace approxit::apps
