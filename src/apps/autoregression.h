// AutoRegression AR(p) fitting by iterative least squares (gradient
// descent), the paper's second benchmark application.
//
// The series is z-normalized ("for scaled data", Section 3.2) and an AR
// design matrix X (rows [z_{t-1} .. z_{t-p}], target z_t) is built once.
//
// Resilience partitioning (Table 2, "Adder Impact: 80% Confidence Space"):
// per-sample gradient contributions whose residual lies inside the central
// 80% of the residual distribution accumulate through the ArithContext;
// tail samples (outliers, which single-handedly steer the fit) accumulate
// exactly. Objective and monitor quantities are exact.
//
// Quality evaluation metric: least-square error with l2 norm — the l2
// distance between the fitted coefficient vector and the Truth run's
// coefficients (Table 1).
#pragma once

#include <vector>

#include "arith/alu.h"
#include "arith/workspace.h"
#include "la/matrix.h"
#include "opt/iterative_method.h"
#include "workloads/datasets.h"

namespace approxit::apps {

/// QCS configuration matched to the AR kernels' dynamic range: a wide
/// Q16.32 datapath (gradient partial sums random-walk into the hundreds
/// while z-normalized samples need ~2^-32 granularity) with a deeper
/// approximate-bits ladder. Selecting the Q format per application is part
/// of the offline characterization stage.
arith::QcsConfig ar_qcs_config();

/// Options for AutoRegression.
struct ArOptions {
  std::size_t order = 0;     ///< AR order p; 0 takes the dataset's (10).
  std::size_t max_iter = 0;  ///< 0 takes the dataset's (1000).
  double tolerance = 0.0;    ///< 0 takes the dataset's (1e-13).
  /// Gradient step; 0 selects 1/L with L = lambda_max(X^T X / m) estimated
  /// by power iteration at construction.
  double step_size = 0.0;
  /// Fraction of samples (by central residual magnitude) treated as
  /// error-resilient (the paper's 80% confidence space).
  double resilient_fraction = 0.8;
};

/// Iterative least-squares AR(p) fit.
class AutoRegression final : public opt::IterativeMethod {
 public:
  /// The dataset must outlive the method.
  explicit AutoRegression(const workloads::TimeSeriesDataset& dataset,
                          ArOptions options = {});

  std::string name() const override { return "autoregression"; }
  std::size_t dimension() const override { return coefficients_.size(); }
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return coefficients_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return max_iter_; }
  double tolerance() const override { return tolerance_; }

  /// Fitted AR coefficients (on the normalized series).
  std::span<const double> coefficients() const { return coefficients_; }

  /// Exact mean squared residual of the current fit.
  double mean_squared_error() const;

  /// Number of design rows m.
  std::size_t samples() const { return targets_.size(); }

  /// The step size in use (after auto-selection).
  double step_size() const { return step_; }

 private:
  double objective_at(std::span<const double> w);

  la::Matrix design_;             ///< m x p normalized lag matrix.
  std::vector<double> targets_;   ///< m normalized targets.
  std::size_t max_iter_;
  double tolerance_;
  double step_ = 0.0;
  double resilient_fraction_;

  std::vector<double> coefficients_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;

  // Iteration scratch arenas: sized once in reset(), reused every
  // iteration so the steady-state hot path performs no heap allocation
  // (asserted by zero_alloc_test.cpp). The BatchWorkspace runs the two
  // chained shapes (residual dot-sub, gradient accumulate-plus-tail)
  // word-resident when the bound context supports it.
  arith::BatchWorkspace ws_;
  std::vector<double> pred_;         ///< m, objective/residual scratch.
  std::vector<double> w_prev_;       ///< p, previous iterate.
  std::vector<double> monitor_grad_; ///< p, exact monitor gradient.
  std::vector<double> exact_resid_;  ///< m, exact residuals.
  std::vector<double> abs_resid_;    ///< m, residual magnitudes.
  std::vector<double> sorted_;       ///< m, nth_element scratch.
  std::vector<double> resid_;        ///< m, context-routed residuals.
  std::vector<double> grad_;         ///< p, context-routed gradient.
  std::vector<double> grad_terms_;   ///< m*p, gathered resilient terms.
  std::vector<double> scaled_grad_;  ///< p, step * gradient.
  std::vector<double> step_vec_;     ///< p, iterate delta.
  std::vector<arith::ChainSpec> chains_;     ///< <= m, grouped-chain specs.
  std::vector<double> chain_results_;        ///< <= m, grouped results.
  std::vector<std::size_t> resilient_rows_;  ///< <= m, residual scatter map.
};

/// The paper's AR QEM: l2 distance between two coefficient vectors.
double coefficient_l2_error(std::span<const double> fitted,
                            std::span<const double> truth);

}  // namespace approxit::apps
