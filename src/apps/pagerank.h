// PageRank by power iteration, exposed as an IterativeMethod — a third
// application class (graph mining) under the ApproxIt framework.
//
// Resilience partitioning: the per-edge rank accumulation (the bulk of the
// work) runs through the ArithContext; damping/teleport assembly and the
// residual objective are exact.
//
// Objective: the exact L1 one-step residual ||P x - x||_1 (zero exactly at
// the stationary distribution). QEM: L1 distance between rank vectors, plus
// a top-k overlap helper (ranking quality, the metric that matters for
// retrieval).
#pragma once

#include <span>
#include <vector>

#include "arith/alu.h"
#include "opt/iterative_method.h"
#include "workloads/graphs.h"

namespace approxit::apps {

/// QCS configuration matched to rank-vector magnitudes (O(1/n) entries).
arith::QcsConfig pagerank_qcs_config();

/// Options for PageRank.
struct PageRankOptions {
  double damping = 0.85;      ///< Teleport damping factor d.
  std::size_t max_iter = 300;
  double tolerance = 1e-12;   ///< On the improvement of the L1 residual.
};

/// Damped power iteration over a WebGraph.
class PageRank final : public opt::IterativeMethod {
 public:
  /// The graph must outlive the method.
  explicit PageRank(const workloads::WebGraph& graph,
                    PageRankOptions options = {});

  std::string name() const override { return "pagerank"; }
  std::size_t dimension() const override { return ranks_.size(); }
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return ranks_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return options_.max_iter; }
  double tolerance() const override { return options_.tolerance; }

  /// Current rank vector (sums to ~1).
  std::span<const double> ranks() const { return ranks_; }

  /// Indices of the k highest-ranked nodes, in rank order.
  std::vector<std::size_t> top_pages(std::size_t k) const;

 private:
  std::vector<double> exact_step(const std::vector<double>& x) const;
  double residual_l1(const std::vector<double>& x) const;

  const workloads::WebGraph& graph_;
  PageRankOptions options_;
  std::vector<double> ranks_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

/// L1 distance between two rank vectors (the PageRank QEM).
double rank_l1_distance(std::span<const double> a, std::span<const double> b);

/// Number of common entries between two top-k lists.
std::size_t top_k_overlap(const std::vector<std::size_t>& a,
                          const std::vector<std::size_t>& b);

}  // namespace approxit::apps
