// PageRank by power iteration, exposed as an IterativeMethod — a third
// application class (graph mining) under the ApproxIt framework.
//
// Sparse-native: the constructor builds the in-link transition matrix
// P (CSR, P[v][u] = 1/outdeg(u)) once — no dense matrix is ever
// materialized — and each iteration is one context-routed SpMV
// (la::CsrMatrix::spmv_into, fused row chains, optional deterministic
// sharding via PageRankOptions::spmv) plus the dangling-mass reduction.
//
// Resilience partitioning: the per-edge rank accumulation (the bulk of
// the work) runs through the ArithContext; damping/teleport assembly and
// the residual objective are exact.
//
// Zero-alloc: every per-iteration temporary lives in a member arena sized
// in reset(); steady-state iterate() performs no heap allocation (the
// zero_alloc_test contract, like GmmEm and AutoRegression).
//
// Objective: the exact L1 one-step residual ||P x - x||_1 (zero exactly at
// the stationary distribution). QEM: L1 distance between rank vectors, plus
// a top-k overlap helper (ranking quality, the metric that matters for
// retrieval).
#pragma once

#include <span>
#include <vector>

#include "arith/alu.h"
#include "la/sparse.h"
#include "opt/iterative_method.h"
#include "workloads/graphs.h"

namespace approxit::apps {

/// QCS configuration matched to rank-vector magnitudes (O(1/n) entries).
arith::QcsConfig pagerank_qcs_config();

/// Size-aware variant: deepens the fixed-point fraction with the node
/// count so a typical rank entry (1/n) keeps ~26 bits of resolution, and
/// pins the approximation ladder at per-add errors of roughly 25% / 6% /
/// 1.5% / 0.4% of a typical entry — the paper's quality spread stays
/// meaningful from 400-node tests to 1M-node benches.
arith::QcsConfig pagerank_qcs_config(std::size_t nodes);

/// Options for PageRank.
struct PageRankOptions {
  double damping = 0.85;      ///< Teleport damping factor d.
  std::size_t max_iter = 300;
  double tolerance = 1e-12;   ///< On the improvement of the L1 residual.
  /// Shard/thread plan for the context-routed SpMV (defaults serial).
  la::SpmvOptions spmv;
};

/// Damped power iteration over a WebGraph.
class PageRank final : public opt::IterativeMethod {
 public:
  /// Builds the sparse transition matrix from the graph (the graph itself
  /// is not retained).
  explicit PageRank(const workloads::WebGraph& graph,
                    PageRankOptions options = {});

  std::string name() const override { return "pagerank"; }
  std::size_t dimension() const override { return ranks_.size(); }
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override { return ranks_; }
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return options_.max_iter; }
  double tolerance() const override { return options_.tolerance; }

  /// Current rank vector (sums to ~1).
  std::span<const double> ranks() const { return ranks_; }

  /// Indices of the k highest-ranked nodes, in rank order.
  std::vector<std::size_t> top_pages(std::size_t k) const;

  /// The in-link transition matrix (nnz == graph edge count).
  const la::CsrMatrix& transition() const { return matrix_; }

 private:
  /// out <- damped exact step: P x, dangling redistribution, teleport.
  void exact_step_into(std::span<const double> x, std::span<double> out);
  double residual_l1(std::span<const double> x);

  la::CsrMatrix matrix_;                  ///< In-link transition CSR.
  std::vector<std::uint32_t> dangling_;   ///< Nodes with no out-links.
  PageRankOptions options_;
  std::vector<double> ranks_;
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;

  // Iteration arenas (sized in reset(); no allocation in iterate()).
  la::SpmvWorkspace ws_;             ///< Context-routed SpMV state.
  std::vector<double> prev_;         ///< Ranks at iteration start.
  std::vector<double> next_;         ///< Routed SpMV output / new ranks.
  std::vector<double> exact_next_;   ///< Exact-step output (monitor).
  std::vector<double> residual_;     ///< exact_next - prev (monitor).
  std::vector<double> step_;         ///< ranks - prev.
  std::vector<double> dangling_gather_;  ///< ranks at dangling nodes.
};

/// L1 distance between two rank vectors (the PageRank QEM).
double rank_l1_distance(std::span<const double> a, std::span<const double> b);

/// Number of common entries between two top-k lists.
std::size_t top_k_overlap(const std::vector<std::size_t>& a,
                          const std::vector<std::size_t>& b);

}  // namespace approxit::apps
