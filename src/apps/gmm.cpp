#include "apps/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "la/decomp.h"
#include "la/vector_ops.h"

namespace approxit::apps {
namespace {

/// log N(x | mean, ...) for one sample given the cached inverse/log-norm.
double log_gaussian(std::span<const double> x, std::span<const double> mean,
                    const la::Matrix& inverse, double log_norm) {
  const std::size_t d = x.size();
  double quad = 0.0;
  for (std::size_t r = 0; r < d; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      acc += inverse(r, c) * (x[c] - mean[c]);
    }
    quad += (x[r] - mean[r]) * acc;
  }
  return log_norm - 0.5 * quad;
}

}  // namespace

GmmEm::GmmEm(const workloads::GmmDataset& dataset, GmmOptions options)
    : dataset_(dataset),
      options_(options),
      max_iter_(options.max_iter > 0 ? options.max_iter : dataset.max_iter),
      tolerance_(options.tolerance > 0.0 ? options.tolerance
                                         : dataset.convergence_tol) {
  if (dataset_.size() == 0 || dataset_.dim == 0 ||
      dataset_.num_clusters == 0) {
    throw std::invalid_argument("GmmEm: empty dataset");
  }
  reset();
}

std::size_t GmmEm::dimension() const {
  return dataset_.num_clusters * dataset_.dim;
}

void GmmEm::initialize_model() {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;

  model_.dim = d;
  model_.weights.assign(k, 1.0 / static_cast<double>(k));
  model_.means.assign(k * d, 0.0);
  model_.covariances.assign(k, la::Matrix::identity(d));

  // Deterministic initialization: place the k initial means on evenly
  // spaced data points of the coordinate-wise sorted order, so every run
  // (every mode, every strategy) starts identically.
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], dataset_.points[i * d + j]);
      hi[j] = std::max(hi[j], dataset_.points[i * d + j]);
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    const double t = (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    for (std::size_t j = 0; j < d; ++j) {
      model_.means[c * d + j] = lo[j] + t * (hi[j] - lo[j]);
    }
    // Spread of the data as the initial covariance scale.
    la::Matrix cov = la::Matrix::identity(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double range = hi[j] - lo[j];
      cov(j, j) = std::max(1.0, range * range / 16.0);
    }
    model_.covariances[c] = cov;
  }
}

void GmmEm::reset() {
  initialize_model();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  responsibilities_.assign(dataset_.size() * k, 0.0);
  // Size every iteration arena once; the hot loop only reuses them.
  caches_.resize(k);
  for (GaussianCache& cache : caches_) {
    if (cache.inverse.rows() != d) cache.inverse = la::Matrix(d, d, 0.0);
  }
  logp_.assign(k, 0.0);
  gathered_.assign(dataset_.size(), 0.0);
  numer_.assign(d, 0.0);
  if (cov_scratch_.rows() != d) cov_scratch_ = la::Matrix(d, d, 0.0);
  means_prev_.assign(k * d, 0.0);
  monitor_grad_.assign(k * d, 0.0);
  step_.assign(k * d, 0.0);
  e_step();
  current_objective_ = average_negative_log_likelihood();
  iteration_ = 0;
}

void GmmEm::refresh_caches() {
  // One LU factorization per component, shared by the determinant and the
  // inverse — the pre-cache code factored each covariance three times per
  // iteration (e_step, likelihood, monitor gradient) through
  // la::inverse/la::determinant; the arithmetic per factorization is
  // unchanged, so the cached values are bit-identical to theirs.
  const std::size_t d = dataset_.dim;
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    GaussianCache& cache = caches_[c];
    if (!lu_ws_.factor(model_.covariances[c])) {
      cache.has_inverse = false;
      cache.valid = false;
      continue;
    }
    cache.has_inverse = true;
    lu_ws_.inverse_into(cache.inverse);
    const double det = lu_ws_.determinant();
    cache.valid = det > 0.0;
    cache.log_norm =
        cache.valid
            ? -0.5 * (static_cast<double>(d) * std::log(2.0 * std::numbers::pi) +
                      std::log(det))
            : 0.0;
  }
}

void GmmEm::e_step() {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;

  refresh_caches();

  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> x(dataset_.points.data() + i * d, d);
    // Log-sum-exp over components for numerical stability.
    for (std::size_t c = 0; c < k; ++c) {
      logp_[c] = -std::numeric_limits<double>::infinity();
    }
    double max_logp = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (!caches_[c].valid || model_.weights[c] <= 0.0) continue;
      const std::span<const double> mean(model_.means.data() + c * d, d);
      logp_[c] = std::log(model_.weights[c]) +
                 log_gaussian(x, mean, caches_[c].inverse,
                              caches_[c].log_norm);
      max_logp = std::max(max_logp, logp_[c]);
    }
    if (!std::isfinite(max_logp)) {
      // All components degenerate: fall back to uniform responsibilities.
      for (std::size_t c = 0; c < k; ++c) {
        responsibilities_[i * k + c] = 1.0 / static_cast<double>(k);
      }
      continue;
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      denom += std::exp(logp_[c] - max_logp);
    }
    for (std::size_t c = 0; c < k; ++c) {
      responsibilities_[i * k + c] = std::exp(logp_[c] - max_logp) / denom;
    }
  }
}

void GmmEm::m_step(arith::ArithContext& ctx) {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;

  for (std::size_t c = 0; c < k; ++c) {
    // Responsibility mass and mean numerators accumulate through the
    // context — THE error-resilient kernel of this application. Each
    // reduction chain is gathered into a contiguous buffer so the context
    // can run it as one batch; the per-chain fold order (samples in
    // ascending i) is unchanged, so the results are too.
    for (std::size_t i = 0; i < n; ++i) {
      gathered_[i] = responsibilities_[i * k + c];
    }
    const double mass = ctx.accumulate(gathered_);
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        gathered_[i] =
            responsibilities_[i * k + c] * dataset_.points[i * d + j];
      }
      numer_[j] = ctx.accumulate(gathered_);
    }

    if (mass <= 1e-8) {
      // Degenerate (empty) component: keep its previous parameters.
      continue;
    }
    for (std::size_t j = 0; j < d; ++j) {
      model_.means[c * d + j] = numer_[j] / mass;
    }

    // Weights and covariances are error-sensitive: exact arithmetic.
    double exact_mass = 0.0;
    la::Matrix& cov = cov_scratch_;
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t q = 0; q < d; ++q) cov(r, q) = 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double g = responsibilities_[i * k + c];
      exact_mass += g;
      for (std::size_t r = 0; r < d; ++r) {
        const double dr =
            dataset_.points[i * d + r] - model_.means[c * d + r];
        for (std::size_t q = 0; q <= r; ++q) {
          const double dq =
              dataset_.points[i * d + q] - model_.means[c * d + q];
          cov(r, q) += g * dr * dq;
        }
      }
    }
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t q = 0; q <= r; ++q) {
        cov(r, q) /= exact_mass;
        cov(q, r) = cov(r, q);
      }
      cov(r, r) += options_.covariance_ridge;
    }
    model_.covariances[c] = cov;  // same-shape copy: capacity reused
    model_.weights[c] = exact_mass / static_cast<double>(n);
  }

  // Renormalize weights (they are exact but guard against drift).
  double wsum = 0.0;
  for (double w : model_.weights) wsum += w;
  if (wsum > 0.0) {
    for (double& w : model_.weights) w /= wsum;
  }
}

double GmmEm::average_negative_log_likelihood() {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;

  // The caches are fresh: every call site runs right after e_step() with
  // the covariances unchanged in between, so the e_step refresh serves
  // the likelihood too (the pre-cache code refactored here redundantly).
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> x(dataset_.points.data() + i * d, d);
    double max_logp = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      logp_[c] = -std::numeric_limits<double>::infinity();
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (!caches_[c].valid || model_.weights[c] <= 0.0) continue;
      const std::span<const double> mean(model_.means.data() + c * d, d);
      logp_[c] = std::log(model_.weights[c]) +
                 log_gaussian(x, mean, caches_[c].inverse,
                              caches_[c].log_norm);
      max_logp = std::max(max_logp, logp_[c]);
    }
    if (!std::isfinite(max_logp)) {
      // Degenerate model: clamp the sample's log-likelihood instead of
      // letting the objective become non-finite.
      total += -690.0;  // ~ log(1e-300)
      continue;
    }
    double s = 0.0;
    for (std::size_t c = 0; c < k; ++c) s += std::exp(logp_[c] - max_logp);
    total += max_logp + std::log(s);
  }
  return -total / static_cast<double>(n);
}

void GmmEm::mean_gradient_into(std::span<double> grad) const {
  // d/d mu_c of the average negative log-likelihood:
  //   -(1/n) sum_i gamma_ic Sigma_c^{-1} (x_i - mu_c).
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  for (std::size_t j = 0; j < k * d; ++j) grad[j] = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    // has_inverse mirrors la::inverse() succeeding (no det > 0 filter):
    // the monitor keeps its gradient even for non-SPD covariances.
    if (!caches_[c].has_inverse) continue;
    const la::Matrix& inv = caches_[c].inverse;
    for (std::size_t i = 0; i < n; ++i) {
      const double g = responsibilities_[i * k + c];
      if (g == 0.0) continue;
      for (std::size_t r = 0; r < d; ++r) {
        double acc = 0.0;
        for (std::size_t q = 0; q < d; ++q) {
          acc += inv(r, q) *
                 (dataset_.points[i * d + q] - model_.means[c * d + q]);
        }
        grad[c * d + r] -= g * acc;
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < k * d; ++j) grad[j] *= inv_n;
}

opt::IterationStats GmmEm::iterate(arith::ArithContext& ctx) {
  const double f_prev = current_objective_;
  means_prev_ = model_.means;  // same-size copy: capacity reused
  // Monitor gradient at the pre-step state (responsibilities_ and the
  // Gaussian caches are fresh from the previous e_step).
  mean_gradient_into(monitor_grad_);

  m_step(ctx);
  e_step();
  current_objective_ = average_negative_log_likelihood();
  ++iteration_;

  opt::IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(model_.means, means_prev_);
  stats.state_norm = la::norm2(model_.means);
  la::subtract(model_.means, means_prev_, step_);
  stats.grad_dot_step = la::dot(monitor_grad_, step_);
  stats.grad_norm = la::norm2(monitor_grad_);
  // Signed convergence check, as in typical EM implementations: stop when
  // the objective no longer decreases. Under approximation the noisy
  // objective can tick upward early, producing the paper's FALSE STOPS;
  // the reconfiguration schemes exist to veto exactly those.
  stats.converged =
      stats.improvement() < tolerance_ || stats.step_norm == 0.0;
  return stats;
}

std::vector<double> GmmEm::state() const {
  // Layout: [weights | means | covariances (row-major each)].
  std::vector<double> snapshot = model_.weights;
  snapshot.insert(snapshot.end(), model_.means.begin(), model_.means.end());
  for (const la::Matrix& cov : model_.covariances) {
    snapshot.insert(snapshot.end(), cov.data().begin(), cov.data().end());
  }
  return snapshot;
}

void GmmEm::restore(const std::vector<double>& snapshot) {
  const std::size_t d = dataset_.dim;
  const std::size_t k = dataset_.num_clusters;
  const std::size_t expected = k + k * d + k * d * d;
  if (snapshot.size() != expected) {
    throw std::invalid_argument("GmmEm::restore: bad snapshot size");
  }
  auto it = snapshot.begin();
  model_.weights.assign(it, it + static_cast<long>(k));
  it += static_cast<long>(k);
  model_.means.assign(it, it + static_cast<long>(k * d));
  it += static_cast<long>(k * d);
  for (std::size_t c = 0; c < k; ++c) {
    la::Matrix cov(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t q = 0; q < d; ++q) {
        cov(r, q) = *it++;
      }
    }
    model_.covariances[c] = cov;
  }
  e_step();
  current_objective_ = average_negative_log_likelihood();
}

std::vector<int> GmmEm::assignments() const {
  const std::size_t n = dataset_.size();
  const std::size_t k = dataset_.num_clusters;
  std::vector<int> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int best = 0;
    double best_g = responsibilities_[i * k];
    for (std::size_t c = 1; c < k; ++c) {
      if (responsibilities_[i * k + c] > best_g) {
        best_g = responsibilities_[i * k + c];
        best = static_cast<int>(c);
      }
    }
    out[i] = best;
  }
  return out;
}

double GmmEm::mean_centroid_distance() const {
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dim;
  const std::vector<int> assign = assignments();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(assign[i]);
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = dataset_.points[i * d + j] - model_.means[c * d + j];
      s += diff * diff;
    }
    total += std::sqrt(s);
  }
  return total / static_cast<double>(n);
}

std::size_t hamming_distance(const std::vector<int>& a,
                             const std::vector<int>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

std::size_t permuted_hamming_distance(const std::vector<int>& a,
                                      const std::vector<int>& b,
                                      std::size_t num_labels) {
  if (num_labels == 0 || num_labels > 8) {
    throw std::invalid_argument(
        "permuted_hamming_distance: num_labels must be in [1, 8]");
  }
  std::vector<int> perm(num_labels);
  std::iota(perm.begin(), perm.end(), 0);
  std::size_t best = std::numeric_limits<std::size_t>::max();
  do {
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const int mapped = b[i] >= 0 && static_cast<std::size_t>(b[i]) <
                                          num_labels
                             ? perm[static_cast<std::size_t>(b[i])]
                             : b[i];
      if (a[i] != mapped) ++d;
    }
    best = std::min(best, d);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace approxit::apps
