#include "apps/autoregression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/vector_ops.h"

namespace approxit::apps {

arith::QcsConfig ar_qcs_config() {
  arith::QcsConfig config;
  config.format = arith::QFormat{48, 32};
  config.level_approx_bits = {26, 22, 19, 16};
  return config;
}

AutoRegression::AutoRegression(const workloads::TimeSeriesDataset& dataset,
                               ArOptions options)
    : max_iter_(options.max_iter > 0 ? options.max_iter : dataset.max_iter),
      tolerance_(options.tolerance > 0.0 ? options.tolerance
                                         : dataset.convergence_tol),
      resilient_fraction_(options.resilient_fraction) {
  const std::size_t p = options.order > 0 ? options.order : dataset.ar_order;
  if (dataset.values.size() <= p + 1) {
    throw std::invalid_argument("AutoRegression: series shorter than order");
  }
  if (resilient_fraction_ < 0.0 || resilient_fraction_ > 1.0) {
    throw std::invalid_argument(
        "AutoRegression: resilient_fraction must be in [0, 1]");
  }

  // Log-returns, then z-normalization: the standard stationarizing
  // preprocessing for index-level series ("for scaled data", Section 3.2).
  const std::size_t len = dataset.values.size() - 1;
  std::vector<double> returns(len);
  for (std::size_t i = 0; i < len; ++i) {
    returns[i] = std::log(dataset.values[i + 1] / dataset.values[i]);
  }
  double mean = 0.0;
  for (double v : returns) mean += v;
  mean /= static_cast<double>(len);
  double var = 0.0;
  for (double v : returns) var += (v - mean) * (v - mean);
  var /= static_cast<double>(len);
  const double stddev = var > 0.0 ? std::sqrt(var) : 1.0;

  std::vector<double> z(len);
  for (std::size_t i = 0; i < len; ++i) {
    z[i] = (returns[i] - mean) / stddev;
  }

  const std::size_t m = len - p;
  design_ = la::Matrix(m, p, 0.0);
  targets_.resize(m);
  for (std::size_t t = 0; t < m; ++t) {
    for (std::size_t j = 0; j < p; ++j) {
      design_(t, j) = z[t + p - 1 - j];  // lag j+1
    }
    targets_[t] = z[t + p];
  }

  // Auto step size 1/L with L = lambda_max(X^T X / m) by power iteration.
  if (options.step_size > 0.0) {
    step_ = options.step_size;
  } else {
    std::vector<double> v(p, 1.0 / std::sqrt(static_cast<double>(p)));
    double lambda = 1.0;
    for (int it = 0; it < 60; ++it) {
      const std::vector<double> xv = design_.matvec(v);
      std::vector<double> xtxv = design_.matvec_transposed(xv);
      for (double& e : xtxv) e /= static_cast<double>(m);
      lambda = la::norm2(xtxv);
      if (lambda <= 0.0) break;
      for (std::size_t i = 0; i < p; ++i) xtxv[i] /= lambda;
      v = std::move(xtxv);
    }
    step_ = lambda > 0.0 ? 1.0 / lambda : 1.0;
  }

  coefficients_.assign(p, 0.0);
  reset();
}

void AutoRegression::reset() {
  const std::size_t m = targets_.size();
  const std::size_t p = coefficients_.size();
  // Size every iteration arena up front so iterate() never allocates.
  pred_.assign(m, 0.0);
  w_prev_.assign(p, 0.0);
  monitor_grad_.assign(p, 0.0);
  exact_resid_.assign(m, 0.0);
  abs_resid_.assign(m, 0.0);
  sorted_.assign(m, 0.0);
  resid_.assign(m, 0.0);
  grad_.assign(p, 0.0);
  grad_terms_.assign(m * p, 0.0);
  scaled_grad_.assign(p, 0.0);
  step_vec_.assign(p, 0.0);
  chains_.clear();
  chains_.reserve(std::max(m, p));
  chain_results_.assign(std::max(m, p), 0.0);
  resilient_rows_.clear();
  resilient_rows_.reserve(m);
  // Upper bound on grouped-chain operands: every design row, both loops.
  ws_.reserve_group(m * p);

  std::fill(coefficients_.begin(), coefficients_.end(), 0.0);
  current_objective_ = objective_at(coefficients_);
  iteration_ = 0;
}

double AutoRegression::objective_at(std::span<const double> w) {
  design_.matvec(w, pred_);
  double s = 0.0;
  for (std::size_t i = 0; i < pred_.size(); ++i) {
    const double r = pred_[i] - targets_[i];
    s += r * r;
  }
  return 0.5 * s / static_cast<double>(targets_.size());
}

double AutoRegression::mean_squared_error() const {
  return 2.0 * current_objective_;
}

opt::IterationStats AutoRegression::iterate(arith::ArithContext& ctx) {
  const std::size_t m = targets_.size();
  const std::size_t p = coefficients_.size();
  w_prev_ = coefficients_;
  const double f_prev = current_objective_;
  ws_.bind(ctx);

  // Exact residuals, shared by the monitor gradient (framework part) and
  // the per-iteration 80% confidence threshold.
  design_.matvec(w_prev_, exact_resid_);
  for (std::size_t i = 0; i < m; ++i) exact_resid_[i] -= targets_[i];
  design_.matvec_transposed(exact_resid_, monitor_grad_);
  for (std::size_t j = 0; j < p; ++j) {
    monitor_grad_[j] /= static_cast<double>(m);
  }
  for (std::size_t i = 0; i < m; ++i) {
    abs_resid_[i] = std::abs(exact_resid_[i]);
  }
  double threshold = -1.0;  // resilient_fraction == 0: nothing qualifies
  if (resilient_fraction_ > 0.0) {
    sorted_ = abs_resid_;
    const std::size_t cut = std::min(
        m - 1, static_cast<std::size_t>(resilient_fraction_ *
                                        static_cast<double>(m)));
    std::nth_element(sorted_.begin(), sorted_.begin() + static_cast<long>(cut),
                     sorted_.end());
    threshold = sorted_[cut];
  }

  // Residuals through the context for resilient samples: one dot-then-
  // subtract chain per in-confidence row, run as a grouped pass so the QCS
  // fast path quantizes all rows' products in a single SIMD sweep (one
  // quantize of the running sum per chain instead of one per link). On any
  // other context the group degrades to exactly ctx.sub(ctx.dot(...), ...)
  // per row, in row order.
  chains_.clear();
  resilient_rows_.clear();
  for (std::size_t i = 0; i < m; ++i) {
    if (abs_resid_[i] <= threshold) {
      arith::ChainSpec chain;
      chain.kind = arith::ChainSpec::Kind::kDotSub;
      chain.x = design_.row(i);
      chain.y = coefficients_;
      chain.scalar = targets_[i];
      chains_.push_back(chain);
      resilient_rows_.push_back(i);
    } else {
      resid_[i] = exact_resid_[i];
    }
  }
  ws_.run_chains(chains_, chain_results_.data());
  for (std::size_t k = 0; k < resilient_rows_.size(); ++k) {
    resid_[resilient_rows_[k]] = chain_results_[k];
  }
  // Raw terms accumulate through the context (the AR benches configure a
  // wide Q16.32 datapath whose range covers the random-walk growth of these
  // sums); the final 1/m normalization is an exact scalar divide. The
  // in-confidence terms are gathered (in sample order) into one batched
  // reduction per coefficient; the exact tail is summed in plain floating
  // point and joined with a single context add when both parts exist. All
  // p reductions run as one grouped pass — word-resident with a shared
  // bulk quantize on the QCS fast path, per-coefficient context calls
  // (accumulate, then the tail add) everywhere else.
  chains_.clear();
  for (std::size_t j = 0; j < p; ++j) {
    double* terms = grad_terms_.data() + j * m;
    std::size_t count = 0;
    double exact_tail = 0.0;
    bool has_exact = false;
    for (std::size_t i = 0; i < m; ++i) {
      const double term = design_(i, j) * resid_[i];
      if (abs_resid_[i] <= threshold) {
        terms[count++] = term;
      } else {
        exact_tail += term;
        has_exact = true;
      }
    }
    arith::ChainSpec chain;
    chain.kind = arith::ChainSpec::Kind::kAccumulate;
    chain.x = std::span<const double>(terms, count);
    chain.scalar = exact_tail;
    chain.has_scalar = has_exact;
    chains_.push_back(chain);
  }
  ws_.run_chains(chains_, chain_results_.data());
  for (std::size_t j = 0; j < p; ++j) {
    grad_[j] = chain_results_[j] / static_cast<double>(m);
  }

  // Update through the context: w <- w - step * grad (elementwise batched
  // subtraction, identical to per-coefficient ctx.sub).
  for (std::size_t j = 0; j < p; ++j) scaled_grad_[j] = step_ * grad_[j];
  ctx.sub_vec(coefficients_, scaled_grad_, coefficients_);

  current_objective_ = objective_at(coefficients_);
  ++iteration_;

  opt::IterationStats stats;
  stats.iteration = iteration_;
  stats.objective_before = f_prev;
  stats.objective_after = current_objective_;
  stats.step_norm = la::distance2(coefficients_, w_prev_);
  stats.state_norm = la::norm2(coefficients_);
  la::subtract(coefficients_, w_prev_, step_vec_);
  stats.grad_dot_step = la::dot(monitor_grad_, step_vec_);
  stats.grad_norm = la::norm2(monitor_grad_);
  // Signed convergence check (see gmm.cpp): approximation noise can trip
  // this early — the paper's false stops.
  stats.converged =
      stats.improvement() < tolerance_ || stats.step_norm == 0.0;
  return stats;
}

void AutoRegression::restore(const std::vector<double>& snapshot) {
  if (snapshot.size() != coefficients_.size()) {
    throw std::invalid_argument("AutoRegression::restore: bad snapshot size");
  }
  coefficients_ = snapshot;
  current_objective_ = objective_at(coefficients_);
}

double coefficient_l2_error(std::span<const double> fitted,
                            std::span<const double> truth) {
  if (fitted.size() != truth.size()) {
    throw std::invalid_argument("coefficient_l2_error: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < fitted.size(); ++i) {
    const double d = fitted[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace approxit::apps
