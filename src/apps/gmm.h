// Gaussian Mixture Model clustering via Expectation-Maximization, exposed
// as an IterativeMethod (the paper's first benchmark application).
//
// Resilience partitioning (Table 2, "Adder Impact: Mean Value"): only the
// M-step's mean accumulations run through the ArithContext; the E-step
// (responsibilities: exp, covariance inverses), the weight/covariance
// updates and the log-likelihood evaluation are error-sensitive and exact.
//
// Objective: average negative log-likelihood (minimized).
// Quality evaluation metric: Hamming distance between the hard cluster
// assignments of an approximate run and the Truth run (Table 1).
#pragma once

#include <span>
#include <vector>

#include "la/decomp.h"
#include "la/matrix.h"
#include "opt/iterative_method.h"
#include "workloads/datasets.h"

namespace approxit::apps {

/// Full mixture-model state.
struct GmmModel {
  std::size_t dim = 0;
  std::vector<double> weights;       ///< k mixing weights.
  std::vector<double> means;         ///< Row-major k x dim.
  std::vector<la::Matrix> covariances;  ///< k SPD dim x dim matrices.

  std::size_t components() const { return weights.size(); }
};

/// Options for GmmEm.
struct GmmOptions {
  /// Ridge added to covariance diagonals after each M-step.
  double covariance_ridge = 1e-6;
  /// Iteration budget / convergence tolerance; 0 values take the dataset's.
  std::size_t max_iter = 0;
  double tolerance = 0.0;
};

/// EM for GMMs over a fixed dataset.
class GmmEm final : public opt::IterativeMethod {
 public:
  /// The dataset must outlive the method. Initialization is deterministic
  /// (identical across modes/datasets runs, as the paper requires): means
  /// are spread over the data's bounding box diagonal, weights uniform,
  /// covariances identity-scaled.
  explicit GmmEm(const workloads::GmmDataset& dataset, GmmOptions options = {});

  std::string name() const override { return "gmm_em"; }
  std::size_t dimension() const override;
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return max_iter_; }
  double tolerance() const override { return tolerance_; }

  /// Current model.
  const GmmModel& model() const { return model_; }

  /// Hard cluster assignment (argmax responsibility) of every sample under
  /// the CURRENT model. Exact computation.
  std::vector<int> assignments() const;

  /// Mean distance of samples to their assigned cluster mean — the MCD
  /// sensor of Chippa et al.'s K-means case study (used by the PID
  /// motivation bench).
  double mean_centroid_distance() const;

 private:
  /// Precomputed per-component Gaussian evaluation data, refreshed by
  /// refresh_caches() whenever the covariances change. `has_inverse`
  /// mirrors la::inverse() succeeding (the mean-gradient criterion);
  /// `valid` additionally requires det > 0 (the E-step / likelihood
  /// criterion) — keeping both preserves the exact pre-cache semantics
  /// for non-SPD but invertible covariances.
  struct GaussianCache {
    la::Matrix inverse;
    double log_norm = 0.0;  ///< -0.5 (d log 2pi + log det); valid only.
    bool has_inverse = false;
    bool valid = false;
  };

  void initialize_model();
  double average_negative_log_likelihood();
  /// Refactors every covariance once (one LU per component, shared by the
  /// E-step, the likelihood, and the monitor gradient).
  void refresh_caches();
  /// E-step: fills responsibilities_ (n x k, row-major); exact. Refreshes
  /// the Gaussian caches from the current covariances first.
  void e_step();
  /// M-step: weights/covariances exact, mean accumulations through ctx.
  void m_step(arith::ArithContext& ctx);
  /// Exact gradient of the objective w.r.t. the means (monitor quantity)
  /// into `grad` (k * dim, caller-owned). Uses the cached inverses, which
  /// are fresh: the caches are rebuilt with the responsibilities they
  /// condition on.
  void mean_gradient_into(std::span<double> grad) const;

  const workloads::GmmDataset& dataset_;
  GmmOptions options_;
  std::size_t max_iter_;
  double tolerance_;

  GmmModel model_;
  std::vector<double> responsibilities_;  ///< n x k, refreshed by e_step().
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;

  // Iteration scratch arenas: sized once in reset(), reused every
  // iteration so the steady-state hot path performs no heap allocation
  // (asserted by zero_alloc_test.cpp).
  std::vector<GaussianCache> caches_;   ///< k caches, e_step-fresh.
  la::LuWorkspace lu_ws_;               ///< shared LU factor arena.
  std::vector<double> logp_;            ///< k, log-sum-exp scratch.
  std::vector<double> gathered_;        ///< n, M-step reduction gather.
  std::vector<double> numer_;           ///< dim, M-step mean numerators.
  la::Matrix cov_scratch_;              ///< dim x dim, M-step covariance.
  std::vector<double> means_prev_;      ///< k * dim, step monitoring.
  std::vector<double> monitor_grad_;    ///< k * dim, monitor gradient.
  std::vector<double> step_;            ///< k * dim, step vector.
};

/// Hamming distance between two assignment vectors (must be equal length):
/// the number of positions with differing labels — the paper's GMM QEM.
std::size_t hamming_distance(const std::vector<int>& a,
                             const std::vector<int>& b);

/// Label-permutation-invariant Hamming distance: minimum over all
/// permutations of the labels in `b` (k <= 8). Useful when comparing runs
/// whose component indices swapped.
std::size_t permuted_hamming_distance(const std::vector<int>& a,
                                      const std::vector<int>& b,
                                      std::size_t num_labels);

}  // namespace approxit::apps
