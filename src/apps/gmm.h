// Gaussian Mixture Model clustering via Expectation-Maximization, exposed
// as an IterativeMethod (the paper's first benchmark application).
//
// Resilience partitioning (Table 2, "Adder Impact: Mean Value"): only the
// M-step's mean accumulations run through the ArithContext; the E-step
// (responsibilities: exp, covariance inverses), the weight/covariance
// updates and the log-likelihood evaluation are error-sensitive and exact.
//
// Objective: average negative log-likelihood (minimized).
// Quality evaluation metric: Hamming distance between the hard cluster
// assignments of an approximate run and the Truth run (Table 1).
#pragma once

#include <vector>

#include "la/matrix.h"
#include "opt/iterative_method.h"
#include "workloads/datasets.h"

namespace approxit::apps {

/// Full mixture-model state.
struct GmmModel {
  std::size_t dim = 0;
  std::vector<double> weights;       ///< k mixing weights.
  std::vector<double> means;         ///< Row-major k x dim.
  std::vector<la::Matrix> covariances;  ///< k SPD dim x dim matrices.

  std::size_t components() const { return weights.size(); }
};

/// Options for GmmEm.
struct GmmOptions {
  /// Ridge added to covariance diagonals after each M-step.
  double covariance_ridge = 1e-6;
  /// Iteration budget / convergence tolerance; 0 values take the dataset's.
  std::size_t max_iter = 0;
  double tolerance = 0.0;
};

/// EM for GMMs over a fixed dataset.
class GmmEm final : public opt::IterativeMethod {
 public:
  /// The dataset must outlive the method. Initialization is deterministic
  /// (identical across modes/datasets runs, as the paper requires): means
  /// are spread over the data's bounding box diagonal, weights uniform,
  /// covariances identity-scaled.
  explicit GmmEm(const workloads::GmmDataset& dataset, GmmOptions options = {});

  std::string name() const override { return "gmm_em"; }
  std::size_t dimension() const override;
  void reset() override;
  opt::IterationStats iterate(arith::ArithContext& ctx) override;
  double objective() const override { return current_objective_; }
  std::vector<double> state() const override;
  void restore(const std::vector<double>& snapshot) override;
  std::size_t max_iterations() const override { return max_iter_; }
  double tolerance() const override { return tolerance_; }

  /// Current model.
  const GmmModel& model() const { return model_; }

  /// Hard cluster assignment (argmax responsibility) of every sample under
  /// the CURRENT model. Exact computation.
  std::vector<int> assignments() const;

  /// Mean distance of samples to their assigned cluster mean — the MCD
  /// sensor of Chippa et al.'s K-means case study (used by the PID
  /// motivation bench).
  double mean_centroid_distance() const;

 private:
  void initialize_model();
  double average_negative_log_likelihood() const;
  /// E-step: fills responsibilities_ (n x k, row-major); exact.
  void e_step();
  /// M-step: weights/covariances exact, mean accumulations through ctx.
  void m_step(arith::ArithContext& ctx);
  /// Exact gradient of the objective w.r.t. the means (monitor quantity).
  std::vector<double> mean_gradient() const;

  const workloads::GmmDataset& dataset_;
  GmmOptions options_;
  std::size_t max_iter_;
  double tolerance_;

  GmmModel model_;
  std::vector<double> responsibilities_;  ///< n x k, refreshed by e_step().
  double current_objective_ = 0.0;
  std::size_t iteration_ = 0;
};

/// Hamming distance between two assignment vectors (must be equal length):
/// the number of positions with differing labels — the paper's GMM QEM.
std::size_t hamming_distance(const std::vector<int>& a,
                             const std::vector<int>& b);

/// Label-permutation-invariant Hamming distance: minimum over all
/// permutations of the labels in `b` (k <= 8). Useful when comparing runs
/// whose component indices swapped.
std::size_t permuted_hamming_distance(const std::vector<int>& a,
                                      const std::vector<int>& b,
                                      std::size_t num_labels);

}  // namespace approxit::apps
