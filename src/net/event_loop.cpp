#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define APPROXIT_NET_HAVE_EPOLL 1
#else
#define APPROXIT_NET_HAVE_EPOLL 0
#endif

namespace approxit::net {

namespace {

void make_nonblocking_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC);
}

}  // namespace

EventLoop::Backend EventLoop::default_backend() {
#if APPROXIT_NET_HAVE_EPOLL
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if APPROXIT_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;
  }
#else
  backend_ = Backend::kPoll;
#endif
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) == 0) {
    wakeup_read_ = pipe_fds[0];
    wakeup_write_ = pipe_fds[1];
    make_nonblocking_cloexec(wakeup_read_);
    make_nonblocking_cloexec(wakeup_write_);
    add(wakeup_read_, /*want_read=*/true, /*want_write=*/false,
        [this](std::uint32_t) { drain_wakeup(); });
  }
}

EventLoop::~EventLoop() {
  if (wakeup_read_ >= 0) ::close(wakeup_read_);
  if (wakeup_write_ >= 0) ::close(wakeup_write_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::update_backend(int fd, const FdState& state, bool adding) {
#if APPROXIT_NET_HAVE_EPOLL
  if (backend_ != Backend::kEpoll) return;
  epoll_event event{};
  event.data.fd = fd;
  if (state.want_read) event.events |= EPOLLIN;
  if (state.want_write) event.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_, adding ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &event);
#else
  (void)fd;
  (void)state;
  (void)adding;
#endif
}

void EventLoop::add(int fd, bool want_read, bool want_write,
                    FdCallback callback) {
  FdState state;
  state.generation = next_generation_++;
  state.want_read = want_read;
  state.want_write = want_write;
  state.callback = std::move(callback);
  update_backend(fd, state, /*adding=*/true);
  fds_[fd] = std::move(state);
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  update_backend(fd, it->second, /*adding=*/false);
}

void EventLoop::remove(int fd) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
#if APPROXIT_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  fds_.erase(it);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks_.push_back(std::move(task));
  }
  if (wakeup_write_ >= 0) {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; ignore the result.
    [[maybe_unused]] const ssize_t n = ::write(wakeup_write_, &byte, 1);
  }
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_ = true;
  }
  if (wakeup_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeup_write_, &byte, 1);
  }
}

void EventLoop::drain_wakeup() {
  char sink[256];
  while (::read(wakeup_read_, sink, sizeof(sink)) > 0) {
  }
}

void EventLoop::run_posted() {
  // Swap out the current batch; tasks posted DURING the batch run next
  // round (prevents a self-posting task from starving the fds).
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

int EventLoop::wait_and_collect(
    int timeout_ms, std::vector<std::pair<int, std::uint32_t>>& ready) {
  ready.clear();
#if APPROXIT_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      std::uint32_t mask = 0;
      if (events[i].events & (EPOLLIN | EPOLLHUP)) mask |= kEventRead;
      if (events[i].events & EPOLLOUT) mask |= kEventWrite;
      if (events[i].events & EPOLLERR) mask |= kEventError;
      const int fd = events[i].data.fd;
      ready.emplace_back(fd, mask);
    }
    return n;
  }
#endif
  std::vector<pollfd> polled;
  polled.reserve(fds_.size());
  for (const auto& [fd, state] : fds_) {
    pollfd p{};
    p.fd = fd;
    if (state.want_read) p.events |= POLLIN;
    if (state.want_write) p.events |= POLLOUT;
    polled.push_back(p);
  }
  const int n = ::poll(polled.data(), polled.size(), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (const pollfd& p : polled) {
    if (p.revents == 0) continue;
    std::uint32_t mask = 0;
    if (p.revents & (POLLIN | POLLHUP)) mask |= kEventRead;
    if (p.revents & POLLOUT) mask |= kEventWrite;
    if (p.revents & (POLLERR | POLLNVAL)) mask |= kEventError;
    ready.emplace_back(p.fd, mask);
  }
  return n;
}

bool EventLoop::run_once(int timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (stop_) return false;
    // Pending tasks must not sit behind an indefinite wait.
    if (!tasks_.empty()) timeout_ms = 0;
  }
  std::vector<std::pair<int, std::uint32_t>> ready;
  if (wait_and_collect(timeout_ms, ready) < 0) return false;
  // Stamp each ready fd with its registration generation NOW, before any
  // callback runs: a callback that removes a neighbour (or closes it and
  // accepts a new connection onto the same fd number) must not have the
  // stale readiness delivered to the new registration.
  std::vector<std::uint64_t> generations(ready.size(), 0);
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const auto it = fds_.find(ready[i].first);
    if (it != fds_.end()) generations[i] = it->second.generation;
  }
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const auto [fd, mask] = ready[i];
    const auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.generation != generations[i]) {
      continue;
    }
    // The callback may remove this very fd; copy the handler first.
    const FdCallback callback = it->second.callback;
    callback(mask);
  }
  run_posted();
  std::lock_guard<std::mutex> lock(post_mutex_);
  return !stop_;
}

void EventLoop::run() {
  while (run_once(-1)) {
  }
}

}  // namespace approxit::net
