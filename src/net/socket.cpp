#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace approxit::net {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_port(std::string_view text, std::uint16_t& port) {
  if (text.empty() || text.size() > 5) return false;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  if (value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

/// Fills a sockaddr_in from the parsed (host, port); false on a host
/// that is not an accepted literal.
bool fill_inet(const Address& address, sockaddr_in& inet) {
  std::memset(&inet, 0, sizeof(inet));
  inet.sin_family = AF_INET;
  inet.sin_port = htons(address.port);
  return ::inet_pton(AF_INET, address.host.c_str(), &inet.sin_addr) == 1;
}

bool fill_unix(const Address& address, sockaddr_un& un,
               std::string* error) {
  std::memset(&un, 0, sizeof(un));
  un.sun_family = AF_UNIX;
  if (address.path.size() >= sizeof(un.sun_path)) {
    set_error(error, "unix socket path too long: " + address.path);
    return false;
  }
  std::memcpy(un.sun_path, address.path.c_str(), address.path.size() + 1);
  return true;
}

}  // namespace

std::optional<Address> parse_address(std::string_view text,
                                     std::string* error) {
  Address address;
  if (text.rfind("unix:", 0) == 0) {
    address.is_unix = true;
    address.path = std::string(text.substr(5));
    if (address.path.empty()) {
      set_error(error, "empty unix socket path");
      return std::nullopt;
    }
    return address;
  }
  std::string_view rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  std::string_view host = colon == std::string_view::npos
                              ? std::string_view()
                              : rest.substr(0, colon);
  const std::string_view port_text =
      colon == std::string_view::npos ? rest : rest.substr(colon + 1);
  if (!parse_port(port_text, address.port)) {
    set_error(error, "bad address (want unix:PATH, tcp:HOST:PORT or "
                     ":PORT): " + std::string(text));
    return std::nullopt;
  }
  if (host.empty() || host == "localhost") {
    address.host = "127.0.0.1";
  } else if (host == "*") {
    address.host = "0.0.0.0";
  } else {
    address.host = std::string(host);
  }
  sockaddr_in probe;
  if (!fill_inet(address, probe)) {
    set_error(error, "bad IPv4 host literal: " + address.host);
    return std::nullopt;
  }
  return address;
}

std::string address_to_string(const Address& address) {
  if (address.is_unix) return "unix:" + address.path;
  return "tcp:" + address.host + ":" + std::to_string(address.port);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return false;
  }
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC);
  return true;
}

int listen_socket(const Address& address, std::string* error) {
  const int fd =
      ::socket(address.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, errno_string("socket"));
    return -1;
  }
  bool bound = false;
  if (address.is_unix) {
    sockaddr_un un;
    if (fill_unix(address, un, error)) {
      // A stale socket file from a dead server would fail the bind.
      ::unlink(address.path.c_str());
      bound = ::bind(fd, reinterpret_cast<sockaddr*>(&un), sizeof(un)) == 0;
      if (!bound) set_error(error, errno_string("bind"));
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in inet;
    fill_inet(address, inet);
    bound =
        ::bind(fd, reinterpret_cast<sockaddr*>(&inet), sizeof(inet)) == 0;
    if (!bound) set_error(error, errno_string("bind"));
  }
  if (!bound || ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
    if (bound) set_error(error, errno_string("listen"));
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_socket(const Address& address, std::string* error) {
  const int fd =
      ::socket(address.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, errno_string("socket"));
    return -1;
  }
  int rc = -1;
  if (address.is_unix) {
    sockaddr_un un;
    if (!fill_unix(address, un, error)) {
      ::close(fd);
      return -1;
    }
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&un), sizeof(un));
    } while (rc != 0 && errno == EINTR);
  } else {
    sockaddr_in inet;
    fill_inet(address, inet);
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&inet), sizeof(inet));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (rc != 0) {
    set_error(error,
              errno_string("connect") + " (" + address_to_string(address) +
                  ")");
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<Address> local_address(int fd) {
  sockaddr_storage storage{};
  socklen_t length = sizeof(storage);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &length) !=
      0) {
    return std::nullopt;
  }
  Address address;
  if (storage.ss_family == AF_UNIX) {
    const auto* un = reinterpret_cast<const sockaddr_un*>(&storage);
    address.is_unix = true;
    address.path = un->sun_path;
    return address;
  }
  if (storage.ss_family == AF_INET) {
    const auto* inet = reinterpret_cast<const sockaddr_in*>(&storage);
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &inet->sin_addr, host, sizeof(host));
    address.host = host;
    address.port = ntohs(inet->sin_port);
    return address;
  }
  return std::nullopt;
}

std::unique_ptr<svc::LineClient> connect_client(const std::string& address,
                                                std::string* error) {
  const std::optional<Address> parsed = parse_address(address, error);
  if (!parsed) return nullptr;
  const int fd = connect_socket(*parsed, error);
  if (fd < 0) return nullptr;
  return std::make_unique<svc::LineClient>(fd, fd, /*owns_fds=*/true);
}

}  // namespace approxit::net
