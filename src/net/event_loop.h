// Single-threaded readiness event loop: the scheduling core of the
// socket front end (net/server.h).
//
// One loop thread multiplexes every connection: file descriptors are
// registered with a callback and a read/write interest mask, run()
// blocks in the OS readiness call and dispatches callbacks on the loop
// thread, and post() injects work from OTHER threads (a self-pipe wakes
// the blocked loop). Everything the serving path does with connection
// state therefore happens on one thread — the server needs no
// per-connection locks, and per-job event order is the loop's task
// order.
//
// Two backends behind one interface:
//
//   kEpoll  epoll(7), level-triggered — O(ready) dispatch, the Linux
//           production path;
//   kPoll   poll(2) over a rebuilt pollfd vector — portable fallback,
//           O(fds) per wait, used where epoll is missing (and in tests,
//           which run the same suite against both).
//
// Re-entrancy: callbacks may add(), modify() or remove() any fd —
// including their own — during dispatch. Dispatch works off a snapshot
// and re-checks each entry's registration GENERATION before invoking,
// so a callback that removes a neighbour (or closes a connection whose
// fd number is immediately reused) never sees a stale event.
//
// Thread-safety: post() and stop() may be called from any thread; all
// other methods are loop-thread-only (add() before run() is also fine).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace approxit::net {

/// Readiness bits delivered to fd callbacks.
enum : std::uint32_t {
  kEventRead = 1u << 0,   ///< fd readable (or peer closed).
  kEventWrite = 1u << 1,  ///< fd writable.
  kEventError = 1u << 2,  ///< Error/hangup condition on the fd.
};

/// The loop. See the header comment for the threading contract.
class EventLoop {
 public:
  enum class Backend {
    kEpoll,  ///< epoll(7) (Linux).
    kPoll,   ///< poll(2) fallback (portable).
  };

  using FdCallback = std::function<void(std::uint32_t events)>;

  /// The platform's preferred backend (kEpoll on Linux, else kPoll).
  static Backend default_backend();

  /// Builds the loop (wakeup self-pipe included). Falls back to kPoll if
  /// an epoll instance cannot be created.
  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Backend backend() const { return backend_; }

  /// Registers `fd` with the given interest set. The fd must be
  /// non-blocking; the callback runs on the loop thread.
  void add(int fd, bool want_read, bool want_write, FdCallback callback);

  /// Updates an fd's interest set (no-op for unregistered fds).
  void modify(int fd, bool want_read, bool want_write);

  /// Deregisters an fd (the caller closes it). Safe to call from the
  /// fd's own callback; no-op for unregistered fds.
  void remove(int fd);

  /// Enqueues `task` to run on the loop thread (FIFO). Thread-safe;
  /// wakes a blocked run(). Tasks posted from the loop thread run after
  /// the current dispatch round.
  void post(std::function<void()> task);

  /// Dispatches until stop(). Runs pending posted tasks between waits.
  void run();

  /// One wait-and-dispatch round with the given wait bound
  /// (-1 = indefinitely). Returns false once stop() has been requested.
  bool run_once(int timeout_ms);

  /// Requests run() to return after the current round. Thread-safe.
  void stop();

  std::size_t fd_count() const { return fds_.size(); }

 private:
  struct FdState {
    std::uint64_t generation = 0;
    bool want_read = false;
    bool want_write = false;
    FdCallback callback;
  };

  void update_backend(int fd, const FdState& state, bool adding);
  void drain_wakeup();
  void run_posted();
  int wait_and_collect(int timeout_ms,
                       std::vector<std::pair<int, std::uint32_t>>& ready);

  Backend backend_;
  int epoll_fd_ = -1;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;
  std::uint64_t next_generation_ = 1;
  std::map<int, FdState> fds_;

  std::mutex post_mutex_;  ///< Guards tasks_ and stop_ (cross-thread).
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace approxit::net
