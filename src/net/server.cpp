#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "svc/protocol.h"

namespace approxit::net {

namespace {

std::string stream_final_response(std::uint64_t id) {
  svc::WireWriter response;
  response.field("ok", true).field("op", "stream").field(
      "id", static_cast<std::int64_t>(id));
  return response.str();
}

}  // namespace

NetServer::NetServer(svc::ServingClient& client, NetServerConfig config)
    : client_(client), config_(std::move(config)), loop_(config_.backend) {}

NetServer::~NetServer() {
  // Sink removal synchronizes with the client's fan-out lock: after it
  // returns no runtime thread can be inside (or enter) our sink closure,
  // so posting into the loop can no longer race its destruction.
  if (sink_token_) client_.remove_event_sink(*sink_token_);
  for (auto& [id, connection] : connections_) ::close(connection.fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (bound_ && bound_->is_unix) ::unlink(bound_->path.c_str());
}

bool NetServer::start(std::string* error) {
  bound_ = parse_address(config_.address, error);
  if (!bound_) return false;
  listen_fd_ = listen_socket(*bound_, error);
  if (listen_fd_ < 0) return false;
  if (!bound_->is_unix) {
    // Resolve an ephemeral port to the address clients actually dial.
    if (const std::optional<Address> resolved = local_address(listen_fd_)) {
      bound_->port = resolved->port;
    }
  }
  listen_address_ = address_to_string(*bound_);
  loop_.add(listen_fd_, /*want_read=*/true, /*want_write=*/false,
            [this](std::uint32_t) { on_acceptable(); });
  // Runtime threads hand every JobEvent to the loop; post order IS
  // per-job causal order because the runtime emits causally and the
  // task queue is FIFO.
  sink_token_ = client_.add_event_sink([this](const svc::JobEvent& event) {
    loop_.post([this, event] { handle_job_event(event); });
  });
  return true;
}

void NetServer::run() { loop_.run(); }

void NetServer::stop() { loop_.stop(); }

// ---------------------------------------------------------------------------
// Accept / connection lifecycle

void NetServer::on_acceptable() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN — drained.
    }
    if (connections_.size() >= config_.max_connections) {
      metrics_.counter("net.connections.rejected").add();
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    if (!bound_->is_unix) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const std::uint64_t conn_id = next_conn_id_++;
    Connection& connection = connections_[conn_id];
    connection.id = conn_id;
    connection.fd = fd;
    fd_to_conn_[fd] = conn_id;
    loop_.add(fd, /*want_read=*/true, /*want_write=*/false,
              [this, conn_id](std::uint32_t events) {
                on_connection_event(conn_id, events);
              });
    metrics_.counter("net.connections.accepted").add();
    metrics_.gauge("net.connections.open")
        .set(static_cast<double>(connections_.size()));
    obs::emit_instant("net", "accept",
                      {obs::arg("conn", static_cast<std::size_t>(conn_id))});
    if (!enqueue_line(connection, svc::encode_hello_event())) {
      close_connection(conn_id, "backpressure");
    }
  }
}

void NetServer::close_connection(std::uint64_t conn_id, const char* reason) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  loop_.remove(it->second.fd);
  ::close(it->second.fd);
  fd_to_conn_.erase(it->second.fd);
  connections_.erase(it);
  metrics_.counter("net.connections.closed").add();
  if (std::strcmp(reason, "backpressure") == 0) {
    metrics_.counter("net.backpressure.disconnects").add();
  }
  metrics_.gauge("net.connections.open")
      .set(static_cast<double>(connections_.size()));
  obs::emit_instant("net", "disconnect",
                    {obs::arg("conn", static_cast<std::size_t>(conn_id)),
                     obs::arg("reason", reason)});
}

void NetServer::on_connection_event(std::uint64_t conn_id,
                                    std::uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  if (events & kEventError) {
    close_connection(conn_id, "error");
    return;
  }
  if (events & kEventWrite) {
    if (!flush_writes(it->second)) {
      close_connection(conn_id, "write_error");
      return;
    }
    update_interest(it->second);
  }
  if (events & kEventRead) on_readable(it->second);
}

// ---------------------------------------------------------------------------
// Reads and the request pipeline

void NetServer::on_readable(Connection& connection) {
  const std::uint64_t conn_id = connection.id;
  while (true) {
    char chunk[65536];
    const ssize_t n = ::read(connection.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn_id, "read_error");
      return;
    }
    if (n == 0) {
      close_connection(conn_id, "eof");
      return;
    }
    metrics_.counter("net.bytes.in").add(static_cast<double>(n));
    connection.inbuf.append(chunk, static_cast<std::size_t>(n));
  }
  extract_lines(connection);
  process_pending(conn_id);
}

void NetServer::extract_lines(Connection& connection) {
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = connection.inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    const std::size_t length = newline - start;
    if (connection.discarding) {
      // The tail of an over-budget request; its error response already
      // holds the pipeline slot.
      connection.discarding = false;
    } else if (length > config_.max_line) {
      PendingLine oversize;
      oversize.oversize = true;
      connection.pending.push_back(std::move(oversize));
    } else if (length > 0) {
      PendingLine line;
      line.line = connection.inbuf.substr(start, length);
      connection.pending.push_back(std::move(line));
      metrics_.counter("net.lines.in").add();
    }
    start = newline + 1;
  }
  connection.inbuf.erase(0, start);
  // A headless partial line over budget: stop buffering it, answer when
  // its newline finally arrives (the stdin front end's drain rule).
  if (!connection.discarding &&
      connection.inbuf.size() > config_.max_line) {
    connection.inbuf.clear();
    connection.discarding = true;
    PendingLine oversize;
    oversize.oversize = true;
    connection.pending.push_back(std::move(oversize));
  }
}

void NetServer::process_pending(std::uint64_t conn_id) {
  while (true) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    Connection& connection = it->second;
    if (connection.park != ParkKind::kNone || connection.pending.empty()) {
      update_interest(connection);
      return;
    }
    const PendingLine line = std::move(connection.pending.front());
    connection.pending.pop_front();
    if (!handle_line(connection, line)) return;  // Connection died.
  }
}

bool NetServer::handle_line(Connection& connection, const PendingLine& line) {
  const std::uint64_t conn_id = connection.id;
  if (line.oversize) {
    if (!enqueue_line(connection, svc::encode_parse_error("line too long"))) {
      close_connection(conn_id, "backpressure");
      return false;
    }
    return true;
  }
  std::string parse_error;
  const std::optional<svc::WireObject> request =
      svc::parse_wire_object(line.line, &parse_error);
  if (!request) {
    if (!enqueue_line(connection, svc::encode_parse_error(parse_error))) {
      close_connection(conn_id, "backpressure");
      return false;
    }
    return true;
  }
  // The shared synchronous path — identical answers to the stdin front
  // end by construction (it calls the same function).
  if (const std::optional<std::string> response =
          svc::dispatch_sync(client_, *request)) {
    if (!enqueue_line(connection, *response)) {
      close_connection(conn_id, "backpressure");
      return false;
    }
    return true;
  }
  switch (svc::classify_op(*request)) {
    case svc::OpKind::kResult:
      handle_result_op(connection, *request);
      break;
    case svc::OpKind::kStream:
      handle_stream_op(connection, *request);
      break;
    case svc::OpKind::kSubmitStream:
      handle_submit_stream(connection, *request);
      break;
    case svc::OpKind::kShutdown:
      handle_shutdown(connection);
      break;
    default:
      break;  // Unreachable: dispatch_sync answers everything else.
  }
  return connections_.count(conn_id) > 0;
}

void NetServer::handle_result_op(Connection& connection,
                                 const svc::WireObject& request) {
  const auto id = static_cast<std::uint64_t>(request.get_int("id", 0));
  const std::optional<svc::JobSnapshot> snapshot =
      client_.snapshot(id);
  if (!snapshot) {
    if (!enqueue_line(connection, svc::encode_error("result", "unknown_job"))) {
      close_connection(connection.id, "backpressure");
    }
    return;
  }
  if (svc::job_state_terminal(snapshot->state)) {
    const std::string response = svc::encode_status_response(
        "result", svc::job_status_from_snapshot(*snapshot),
        /*include_report=*/true);
    if (!enqueue_line(connection, response)) {
      close_connection(connection.id, "backpressure");
    }
    return;
  }
  // Live job: the pipeline parks until its terminal event unparks it —
  // result() semantics without blocking the loop thread.
  park(connection, ParkKind::kResult, id);
}

void NetServer::handle_stream_op(Connection& connection,
                                 const svc::WireObject& request) {
  const auto id = static_cast<std::uint64_t>(request.get_int("id", 0));
  const std::optional<svc::JobSnapshot> snapshot =
      client_.snapshot(id);
  if (!snapshot) {
    if (!enqueue_line(connection, svc::encode_error("stream", "unknown_job"))) {
      close_connection(connection.id, "backpressure");
    }
    return;
  }
  // Replay the current state as the first event (subscription semantics
  // identical to InProcessClient::stream — at-least-once, no regression).
  svc::JobEvent replay;
  replay.id = id;
  replay.tenant = snapshot->spec.tenant;
  replay.state = snapshot->state;
  replay.attempt = snapshot->attempts - 1;
  if (svc::job_state_terminal(snapshot->state)) {
    replay.kind = svc::JobEvent::Kind::kTerminal;
    const std::string terminal = svc::encode_terminal_event(
        replay, svc::job_status_from_snapshot(*snapshot));
    if (!enqueue_line(connection, terminal) ||
        !enqueue_line(connection, stream_final_response(id))) {
      close_connection(connection.id, "backpressure");
    }
    return;
  }
  replay.kind = snapshot->state == svc::JobState::kRunning
                    ? svc::JobEvent::Kind::kRunning
                    : svc::JobEvent::Kind::kQueued;
  if (!enqueue_line(connection, svc::encode_job_event(replay))) {
    close_connection(connection.id, "backpressure");
    return;
  }
  connection.streams.push_back({id, /*parks=*/true});
  park(connection, ParkKind::kStream, id);
}

void NetServer::handle_submit_stream(Connection& connection,
                                     const svc::WireObject& request) {
  std::string error;
  const std::optional<std::uint64_t> id =
      client_.submit(svc::job_spec_from_wire(request), &error);
  if (!id) {
    if (!enqueue_line(connection, svc::encode_error("submit", error))) {
      close_connection(connection.id, "backpressure");
    }
    return;
  }
  // The admission-time queued event is already POSTED (the sink fired
  // inside submit) but not yet dispatched — posted tasks run after this
  // callback — so registering now still catches it, after the response.
  svc::WireWriter response;
  response.field("ok", true).field("op", "submit").field(
      "id", static_cast<std::int64_t>(*id));
  if (!enqueue_line(connection, response.str())) {
    close_connection(connection.id, "backpressure");
    return;
  }
  connection.streams.push_back({*id, /*parks=*/false});
}

void NetServer::handle_shutdown(Connection& connection) {
  svc::WireWriter response;
  response.field("ok", true).field("op", "shutdown");
  enqueue_line(connection, response.str());
  stopping_ = true;
  // Push the acknowledgement out before the drain: the loop will not
  // spin again, so give each connection one bounded blocking flush.
  for (auto& [id, open_connection] : connections_) {
    const double deadline_us = obs::trace_now_us() + 2e6;
    while (!open_connection.outbuf.empty() &&
           obs::trace_now_us() < deadline_us) {
      pollfd p{};
      p.fd = open_connection.fd;
      p.events = POLLOUT;
      if (::poll(&p, 1, 100) <= 0) continue;
      if (!flush_writes(open_connection)) break;
    }
  }
  client_.shutdown();
  loop_.stop();
}

// ---------------------------------------------------------------------------
// Streaming fan-in (loop thread, posted by the event sink)

svc::JobStatus NetServer::terminal_status(const svc::JobEvent& event) {
  // The job is terminal (state committed before the event fired), so
  // result() returns immediately; a job retired in between falls back to
  // the event's own fields.
  if (std::optional<svc::JobStatus> status = client_.result(event.id)) {
    return *std::move(status);
  }
  svc::JobStatus status;
  status.id = event.id;
  status.state = event.state;
  status.attempts = event.attempt + 1;
  return status;
}

void NetServer::handle_job_event(const svc::JobEvent& event) {
  if (stopping_) return;
  const bool terminal = event.kind == svc::JobEvent::Kind::kTerminal;
  // Encodings and the terminal status are shared across subscribers.
  std::optional<std::string> event_line;
  std::optional<svc::JobStatus> status;
  std::vector<std::uint64_t> conn_ids;
  conn_ids.reserve(connections_.size());
  for (const auto& [id, connection] : connections_) conn_ids.push_back(id);
  for (const std::uint64_t conn_id : conn_ids) {
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // Closed earlier this round.
    Connection& connection = it->second;

    bool subscribed = false;
    bool parks = false;
    for (auto stream = connection.streams.begin();
         stream != connection.streams.end();) {
      if (stream->job != event.id) {
        ++stream;
        continue;
      }
      subscribed = true;
      if (terminal) {
        parks = stream->parks;
        stream = connection.streams.erase(stream);
      } else {
        ++stream;
      }
    }
    const bool result_waiting = terminal &&
                                connection.park == ParkKind::kResult &&
                                connection.park_job == event.id;
    if (!subscribed && !result_waiting) continue;

    if (terminal && !status) status = terminal_status(event);
    bool alive = true;
    if (subscribed) {
      if (!event_line) {
        event_line = terminal ? svc::encode_terminal_event(event, *status)
                              : svc::encode_job_event(event);
      }
      alive = enqueue_line(connection, *event_line);
      metrics_.counter("net.events.out").add();
      if (alive && terminal && parks) {
        alive = enqueue_line(connection, stream_final_response(event.id));
        if (alive) unpark(connection);
      }
    }
    if (alive && result_waiting) {
      alive = enqueue_line(connection,
                           svc::encode_status_response(
                               "result", *status, /*include_report=*/true));
      if (alive) unpark(connection);
    }
    if (!alive) {
      close_connection(conn_id, "backpressure");
      continue;
    }
    // Unparking may release buffered pipelined requests.
    process_pending(conn_id);
  }
}

// ---------------------------------------------------------------------------
// Writes, parking, interest

bool NetServer::enqueue_line(Connection& connection,
                             const std::string& line) {
  connection.outbuf += line;
  connection.outbuf.push_back('\n');
  metrics_.counter("net.lines.out").add();
  if (!flush_writes(connection)) return false;
  if (connection.outbuf.size() > config_.max_write_buffer) {
    obs::emit_instant(
        "net", "backpressure",
        {obs::arg("conn", static_cast<std::size_t>(connection.id)),
         obs::arg("buffered", connection.outbuf.size())});
    return false;
  }
  update_interest(connection);
  return true;
}

bool NetServer::flush_writes(Connection& connection) {
  std::size_t sent = 0;
  while (sent < connection.outbuf.size()) {
    const ssize_t n =
        ::send(connection.fd, connection.outbuf.data() + sent,
               connection.outbuf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.outbuf.erase(0, sent);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (sent > 0) {
    metrics_.counter("net.bytes.out").add(static_cast<double>(sent));
    connection.outbuf.erase(0, sent);
  }
  return true;
}

void NetServer::update_interest(Connection& connection) {
  const bool want_read = connection.park == ParkKind::kNone && !stopping_;
  const bool want_write = !connection.outbuf.empty();
  if (want_write != connection.want_write) {
    connection.want_write = want_write;
  }
  loop_.modify(connection.fd, want_read, want_write);
}

void NetServer::park(Connection& connection, ParkKind kind,
                     std::uint64_t job) {
  connection.park = kind;
  connection.park_job = job;
  // Flow control, not buffering: a parked pipeline stops reading.
  update_interest(connection);
}

void NetServer::unpark(Connection& connection) {
  connection.park = ParkKind::kNone;
  connection.park_job = 0;
  update_interest(connection);
}

}  // namespace approxit::net
