// NetServer: the networked serving front end.
//
// One EventLoop thread multiplexes every TCP / Unix-domain connection
// onto one in-process ServiceRuntime, through the SAME dispatch path the
// stdin front end uses (svc::dispatch_sync + svc/protocol.h), so the two
// modes answer byte-identically. What the loop adds over stdin serving:
//
//   Pipelining    each connection is a strictly ordered request ->
//                 response pipeline. Ops that must wait for a job
//                 (result on a live job, the stream op) PARK the
//                 pipeline — later requests stay buffered (and the
//                 connection's read interest drops: flow control, not
//                 buffering) until the job's terminal event unparks it.
//                 The loop thread itself never blocks on a job.
//   Streaming     submit+stream / stream subscriptions are fed by the
//                 InProcessClient event-sink fan-out: runtime threads
//                 hand each JobEvent to loop_.post(), the loop routes it
//                 to subscribed connections in post order — which is
//                 per-job causal order (queued -> running -> progress*
//                 -> terminal), because the runtime emits in causal
//                 order and post() is FIFO.
//   Backpressure  writes are buffered per connection and flushed on
//                 writability. A peer that reads slower than its
//                 subscriptions produce — outbuf beyond
//                 max_write_buffer — is DISCONNECTED (counted in
//                 net.backpressure.disconnects): one slow consumer must
//                 not grow unbounded state inside the server.
//
// Telemetry: net.* counters (accepted/closed/rejected/backpressure,
// bytes and lines in/out) plus an open-connections gauge live in the
// server's own registry — operational, not determinism-gated — and
// accept/disconnect/backpressure instants are traced under the "net"
// category with the connection id as the causal key.
//
// Threading: construct anywhere; start() binds; run() turns the calling
// thread into the loop thread until stop() (any thread) or a client's
// shutdown op. The shutdown op answers ok, drains the runtime, then
// stops the loop — socket parity with the stdin front end's shutdown.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "svc/client.h"

namespace approxit::net {

struct NetServerConfig {
  /// Listen address ("unix:PATH", "tcp:HOST:PORT", ":PORT").
  std::string address = "unix:/tmp/approxit.sock";
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 1024;
  /// Request-line cap; longer lines answer "parse_error: line too long"
  /// (the stdin front end's rule).
  std::size_t max_line = svc::kMaxWireLine;
  /// Buffered-write bound per connection; beyond it the peer is
  /// disconnected (slow-client backpressure). Must comfortably exceed
  /// the largest single response (reports run to megabytes).
  std::size_t max_write_buffer = std::size_t{16} << 20;
  /// Readiness backend (tests pin kPoll to cover the fallback).
  EventLoop::Backend backend = EventLoop::default_backend();
};

/// The front end. One instance per listen address.
class NetServer {
 public:
  /// `client` must outlive the server (it owns the runtime tier — a
  /// single InProcessClient or a sharded ShardRouter; the server
  /// registers an event sink on it for the streaming fan-out).
  NetServer(svc::ServingClient& client, NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens and registers the event sink. False with `error`
  /// set on bad address / bind failure.
  bool start(std::string* error = nullptr);

  /// Serves on the calling thread until stop() / a shutdown op.
  void run();

  /// Requests run() to return (thread-safe, idempotent).
  void stop();

  /// Canonical bound address (ephemeral TCP ports resolved) — what
  /// clients connect to. Valid after start().
  const std::string& listen_address() const { return listen_address_; }

  EventLoop& loop() { return loop_; }

  /// net.* counters/gauges (operational; see the header comment).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// A stream subscription on one connection. `parks` distinguishes the
  /// stream op (holds the pipeline, final response at terminal) from
  /// submit+stream (events interleave, no final response).
  struct StreamSub {
    std::uint64_t job = 0;
    bool parks = false;
  };

  /// What a parked pipeline is waiting for.
  enum class ParkKind { kNone, kResult, kStream };

  /// One buffered request line ("oversize" lines answer the parse error
  /// in their pipeline slot instead of being dispatched).
  struct PendingLine {
    std::string line;
    bool oversize = false;
  };

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    bool want_write = false;
    bool discarding = false;  ///< Draining an oversize request line.
    std::deque<PendingLine> pending;
    ParkKind park = ParkKind::kNone;
    std::uint64_t park_job = 0;
    std::vector<StreamSub> streams;
  };

  void on_acceptable();
  void on_connection_event(std::uint64_t conn_id, std::uint32_t events);
  void on_readable(Connection& connection);
  void extract_lines(Connection& connection);
  void process_pending(std::uint64_t conn_id);
  /// Handles one request line; returns false when the connection died.
  bool handle_line(Connection& connection, const PendingLine& line);
  void handle_result_op(Connection& connection,
                        const svc::WireObject& request);
  void handle_stream_op(Connection& connection,
                        const svc::WireObject& request);
  void handle_submit_stream(Connection& connection,
                            const svc::WireObject& request);
  void handle_shutdown(Connection& connection);
  /// Routes one runtime JobEvent (loop thread) to subscriptions and
  /// parked pipelines.
  void handle_job_event(const svc::JobEvent& event);
  /// Terminal status for an event, report attached; falls back to the
  /// event's own fields when the job was already retired.
  svc::JobStatus terminal_status(const svc::JobEvent& event);

  /// Appends + flushes; false when the write buffer crossed the
  /// backpressure bound or the write failed (caller closes).
  bool enqueue_line(Connection& connection, const std::string& line);
  /// Writes what the socket accepts; false on a hard write error.
  bool flush_writes(Connection& connection);
  void update_interest(Connection& connection);
  void park(Connection& connection, ParkKind kind, std::uint64_t job);
  void unpark(Connection& connection);
  void close_connection(std::uint64_t conn_id, const char* reason);

  svc::ServingClient& client_;
  NetServerConfig config_;
  EventLoop loop_;
  obs::MetricsRegistry metrics_;
  int listen_fd_ = -1;
  std::optional<Address> bound_;  ///< Parsed + resolved listen address.
  std::string listen_address_;
  std::optional<std::uint64_t> sink_token_;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;
  std::map<int, std::uint64_t> fd_to_conn_;
  bool stopping_ = false;
};

}  // namespace approxit::net
