// Listen/connect address plumbing for the socket front end.
//
// One textual address grammar serves approxit_serve --listen,
// approxit_client --connect, the benches and the tests:
//
//   unix:PATH         Unix-domain stream socket at PATH
//   tcp:HOST:PORT     TCP; HOST is a dotted-quad IPv4 literal, or the
//                     aliases "localhost" (127.0.0.1) and "*" (0.0.0.0)
//   :PORT             shorthand for tcp:127.0.0.1:PORT
//
// Name resolution is deliberately NOT performed — a serving control
// plane should not block on DNS; callers pass literals. TCP port 0
// binds an ephemeral port; local_address() recovers the bound address
// (the form tests use to connect to an ephemeral listener).
//
// All helpers return -1 / nullopt with `error` set instead of throwing;
// listener fds come back non-blocking + CLOEXEC (with SO_REUSEADDR on
// TCP, and a stale socket file unlinked for Unix paths), connect fds
// come back blocking (LineClient reads blockingly) with TCP_NODELAY on
// TCP (one request line per write must not wait out Nagle).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "svc/client.h"

namespace approxit::net {

/// A parsed listen/connect address.
struct Address {
  bool is_unix = false;
  std::string path;  ///< Unix socket path.
  std::string host;  ///< IPv4 literal (aliases resolved).
  std::uint16_t port = 0;
};

/// Parses the textual grammar above; nullopt with `error` on bad input.
std::optional<Address> parse_address(std::string_view text,
                                     std::string* error = nullptr);

/// The canonical textual form ("unix:/p" / "tcp:1.2.3.4:5").
std::string address_to_string(const Address& address);

/// Binds + listens. Returns the listener fd (non-blocking, CLOEXEC), or
/// -1 with `error` set.
int listen_socket(const Address& address, std::string* error = nullptr);

/// Connects (blocking). Returns the fd, or -1 with `error` set.
int connect_socket(const Address& address, std::string* error = nullptr);

/// The locally bound address of a listener/connected fd — what to
/// connect to after binding TCP port 0. nullopt for non-socket fds.
std::optional<Address> local_address(int fd);

/// Sets O_NONBLOCK (and FD_CLOEXEC). Returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Connects and wraps the fd in the unified client API. nullptr with
/// `error` set on parse/connect failure. (Lives here, not in svc:
/// transports stack on net, never the reverse.)
std::unique_ptr<svc::LineClient> connect_client(const std::string& address,
                                                std::string* error = nullptr);

}  // namespace approxit::net
