// Umbrella header: the ApproxIt public API in one include.
//
//   #include "approxit.h"
//
// Layering (each header is independently includable):
//
//   util/       deterministic RNG, stats, tables, CSV, CLI, logging
//   obs/        observability: structured trace events + sinks (ring,
//               JSONL, Chrome trace-event) and the mergeable metrics
//               registry; free when disabled, never perturbs results
//   arith/      the quality-configurable hardware substrate:
//                 - mode.h            the five approximation modes
//                 - adder.h + exact_adders.h + approx_adders.h
//                                     bit-accurate adder models
//                 - multipliers.h     adder-composed multiplier models
//                 - fixed_point.h     Q-format quantization layer
//                 - context.h         ArithContext seam (exact | approximate)
//                 - alu.h             QcsAlu: mode-switchable datapath
//                 - error_metrics.h   ER/ME/MED/MRED/WCE characterization
//                 - wce_analysis.h    analytic worst-case error bounds
//                 - energy.h          structural + toggle energy models
//                 - fault_injector.h  FaultyQcsAlu: transient-fault model
//   la/         dense + sparse CSR linear algebra (exact and
//               context-routed kernels; deterministic sharded SpMV)
//   opt/        IterativeMethod interface, problems and solvers
//   core/       ApproxIt itself: characterization, strategies, session
//               (+ SessionBuilder, RuntimeHooks), guarantees, watchdog +
//               checkpointed recovery, oracle, sweep/Pareto analysis,
//               report export
//   workloads/  seeded synthetic datasets, graphs, series, classification
//   apps/       GMM-EM, AutoRegression, K-means, PageRank
//   svc/        serving runtime: multi-tenant job scheduler with admission
//               control over a content-addressed characterization-profile
//               cache (LRU + on-disk store), plus the line-JSON wire format
//               of tools/approxit_serve
//
// Minimal usage (the fluent front door):
//
//   arith::QcsAlu alu;                        // 4 approx levels + accurate
//   MyMethod method(...);                     // an opt::IterativeMethod
//   core::IncrementalStrategy strategy;       // or AdaptiveAngleStrategy
//   core::RunReport report = core::SessionBuilder()
//                                .method(method)
//                                .strategy(strategy)
//                                .alu(alu)
//                                .run();      // characterize + reconfigure
//
// The `approxit::v1` alias namespace below pins today's entry points for
// out-of-tree callers: spell `approxit::v1::core::SessionBuilder` and a
// future incompatible redesign can land as v2 without breaking you.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

#include "arith/alu.h"
#include "arith/approx_adders.h"
#include "arith/context.h"
#include "arith/energy.h"
#include "arith/error_metrics.h"
#include "arith/exact_adders.h"
#include "arith/fault_injector.h"
#include "arith/fixed_point.h"
#include "arith/mode.h"
#include "arith/multipliers.h"
#include "arith/wce_analysis.h"

#include "la/decomp.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "la/vector_ops.h"

#include "opt/conjugate_gradient.h"
#include "opt/gradient_descent.h"
#include "opt/iterative_method.h"
#include "opt/line_search.h"
#include "opt/linear_stationary.h"
#include "opt/logistic.h"
#include "opt/newton.h"
#include "opt/nonlinear_cg.h"
#include "opt/problem.h"

#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/guarantees.h"
#include "core/incremental_strategy.h"
#include "core/mode_mix.h"
#include "core/oracle.h"
#include "core/pareto.h"
#include "core/pid_strategy.h"
#include "core/quality.h"
#include "core/report_io.h"
#include "core/runtime_hooks.h"
#include "core/session.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "core/sweep.h"
#include "core/watchdog.h"

#include "workloads/datasets.h"
#include "workloads/graphs.h"

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"

#include "svc/profile_cache.h"
#include "svc/runtime.h"
#include "svc/wire.h"

// Versioned entry points. `approxit::v1` aliases the current layer
// namespaces; code written against it keeps compiling when the unversioned
// namespaces move on to an incompatible v2.
namespace approxit::v1 {
namespace util = ::approxit::util;
namespace obs = ::approxit::obs;
namespace arith = ::approxit::arith;
namespace la = ::approxit::la;
namespace opt = ::approxit::opt;
namespace core = ::approxit::core;
namespace workloads = ::approxit::workloads;
namespace apps = ::approxit::apps;
namespace svc = ::approxit::svc;
}  // namespace approxit::v1
