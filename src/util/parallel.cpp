#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace approxit::util {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("APPROXIT_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  const std::size_t workers = std::min(threads, count);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = count;
  std::exception_ptr first_error;

  const auto worker_loop = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back(worker_loop);
  }
  worker_loop();  // The calling thread is worker 0.
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace approxit::util
