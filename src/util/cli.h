// Tiny command-line flag parser for bench/example binaries.
//
// Supported syntax: --name=value, --name value, and boolean --name.
// Unknown flags raise an error listing the registered options, so every
// bench binary gets a usable --help for free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace approxit::util {

/// Declarative flag set. Register flags with defaults, parse argv, and read
/// values back with the typed getters.
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a string flag with a default value.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested; throws std::invalid_argument on unknown flags or missing
  /// values.
  bool parse(int argc, const char* const* argv);

  /// Typed getters; throw std::invalid_argument on conversion failure or
  /// unregistered flag name.
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help string.
  std::string usage(const std::string& program_name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace approxit::util
