// Minimal work pool for coarse-grained parallelism (sweep arms,
// characterization trials, bench repetitions).
//
// The unit of work is an INDEX: run(count, task) executes task(i) for every
// i in [0, count) across the workers. Callers store results by index, so the
// output is deterministic regardless of which worker ran which index or in
// what order — the scheduling is the only nondeterministic part, and it is
// invisible as long as tasks are independent (each sweep arm owns its own
// ALU + method instance; see QcsAlu::clone_fresh).
#pragma once

#include <cstddef>
#include <functional>

namespace approxit::util {

/// Worker count to use by default: the APPROXIT_THREADS environment
/// variable when set (clamped to >= 1), otherwise the hardware concurrency
/// (>= 1).
std::size_t default_thread_count();

/// Runs task(i) for i in [0, count) on up to `threads` workers and returns
/// when all are done. threads <= 1 (or count <= 1) runs inline, in index
/// order, with no thread machinery at all — byte-identical to a plain loop.
/// Tasks must be independent; results must be written to index-addressed
/// slots. If tasks throw, the exception of the lowest failing index is
/// rethrown after all workers finish.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& task);

}  // namespace approxit::util
