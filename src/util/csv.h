// CSV emission for experiment artifacts (Figure 3 scatter dumps, Figure 4
// energy series). Quoting follows RFC 4180: fields containing a comma, quote
// or newline are quoted, with embedded quotes doubled.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace approxit::util {

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Joins fields into one CSV record (no trailing newline).
std::string csv_join(const std::vector<std::string>& fields);

/// Streaming CSV writer bound to a file. Throws std::runtime_error if the
/// file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Writes one record; fields are escaped automatically.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience overload converting doubles with max precision.
  void write_row_numeric(const std::vector<double>& values);

  /// Number of records written so far.
  std::size_t rows_written() const { return rows_; }

  /// Flushes and closes the file (also done by the destructor).
  void close();

 private:
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace approxit::util
