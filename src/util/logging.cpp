#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <iostream>

namespace approxit::util {
namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("APPROXIT_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}

// Atomic: parallel sweep arms log while benches call set_log_level, so the
// old "thread-compatible, no concurrent set/log" contract was not enough.
std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::atomic<LogHook>& hook_storage() {
  static std::atomic<LogHook> hook{nullptr};
  return hook;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return level_storage().load(std::memory_order_relaxed);
}

void set_log_hook(LogHook hook) {
  hook_storage().store(hook, std::memory_order_release);
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < log_level()) {
    return;
  }
  std::cerr << "[" << to_string(level) << "] " << component << ": " << message
            << '\n';
  if (level >= LogLevel::kWarn && level < LogLevel::kOff) {
    if (const LogHook hook = hook_storage().load(std::memory_order_acquire)) {
      hook(level, component, message);
    }
  }
}

}  // namespace approxit::util
