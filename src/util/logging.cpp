#include "util/logging.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <iostream>

namespace approxit::util {
namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("APPROXIT_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}

LogLevel& level_storage() {
  static LogLevel level = initial_level();
  return level;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) { level_storage() = level; }

LogLevel log_level() { return level_storage(); }

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < log_level()) {
    return;
  }
  std::cerr << "[" << to_string(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace approxit::util
