// Summary statistics helpers shared by the error-metric characterization,
// workload generators and the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace approxit::util {

/// Single-pass accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram accumulator over [lo, hi) with exact side
/// moments (RunningStats) and interpolated quantile extraction — the
/// sketch behind the observability layer's obs::Histogram metric.
///
/// Out-of-range observations are clamped into the first/last bucket,
/// exactly like the free histogram() function. Two accumulators with the
/// same layout merge bucket-wise; bucket counts and min/max merge exactly,
/// so merging is associative up to floating-point rounding of the Welford
/// moments (the parallel work-pool reduction relies on this).
class BucketHistogram {
 public:
  /// Degenerate empty layout; add() is a no-op until assigned a real one.
  BucketHistogram() = default;

  /// Throws std::invalid_argument unless hi > lo and bins >= 1.
  BucketHistogram(double lo, double hi, std::size_t bins);

  /// Records one observation (clamped into the edge buckets).
  void add(double x);

  /// Merges another accumulator; throws std::invalid_argument when the
  /// bucket layouts differ.
  void merge(const BucketHistogram& other);

  /// True when both layouts have the same [lo, hi) range and bin count.
  bool same_layout(const BucketHistogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

  /// Interpolated quantile, p in [0, 100]: the crossing bucket is found by
  /// cumulative count and the position inside it is interpolated linearly,
  /// then clamped to the exact observed [min, max]. 0 when empty.
  double quantile(double p) const;

  /// Shorthands for the standard latency quantiles.
  double p50() const { return quantile(50.0); }
  double p90() const { return quantile(90.0); }
  double p99() const { return quantile(99.0); }

  std::size_t count() const { return stats_.count(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }

  /// Exact single-pass moments (mean/variance/min/max/sum) of everything
  /// added, unaffected by bucket clamping.
  const RunningStats& stats() const { return stats_; }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<std::size_t> counts_;
  RunningStats stats_;
};

/// Arithmetic mean of a span; 0 when empty.
double mean(std::span<const double> values);

/// Unbiased sample variance; 0 with fewer than two values.
double variance(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> values, double p);

/// Median (percentile 50).
double median(std::span<const double> values);

/// Pearson correlation of two equal-length spans; 0 if degenerate.
double correlation(std::span<const double> x, std::span<const double> y);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins);

}  // namespace approxit::util
