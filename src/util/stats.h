// Summary statistics helpers shared by the error-metric characterization,
// workload generators and the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace approxit::util {

/// Single-pass accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a span; 0 when empty.
double mean(std::span<const double> values);

/// Unbiased sample variance; 0 with fewer than two values.
double variance(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> values, double p);

/// Median (percentile 50).
double median(std::span<const double> values);

/// Pearson correlation of two equal-length spans; 0 if degenerate.
double correlation(std::span<const double> x, std::span<const double> y);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins);

}  // namespace approxit::util
