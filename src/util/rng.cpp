#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace approxit::util {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& s : state_) {
    s = seeder.next();
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  // Guard against log(0).
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Combine current state and stream id through SplitMix for decorrelation.
  SplitMix64 mixer(state_[0] ^ rotl(state_[3], 13) ^
                   (stream_id * 0xD1342543DE82EF95ULL + 0x9E3779B97F4A7C15ULL));
  return Rng(mixer.next());
}

}  // namespace approxit::util
