#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace approxit::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += csv_escape(fields[i]);
  }
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_join(fields) << '\n';
  ++rows_;
}

void CsvWriter::write_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    fields.push_back(os.str());
  }
  write_row(fields);
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.close();
  }
}

}  // namespace approxit::util
