// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (dataset generators, Monte
// Carlo adder characterization) draws from these seeded generators, so runs
// are bit-reproducible — a prerequisite for the paper's quality-evaluation
// metric, which compares an approximate run against the exact run on
// identical inputs.
#pragma once

#include <cstdint>

namespace approxit::util {

/// SplitMix64: tiny, high-quality 64-bit generator; also used to seed
/// Xoshiro256** streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the repository's default generator. Fast, 256-bit state,
/// passes BigCrush; seeded deterministically from a single 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound); bound must be positive. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Standard normal via Box-Muller (cached second variate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Forks an independent stream: deterministic function of this generator's
  /// current state and `stream_id`; does not advance this generator.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace approxit::util
