#include "util/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace approxit::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argc > 0 ? argv[0] : "prog");
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name + "\n" +
                                  usage(argc > 0 ? argv[0] : "prog"));
    }
    if (!has_value) {
      // Boolean-style flag or space-separated value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: --" + name);
  }
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(v, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  std::string v = find(name).value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off" || v.empty()) {
    return false;
  }
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

std::string CliParser::usage(const std::string& program_name) const {
  std::ostringstream os;
  os << description_ << "\n\nUsage: " << program_name << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: "
       << (flag.default_value.empty() ? "\"\"" : flag.default_value) << ")\n"
       << "      " << flag.help << '\n';
  }
  return os.str();
}

}  // namespace approxit::util
