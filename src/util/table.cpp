#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace approxit::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  align_.resize(header_.size(), Align::kRight);
  if (!align_.empty()) {
    align_[0] = Align::kLeft;
  }
}

void Table::set_align(std::size_t column, Align align) {
  if (align_.size() <= column) {
    align_.resize(column + 1, Align::kRight);
  }
  align_[column] = align;
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void Table::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::size_t Table::row_count() const {
  std::size_t n = 0;
  for (const Row& row : rows_) {
    if (!row.separator) ++n;
  }
  return n;
}

std::string Table::render() const {
  std::size_t columns = header_.size();
  for (const Row& row : rows_) {
    columns = std::max(columns, row.cells.size());
  }
  std::vector<std::size_t> width(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto pad = [&](const std::string& text, std::size_t column) {
    const std::size_t w = width[column];
    const Align align =
        column < align_.size() ? align_[column] : Align::kRight;
    std::string out(w, ' ');
    if (text.size() >= w) {
      return text;
    }
    if (align == Align::kLeft) {
      out.replace(0, text.size(), text);
    } else {
      out.replace(w - text.size(), text.size(), text);
    }
    return out;
  };

  std::size_t total = columns > 0 ? (columns - 1) * 3 : 0;
  for (std::size_t w : width) total += w;

  std::ostringstream os;
  const std::string rule(total, '-');
  if (!title_.empty()) {
    os << title_ << '\n';
  }
  os << rule << '\n';
  if (!header_.empty()) {
    for (std::size_t c = 0; c < columns; ++c) {
      if (c > 0) os << " | ";
      os << pad(c < header_.size() ? header_[c] : "", c);
    }
    os << '\n' << rule << '\n';
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      os << rule << '\n';
      continue;
    }
    for (std::size_t c = 0; c < columns; ++c) {
      if (c > 0) os << " | ";
      os << pad(c < row.cells.size() ? row.cells[c] : "", c);
    }
    os << '\n';
  }
  os << rule << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

std::string format_sig(double value, int digits) {
  if (!std::isfinite(value)) {
    return std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

std::string format_fixed(double value, int digits) {
  if (!std::isfinite(value)) {
    return std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double ratio, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, ratio * 100.0);
  return buffer;
}

}  // namespace approxit::util
