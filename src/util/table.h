// ASCII table rendering used by the benchmark harness to print the paper's
// tables (Table 2, Table 3(a)/(b), Table 4(a)/(b)) in a readable layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace approxit::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set a title and headers, append rows of strings, and
/// render with column widths auto-fit to the content.
///
/// Rows shorter than the header are padded with empty cells; longer rows
/// extend the column count.
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the table title printed above the header rule.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Sets the header row and per-column default alignment (right for all
  /// columns except the first, which is left-aligned).
  void set_header(std::vector<std::string> header);

  /// Overrides alignment for one column (0-based).
  void set_align(std::size_t column, Align align);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator rule between data rows.
  void add_separator();

  /// Number of data rows added so far (separators excluded).
  std::size_t row_count() const;

  /// Renders the table to a string, including a trailing newline.
  std::string render() const;

  /// Streams render() output.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
};

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("0.0513", "126", "4.43").
std::string format_sig(double value, int digits = 3);

/// Formats a double with fixed `digits` digits after the decimal point.
std::string format_fixed(double value, int digits = 3);

/// Formats a ratio as a percentage string, e.g. 0.524 -> "52.4%".
std::string format_percent(double ratio, int digits = 1);

}  // namespace approxit::util
