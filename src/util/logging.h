// Minimal leveled logger for the ApproxIt library.
//
// The library itself logs sparingly (characterization summaries, strategy
// decisions at debug level); applications and benches control verbosity via
// set_level() or the APPROXIT_LOG environment variable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace approxit::util {

/// Severity levels, ordered. Messages below the active level are dropped.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the human-readable name of a level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level);

/// Parses a level name (case-insensitive); returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view name);

/// Sets the global log level. Thread-safe: the level is an atomic, so
/// benches may lower verbosity while parallel sweep arms are logging.
void set_log_level(LogLevel level);

/// Returns the current global log level. The initial value is taken from the
/// APPROXIT_LOG environment variable if set, otherwise kWarn.
LogLevel log_level();

/// Observer invoked (after the stderr write) for every emitted log line of
/// severity >= kWarn. The observability layer installs a bridge here that
/// turns warnings/errors into trace events, so traces capture them in
/// context; util stays free of any obs dependency.
using LogHook = void (*)(LogLevel level, std::string_view component,
                         std::string_view message);

/// Installs (or, with nullptr, removes) the warn-and-above observer.
/// Thread-safe with respect to concurrent log_message calls.
void set_log_hook(LogHook hook);

/// Emits one formatted log line to stderr if `level` passes the filter.
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

/// Stream-style log statement builder:
///   LogStream(LogLevel::kInfo, "core") << "converged in " << n << " iters";
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace approxit::util

#define APPROXIT_LOG(level, component)                                \
  if (::approxit::util::log_level() <= (level))                       \
  ::approxit::util::LogStream((level), (component))
