#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace approxit::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

BucketHistogram::BucketHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument(
        "BucketHistogram: need hi > lo and at least one bin");
  }
}

void BucketHistogram::add(double x) {
  if (counts_.empty()) return;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double idx = (x - lo_) / width;
  std::size_t b;
  if (!(idx >= 0.0)) {  // also catches NaN -> first bucket
    b = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    b = counts_.size() - 1;
  } else {
    b = static_cast<std::size_t>(idx);
  }
  ++counts_[b];
  stats_.add(x);
}

void BucketHistogram::merge(const BucketHistogram& other) {
  if (other.count() == 0 && other.counts_.empty()) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (!same_layout(other)) {
    throw std::invalid_argument("BucketHistogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  stats_.merge(other.stats_);
}

double BucketHistogram::quantile(double p) const {
  const std::size_t total = stats_.count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  // Rank in [1, total]; find the bucket whose cumulative count reaches it
  // and interpolate within the bucket by the fraction of the rank covered.
  const double rank =
      std::max(1.0, p / 100.0 * static_cast<double>(total));
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double frac = (rank - before) / static_cast<double>(counts_[i]);
      const double value =
          lo_ + (static_cast<double>(i) + frac) * width;
      // The edge buckets absorb clamped outliers; the exact observed range
      // is a tighter bound than the bucket edges.
      return std::clamp(value, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(values.size() - 1);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || !(hi > lo)) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    double idx = (v - lo) / width;
    std::size_t b;
    if (idx < 0.0) {
      b = 0;
    } else if (idx >= static_cast<double>(bins)) {
      b = bins - 1;
    } else {
      b = static_cast<std::size_t>(idx);
    }
    ++counts[b];
  }
  return counts;
}

}  // namespace approxit::util
