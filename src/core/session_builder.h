// Fluent construction of ApproxItSession runs — the front door of the
// public API.
//
//   core::RunReport report = core::SessionBuilder()
//                                .method(solver)
//                                .strategy(strategy)
//                                .alu(alu)
//                                .metrics(&registry)
//                                .run();
//
// The builder names every knob the positional three-reference constructor
// left implicit (options, hooks, a precomputed or cached characterization)
// and validates the wiring before anything runs. The old constructor stays
// for code that already holds the three references; build() delegates to
// it, so builder-built and constructor-built sessions are bit-identical.
#pragma once

#include <string>

#include "core/session.h"

namespace approxit::core {

/// Accumulates the references and options of one session, then builds it.
/// References passed in must outlive the built session (same contract as
/// the ApproxItSession constructor). The builder is a value: it can be
/// copied, staged, and reused to build several identically wired sessions.
class SessionBuilder {
 public:
  /// The iterative method to drive (required).
  SessionBuilder& method(opt::IterativeMethod& method) {
    method_ = &method;
    return *this;
  }

  /// The reconfiguration strategy (required).
  SessionBuilder& strategy(Strategy& strategy) {
    strategy_ = &strategy;
    return *this;
  }

  /// The QCS ALU the resilient arithmetic routes through (required).
  SessionBuilder& alu(arith::QcsAlu& alu) {
    alu_ = &alu;
    return *this;
  }

  /// Replaces the whole option block (max iterations, trace retention,
  /// watchdog, hooks).
  SessionBuilder& options(const SessionOptions& options) {
    options_ = options;
    return *this;
  }

  /// Iteration cap; 0 (default) uses the method's max_iterations().
  SessionBuilder& max_iterations(std::size_t cap) {
    options_.max_iterations = cap;
    return *this;
  }

  /// Whether run() records the full per-iteration trace.
  SessionBuilder& keep_trace(bool keep) {
    options_.keep_trace = keep;
    return *this;
  }

  /// Convergence-watchdog / recovery-ladder configuration.
  SessionBuilder& watchdog(const WatchdogConfig& config) {
    options_.watchdog = config;
    return *this;
  }

  /// Metrics registry hook (RuntimeHooks::metrics); nullptr detaches.
  SessionBuilder& metrics(obs::MetricsRegistry* registry) {
    options_.hooks.metrics = registry;
    return *this;
  }

  /// Trace sink hook (RuntimeHooks::trace_sink); nullptr leaves the
  /// process sink untouched.
  SessionBuilder& trace(obs::TraceSink* sink) {
    options_.hooks.trace_sink = sink;
    return *this;
  }

  /// Cooperative cancellation/deadline token (SessionOptions::cancel).
  /// Also threaded into the offline stage when the session has to
  /// characterize itself, so a deadline can stop a run in either stage.
  SessionBuilder& cancel(CancelToken token) {
    options_.cancel = token;
    characterization_options_.cancel = std::move(token);
    return *this;
  }

  /// Per-iteration progress callback (SessionOptions::on_progress); an
  /// empty function detaches. Pure observation — results are
  /// bit-identical with or without it.
  SessionBuilder& on_progress(
      std::function<void(const SessionProgress&)> callback) {
    options_.on_progress = std::move(callback);
    return *this;
  }

  /// Injects a precomputed characterization (shared across sessions over
  /// the same workload). Takes precedence over profile_cache().
  SessionBuilder& characterization(const ModeCharacterization& profile) {
    characterization_ = profile;
    have_characterization_ = true;
    return *this;
  }

  /// Options for the offline stage when the session has to characterize
  /// itself (no precomputed profile, or a cache miss).
  SessionBuilder& characterization_options(
      const CharacterizationOptions& options) {
    characterization_options_ = options;
    return *this;
  }

  /// Serves the offline stage through `cache`: the built session looks up
  /// the profile under a key derived from the method, ALU,
  /// characterization options and `workload_tag` (the dataset's seed/shape
  /// identity), and only characterizes — then stores — on a miss. The
  /// cache must outlive the session.
  SessionBuilder& profile_cache(CharacterizationCache* cache,
                                std::string workload_tag) {
    cache_ = cache;
    workload_tag_ = std::move(workload_tag);
    return *this;
  }

  /// The accumulated option block (what run() will pass to the session).
  const SessionOptions& session_options() const { return options_; }

  /// Builds the session. Throws std::logic_error when method, strategy or
  /// ALU is missing, or when profile_cache() was given no workload tag.
  ApproxItSession build() const;

  /// Convenience: build(), resolve the characterization (precomputed >
  /// cache > fresh), and run with the accumulated options.
  RunReport run() const;

 private:
  opt::IterativeMethod* method_ = nullptr;
  Strategy* strategy_ = nullptr;
  arith::QcsAlu* alu_ = nullptr;
  SessionOptions options_;
  CharacterizationOptions characterization_options_;
  ModeCharacterization characterization_;
  bool have_characterization_ = false;
  CharacterizationCache* cache_ = nullptr;
  std::string workload_tag_;
};

}  // namespace approxit::core
