#include "core/mode_mix.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace approxit::core {

ModeMix solve_mode_mix(const std::array<double, arith::kNumModes>& energies,
                       const std::array<double, arith::kNumModes>& errors,
                       double budget, double floor) {
  constexpr std::size_t n = arith::kNumModes;
  if (floor < 0.0 || floor * static_cast<double>(n) >= 1.0) {
    throw std::invalid_argument("solve_mode_mix: floor must be in [0, 1/n)");
  }
  for (double e : errors) {
    if (e < 0.0 || std::isnan(e)) {
      throw std::invalid_argument("solve_mode_mix: errors must be >= 0");
    }
  }
  const double E = std::max(0.0, budget);

  // Substitute omega_i = floor + v_i with v_i >= 0:
  //   sum v_i = V,  sum v_i eps_i <= E',  min sum v_i J_i.
  const double V = 1.0 - floor * static_cast<double>(n);
  double floor_error = 0.0;
  double floor_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    floor_error += floor * errors[i];
    floor_energy += floor * energies[i];
  }
  const double budget_v = E - floor_error;

  double best_energy = std::numeric_limits<double>::infinity();
  std::array<double, n> best_v{};
  bool found = false;

  // Vertex type 1: all free mass on a single mode.
  for (std::size_t i = 0; i < n; ++i) {
    if (V * errors[i] <= budget_v + 1e-15) {
      const double energy = V * energies[i];
      if (energy < best_energy) {
        best_energy = energy;
        best_v.fill(0.0);
        best_v[i] = V;
        found = true;
      }
    }
  }

  // Vertex type 2: the error constraint is active between two modes.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || errors[i] == errors[j]) continue;
      // v_i eps_i + v_j eps_j = budget_v, v_i + v_j = V.
      const double vi = (budget_v - V * errors[j]) / (errors[i] - errors[j]);
      const double vj = V - vi;
      if (vi < -1e-12 || vj < -1e-12) continue;
      const double energy = vi * energies[i] + vj * energies[j];
      if (energy < best_energy) {
        best_energy = energy;
        best_v.fill(0.0);
        best_v[i] = std::max(0.0, vi);
        best_v[j] = std::max(0.0, vj);
        found = true;
      }
    }
  }

  ModeMix out;
  if (!found) {
    // Even the floors alone exceed the budget: fall back to the most
    // accurate assignment and flag infeasibility.
    best_v.fill(0.0);
    best_v[arith::mode_index(arith::ApproxMode::kAccurate)] = V;
    out.feasible = false;
  }
  out.energy = floor_energy;
  out.expected_error = floor_error;
  for (std::size_t i = 0; i < n; ++i) {
    out.weights[i] = floor + best_v[i];
    out.energy += best_v[i] * energies[i];
    out.expected_error += best_v[i] * errors[i];
  }
  if (!found) {
    out.energy = floor_energy +
                 V * energies[arith::mode_index(arith::ApproxMode::kAccurate)];
  }
  return out;
}

}  // namespace approxit::core
