#include "core/characterization.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "util/logging.h"
#include "util/parallel.h"

namespace approxit::core {

/// FNV-1a 64-bit over the canonical description. Deterministic across
/// platforms and runs — the content address must not depend on process
/// state the way std::hash may.
std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

/// Full-precision double for the canonical description (%.17g round-trips
/// IEEE754 doubles exactly, so equal values always print equally).
std::string key_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string CharacterizationKey::id() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

CharacterizationKey characterization_cache_key(
    const opt::IterativeMethod& method, const arith::QcsAlu& alu,
    const CharacterizationOptions& options, std::string_view workload_tag) {
  std::ostringstream os;
  os << "approxit-profile-key v1"
     << "|method=" << method.name() << ",dim=" << method.dimension()
     << ",max_iter=" << method.max_iterations()
     << ",tol=" << key_double(method.tolerance())
     << "|workload=" << workload_tag << "|alu=q" << alu.format().total_bits
     << "." << alu.format().frac_bits;
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    const arith::ApproxMode mode = arith::mode_from_index(i);
    os << "," << arith::mode_name(mode) << "=" << alu.adder(mode).name()
       << ":" << key_double(alu.energy_per_add(mode));
  }
  os << "|characterize=iters:" << options.iterations
     << ",resync:" << (options.resynchronize ? 1 : 0);

  CharacterizationKey key;
  key.description = os.str();
  key.hash = fnv1a64(key.description);
  return key;
}

namespace {

ModeCharacterization characterize_impl(opt::IterativeMethod& method,
                                       arith::QcsAlu& alu,
                                       const CharacterizationOptions& options) {
  ModeCharacterization out;
  out.iterations_characterized = options.iterations;
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    out.energy_per_op[i] = alu.energy_per_add(arith::mode_from_index(i));
  }

  // The reference for Definition 1 is the fully accurate QCS mode (the
  // paper's "Truth" hardware), so the measured epsilon isolates the
  // approximation error and excludes the datapath's quantization.
  const auto iterate_accurately = [&](opt::IterativeMethod& m) {
    alu.set_mode(arith::ApproxMode::kAccurate);
    return m.iterate(alu);
  };

  // Pass 1: accurate reference trajectory -> angle samples, the objective
  // scale |f(x^0)| and the initial budget E.
  method.reset();
  out.objective_scale = std::max(std::abs(method.objective()), 1e-12);
  for (std::size_t k = 0; k < options.iterations; ++k) {
    options.cancel.throw_if_cancelled();
    const opt::IterationStats stats = iterate_accurately(method);
    out.angle_samples.push_back(steepness_angle(stats.grad_norm));
    if (k == 0) {
      out.initial_improvement = stats.improvement() / out.objective_scale;
    }
    if (stats.converged) break;
  }
  std::sort(out.angle_samples.begin(), out.angle_samples.end());

  // Pass 2: per-mode quality errors. From each pre-iteration state, run the
  // iteration exactly, then re-run it approximately from the same state, and
  // compare the resulting objectives (Definition 1).
  for (arith::ApproxMode mode :
       {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
        arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
    method.reset();
    double sum_eps = 0.0;
    double worst_eps = 0.0;
    double sum_state_eps = 0.0;
    double worst_state_eps = 0.0;
    double sum_abs_state = 0.0;
    std::size_t measured = 0;
    for (std::size_t k = 0; k < options.iterations; ++k) {
      options.cancel.throw_if_cancelled();
      const std::vector<double> snapshot = method.state();

      const opt::IterationStats exact_stats = iterate_accurately(method);
      const double f_exact = exact_stats.objective_after;
      const std::vector<double> exact_state = method.state();

      method.restore(snapshot);
      alu.set_mode(mode);
      const opt::IterationStats approx_stats = method.iterate(alu);
      const double f_approx = approx_stats.objective_after;
      const std::vector<double> approx_state = method.state();

      // Definition 1's relative difference, normalized by the initial
      // objective scale (see ModeCharacterization::objective_scale).
      const double eps = std::abs(f_exact - f_approx) / out.objective_scale;
      sum_eps += eps;
      worst_eps = std::max(worst_eps, eps);

      // One-step state deviation (relative): ||x'_a - x'_e|| / ||x'_e||.
      double diff2 = 0.0;
      double norm2 = 0.0;
      const std::size_t len =
          std::min(exact_state.size(), approx_state.size());
      for (std::size_t i = 0; i < len; ++i) {
        const double d = approx_state[i] - exact_state[i];
        diff2 += d * d;
        norm2 += exact_state[i] * exact_state[i];
      }
      const double state_eps =
          norm2 > 0.0 ? std::sqrt(diff2 / norm2) : std::sqrt(diff2);
      sum_state_eps += state_eps;
      worst_state_eps = std::max(worst_state_eps, state_eps);
      sum_abs_state += std::sqrt(diff2);
      ++measured;

      if (options.resynchronize) {
        method.restore(exact_state);
      }
      if (exact_stats.converged) break;
    }
    const std::size_t idx = arith::mode_index(mode);
    out.quality_error[idx] =
        measured > 0 ? sum_eps / static_cast<double>(measured) : 0.0;
    out.worst_quality_error[idx] = worst_eps;
    out.state_error[idx] =
        measured > 0 ? sum_state_eps / static_cast<double>(measured) : 0.0;
    out.worst_state_error[idx] = worst_state_eps;
    out.abs_state_error[idx] =
        measured > 0 ? sum_abs_state / static_cast<double>(measured) : 0.0;
  }

  // The accurate mode is error-free by construction.
  const std::size_t acc = arith::mode_index(arith::ApproxMode::kAccurate);
  out.quality_error[acc] = 0.0;
  out.worst_quality_error[acc] = 0.0;
  out.state_error[acc] = 0.0;
  out.worst_state_error[acc] = 0.0;
  out.abs_state_error[acc] = 0.0;

  method.reset();
  alu.set_mode(arith::ApproxMode::kAccurate);
  alu.reset_ledger();

  APPROXIT_LOG(util::LogLevel::kDebug, "characterize")
      << method.name() << ": " << out.to_string();
  return out;
}

}  // namespace

ModeCharacterization characterize(opt::IterativeMethod& method,
                                  arith::QcsAlu& alu,
                                  const CharacterizationOptions& options) {
  try {
    return characterize_impl(method, alu, options);
  } catch (const CancelledError&) {
    // Keep the documented exit contract (method reset, accurate mode,
    // clean ledger) even when the probe stops mid-trajectory.
    method.reset();
    alu.set_mode(arith::ApproxMode::kAccurate);
    alu.reset_ledger();
    throw;
  }
}

ModeCharacterization merge_characterizations(
    const std::vector<ModeCharacterization>& profiles) {
  if (profiles.empty()) {
    throw std::invalid_argument("merge_characterizations: empty input");
  }
  ModeCharacterization out = profiles.front();
  const double n = static_cast<double>(profiles.size());
  for (std::size_t m = 0; m < arith::kNumModes; ++m) {
    double sum_eps = 0.0;
    double sum_state = 0.0;
    double sum_abs = 0.0;
    for (const ModeCharacterization& p : profiles) {
      sum_eps += p.quality_error[m];
      sum_state += p.state_error[m];
      sum_abs += p.abs_state_error[m];
      out.worst_quality_error[m] =
          std::max(out.worst_quality_error[m], p.worst_quality_error[m]);
      out.worst_state_error[m] =
          std::max(out.worst_state_error[m], p.worst_state_error[m]);
    }
    out.quality_error[m] = sum_eps / n;
    out.state_error[m] = sum_state / n;
    out.abs_state_error[m] = sum_abs / n;
  }
  out.angle_samples.clear();
  out.iterations_characterized = 0;
  for (const ModeCharacterization& p : profiles) {
    out.angle_samples.insert(out.angle_samples.end(),
                             p.angle_samples.begin(), p.angle_samples.end());
    out.initial_improvement =
        std::min(out.initial_improvement, p.initial_improvement);
    out.iterations_characterized =
        std::max(out.iterations_characterized, p.iterations_characterized);
  }
  std::sort(out.angle_samples.begin(), out.angle_samples.end());
  return out;
}

ModeCharacterization characterize_many(
    const std::vector<opt::IterativeMethod*>& methods, arith::QcsAlu& alu,
    const CharacterizationOptions& options) {
  for (opt::IterativeMethod* method : methods) {
    if (method == nullptr) {
      throw std::invalid_argument("characterize_many: null method");
    }
  }
  std::vector<ModeCharacterization> profiles(methods.size());
  if (options.threads <= 1) {
    for (std::size_t i = 0; i < methods.size(); ++i) {
      profiles[i] = characterize(*methods[i], alu, options);
    }
  } else {
    // Each workload probes on its own fresh ALU (thread-compatible, not
    // thread-safe); profiles land in index order, so the merged result is
    // identical to the serial run for any thread count.
    std::vector<std::unique_ptr<arith::QcsAlu>> trial_alus(methods.size());
    for (std::size_t i = 0; i < methods.size(); ++i) {
      trial_alus[i] = alu.clone_fresh();
    }
    util::parallel_for(methods.size(), options.threads, [&](std::size_t i) {
      profiles[i] = characterize(*methods[i], *trial_alus[i], options);
    });
  }
  return merge_characterizations(profiles);
}

}  // namespace approxit::core
