#include "core/quality.h"

#include <cmath>
#include <sstream>

namespace approxit::core {

double quality_error(double accurate, double approximate) {
  const double diff = std::abs(accurate - approximate);
  const double denom = std::abs(accurate);
  if (denom < 1e-300) {
    return diff;
  }
  return diff / denom;
}

double steepness_angle(double grad_norm) {
  if (grad_norm < 0.0 || std::isnan(grad_norm)) {
    return 0.0;
  }
  return std::atan(grad_norm);
}

std::string ModeCharacterization::to_string() const {
  std::ostringstream os;
  os << "ModeCharacterization (" << iterations_characterized
     << " iterations/mode)\n";
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    os << "  " << arith::mode_name(arith::mode_from_index(i))
       << ": eps=" << quality_error[i]
       << " worst_eps=" << worst_quality_error[i]
       << " state_eps=" << state_error[i]
       << " worst_state_eps=" << worst_state_error[i]
       << " energy/op=" << energy_per_op[i] << "\n";
  }
  os << "  initial improvement E=" << initial_improvement << ", "
     << angle_samples.size() << " angle samples\n";
  return os.str();
}

}  // namespace approxit::core
