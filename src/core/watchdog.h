// Convergence watchdog and checkpointed safe-mode recovery.
//
// The reconfiguration schemes guarantee convergence under the BOUNDED
// deterministic error of the approximate adders; they are defenseless
// against unbounded transient corruption (voltage-droop bursts, particle
// strikes — see arith/fault_injector.h): a NaN propagates silently into
// the final state, and a burst-corrupted iterate can send the objective
// diverging while every scheme keeps escalating one level at a time.
//
// The Watchdog is consulted by ApproxItSession::run after every iteration
// and detects four pathologies in the (exact) monitor statistics:
//
//  - non-finite: any NaN/Inf monitor quantity,
//  - divergence: the objective exceeds its starting value by a factor,
//  - stall: no net improvement for a window of iterations (opt-in),
//  - oscillation: alternating improve/regress with no net gain (opt-in).
//
// On a trigger the session escalates through a recovery ladder:
//   1. roll back the corrupted iteration and force the ACCURATE mode,
//   2. restore the newest healthy snapshot from the checkpoint ring — the
//      K-deep generalization of the strategies' one-iteration rollback,
//   3. after repeated triggers, latch SAFE MODE (pin accurate for the rest
//      of the run), and finally abort with a structured RunStatus instead
//      of returning garbage state.
//
// Stall/oscillation detection default OFF: a clean slow run must stay
// bit-identical with the watchdog enabled (non-finite and 1000x divergence
// cannot fire on a healthy descent).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "opt/iterative_method.h"

namespace approxit::core {

/// Structured outcome of a session run.
enum class RunStatus : int {
  kConverged = 0,        ///< Converged, no watchdog recovery needed.
  kBudgetExhausted = 1,  ///< Iteration budget ran out (paper's MAX_ITER).
  kDiverged = 2,         ///< Aborted: divergence/stall beyond recovery.
  kNumericalFault = 3,   ///< Aborted: non-finite state beyond recovery.
  kRecovered = 4,        ///< Converged after >= 1 watchdog recovery.
  kCancelled = 5,        ///< Stopped cooperatively (CancelToken).
  kDeadlineExceeded = 6, ///< Stopped cooperatively (deadline passed).
};

/// Status label ("converged", "budget_exhausted", "diverged",
/// "numerical_fault", "recovered", "cancelled", "deadline_exceeded").
std::string_view run_status_name(RunStatus status);

/// What the watchdog detected on one iteration.
enum class WatchdogTrigger : int {
  kNone = 0,
  kNonFinite = 1,    ///< NaN/Inf in the monitor statistics.
  kDivergence = 2,   ///< Objective grew far beyond its starting value.
  kStall = 3,        ///< No net improvement for a full window.
  kOscillation = 4,  ///< Alternating improve/regress, no net gain.
};

/// Number of trigger kinds (including kNone).
inline constexpr std::size_t kNumWatchdogTriggers = 5;

/// Trigger label ("none", "non_finite", "divergence", "stall",
/// "oscillation").
std::string_view watchdog_trigger_name(WatchdogTrigger trigger);

/// Watchdog and recovery-ladder configuration.
struct WatchdogConfig {
  /// Master switch. Disabled reproduces the pre-watchdog session exactly.
  bool enabled = true;
  /// Divergence: triggers when f(x^k) > f(x^0) + factor * max(|f(x^0)|, 1).
  /// A healthy descent never fires this at the default factor.
  double divergence_factor = 1e3;
  /// Stall: triggers when the best objective seen does not improve by more
  /// than stall_tolerance for this many consecutive iterations. 0 = off
  /// (default: slow clean runs must not be disturbed).
  std::size_t stall_window = 0;
  double stall_tolerance = 0.0;
  /// Oscillation: triggers when over the last `oscillation_window`
  /// iterations the improvement sign alternated at least
  /// window - 1 times with no net objective gain. 0 = off.
  std::size_t oscillation_window = 0;
  /// Checkpoint ring depth K (>= 1): healthy pre-iteration snapshots
  /// retained for rung-2 recovery.
  std::size_t checkpoint_capacity = 4;
  /// A snapshot is pushed every `checkpoint_period` healthy iterations.
  std::size_t checkpoint_period = 1;
  /// Recoveries (rung 1 + rung 2) after which the session latches safe
  /// mode: the accurate mode is pinned for the rest of the run.
  std::size_t safe_mode_after = 3;
  /// Total recoveries after which the run aborts with kDiverged /
  /// kNumericalFault.
  std::size_t max_recoveries = 12;

  /// Throws std::invalid_argument on zero capacity/period or a
  /// non-positive divergence factor.
  void validate() const;
};

/// One retained snapshot: the full mutable method state plus the exact
/// objective and iteration index it was taken at.
struct Checkpoint {
  std::size_t iteration = 0;
  double objective = 0.0;
  std::vector<double> state;
};

/// Fixed-capacity ring of the K most recent healthy checkpoints.
class CheckpointRing {
 public:
  explicit CheckpointRing(std::size_t capacity);

  /// Retains `checkpoint`, evicting the oldest entry when full.
  void push(Checkpoint checkpoint);

  bool empty() const { return ring_.empty(); }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Newest retained checkpoint without removing it (nullopt when empty).
  std::optional<Checkpoint> newest() const;

  /// Removes and returns the newest checkpoint. Successive calls walk
  /// back in time — each recovery restores an older snapshot than the
  /// last, so a corrupted-but-finite checkpoint cannot be restored twice.
  std::optional<Checkpoint> pop();

  void clear() { ring_.clear(); }

 private:
  std::deque<Checkpoint> ring_;
  std::size_t capacity_;
};

/// Per-kind trigger counters (kNone slot unused).
struct WatchdogCounters {
  std::size_t triggers[kNumWatchdogTriggers] = {};

  std::size_t total() const;
  std::size_t count(WatchdogTrigger trigger) const {
    return triggers[static_cast<std::size_t>(trigger)];
  }
};

/// Detects the four pathologies above from per-iteration monitor stats.
class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& config = WatchdogConfig{});

  /// Arms the watchdog for a fresh run starting at objective f(x^0).
  /// A non-finite initial objective immediately reports kNonFinite from
  /// the first observe().
  void reset(double initial_objective);

  /// Inspects one iteration's statistics; returns the highest-priority
  /// trigger (non-finite > divergence > stall > oscillation) or kNone.
  WatchdogTrigger observe(const opt::IterationStats& stats);

  /// Informs the watchdog that the session recovered to `objective`
  /// (rolls the stall/oscillation histories back to a clean slate so the
  /// restored state is not immediately re-flagged).
  void notify_recovery(double objective);

  const WatchdogConfig& config() const { return config_; }
  const WatchdogCounters& counters() const { return counters_; }

 private:
  WatchdogConfig config_;
  WatchdogCounters counters_;
  double initial_objective_ = 0.0;
  double divergence_ceiling_ = 0.0;
  double best_objective_ = 0.0;
  std::size_t iterations_since_best_ = 0;
  std::deque<double> recent_improvements_;
};

}  // namespace approxit::core
