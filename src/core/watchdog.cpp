#include "core/watchdog.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace approxit::core {

std::string_view run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kConverged:
      return "converged";
    case RunStatus::kBudgetExhausted:
      return "budget_exhausted";
    case RunStatus::kDiverged:
      return "diverged";
    case RunStatus::kNumericalFault:
      return "numerical_fault";
    case RunStatus::kRecovered:
      return "recovered";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

std::string_view watchdog_trigger_name(WatchdogTrigger trigger) {
  switch (trigger) {
    case WatchdogTrigger::kNone:
      return "none";
    case WatchdogTrigger::kNonFinite:
      return "non_finite";
    case WatchdogTrigger::kDivergence:
      return "divergence";
    case WatchdogTrigger::kStall:
      return "stall";
    case WatchdogTrigger::kOscillation:
      return "oscillation";
  }
  return "?";
}

void WatchdogConfig::validate() const {
  if (divergence_factor <= 0.0) {
    throw std::invalid_argument(
        "WatchdogConfig: divergence_factor must be positive");
  }
  if (checkpoint_capacity == 0) {
    throw std::invalid_argument(
        "WatchdogConfig: checkpoint_capacity must be >= 1");
  }
  if (checkpoint_period == 0) {
    throw std::invalid_argument(
        "WatchdogConfig: checkpoint_period must be >= 1");
  }
  if (max_recoveries < safe_mode_after) {
    throw std::invalid_argument(
        "WatchdogConfig: max_recoveries must be >= safe_mode_after");
  }
}

CheckpointRing::CheckpointRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("CheckpointRing: capacity must be >= 1");
  }
}

void CheckpointRing::push(Checkpoint checkpoint) {
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(checkpoint));
}

std::optional<Checkpoint> CheckpointRing::newest() const {
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::optional<Checkpoint> CheckpointRing::pop() {
  if (ring_.empty()) return std::nullopt;
  Checkpoint checkpoint = std::move(ring_.back());
  ring_.pop_back();
  return checkpoint;
}

std::size_t WatchdogCounters::total() const {
  std::size_t sum = 0;
  for (std::size_t count : triggers) sum += count;
  return sum;
}

Watchdog::Watchdog(const WatchdogConfig& config) : config_(config) {
  config_.validate();
}

void Watchdog::reset(double initial_objective) {
  counters_ = WatchdogCounters{};
  initial_objective_ = initial_objective;
  divergence_ceiling_ =
      initial_objective +
      config_.divergence_factor * std::max(std::abs(initial_objective), 1.0);
  best_objective_ = initial_objective;
  iterations_since_best_ = 0;
  recent_improvements_.clear();
}

void Watchdog::notify_recovery(double objective) {
  best_objective_ = objective;
  iterations_since_best_ = 0;
  recent_improvements_.clear();
}

WatchdogTrigger Watchdog::observe(const opt::IterationStats& stats) {
  if (!config_.enabled) return WatchdogTrigger::kNone;

  const auto fire = [this, &stats](WatchdogTrigger trigger) {
    ++counters_.triggers[static_cast<std::size_t>(trigger)];
    if (obs::trace_enabled()) {
      obs::emit_instant(
          "watchdog", "trigger",
          {obs::arg("kind", watchdog_trigger_name(trigger)),
           obs::arg("objective_after", stats.objective_after),
           obs::arg("ceiling", divergence_ceiling_),
           obs::arg("count", counters_.count(trigger))});
    }
    return trigger;
  };

  // Non-finite monitor statistics (or a non-finite starting objective —
  // the run was corrupted before it began).
  if (!stats.finite() || !std::isfinite(initial_objective_)) {
    return fire(WatchdogTrigger::kNonFinite);
  }

  // Divergence: the objective left the basin it started in. Healthy
  // descents only shrink the objective, so the ceiling is generous.
  if (stats.objective_after > divergence_ceiling_) {
    return fire(WatchdogTrigger::kDivergence);
  }

  // Stall: the best objective seen has not improved for a full window.
  if (config_.stall_window > 0) {
    if (stats.objective_after < best_objective_ - config_.stall_tolerance) {
      best_objective_ = stats.objective_after;
      iterations_since_best_ = 0;
    } else if (++iterations_since_best_ >= config_.stall_window) {
      iterations_since_best_ = 0;
      return fire(WatchdogTrigger::kStall);
    }
  }

  // Oscillation: improvements keep flipping sign with no net gain —
  // the damage/repair cycle the adaptive budget window also guards
  // against, detected here at the session level.
  if (config_.oscillation_window > 1) {
    recent_improvements_.push_back(stats.improvement());
    if (recent_improvements_.size() > config_.oscillation_window) {
      recent_improvements_.pop_front();
    }
    if (recent_improvements_.size() == config_.oscillation_window) {
      std::size_t sign_flips = 0;
      double net = 0.0;
      for (std::size_t i = 0; i < recent_improvements_.size(); ++i) {
        net += recent_improvements_[i];
        if (i > 0 && (recent_improvements_[i] > 0.0) !=
                         (recent_improvements_[i - 1] > 0.0)) {
          ++sign_flips;
        }
      }
      if (sign_flips >= config_.oscillation_window - 1 && net <= 0.0) {
        recent_improvements_.clear();
        return fire(WatchdogTrigger::kOscillation);
      }
    }
  }

  return WatchdogTrigger::kNone;
}

}  // namespace approxit::core
