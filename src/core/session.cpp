#include "core/session.h"

#include <cmath>
#include <sstream>

#include "obs/trace.h"
#include "util/logging.h"

namespace approxit::core {

namespace {

/// One structured event per executed iteration — the trace-side mirror of
/// IterationRecord. `energy_total` is the CUMULATIVE ledger total so the
/// last event reconciles exactly with RunReport::total_energy (per-
/// iteration deltas do not telescope exactly in floating point).
void trace_iteration(std::size_t iter, arith::ApproxMode mode,
                     std::string_view scheme, const opt::IterationStats& stats,
                     double eps_estimate, double energy, double energy_total,
                     bool rolled_back, bool reconfigured,
                     arith::ApproxMode next_mode, WatchdogTrigger trigger,
                     int rung) {
  if (!obs::trace_enabled()) return;
  obs::emit_instant(
      "session", "iteration",
      {obs::arg("iter", iter), obs::arg("mode", arith::mode_name(mode)),
       obs::arg("scheme", scheme),
       obs::arg("objective", stats.objective_after),
       obs::arg("eps_estimate", eps_estimate),
       obs::arg("step_norm", stats.step_norm),
       obs::arg("grad_norm", stats.grad_norm), obs::arg("energy", energy),
       obs::arg("energy_total", energy_total),
       obs::arg("rolled_back", rolled_back),
       obs::arg("reconfigured", reconfigured),
       obs::arg("next_mode", arith::mode_name(next_mode)),
       obs::arg("watchdog", watchdog_trigger_name(trigger)),
       obs::arg("rung", static_cast<std::size_t>(rung))});
}

}  // namespace

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << method_name << " under " << strategy_name << ": "
     << run_status_name(status) << " after " << iterations
     << " iterations, f=" << final_objective
     << ", energy=" << total_energy << ", steps [";
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    if (i > 0) os << ", ";
    os << arith::mode_name(arith::mode_from_index(i)) << ":"
       << steps_per_mode[i];
  }
  os << "], rollbacks=" << rollbacks
     << ", reconfigurations=" << reconfigurations;
  if (watchdog.total() > 0) {
    os << ", watchdog_triggers=" << watchdog.total()
       << ", forced_escalations=" << forced_escalations
       << ", checkpoint_restores=" << checkpoint_restores
       << (safe_mode ? ", safe_mode" : "");
  }
  return os.str();
}

ApproxItSession::ApproxItSession(opt::IterativeMethod& method,
                                 Strategy& strategy, arith::QcsAlu& alu)
    : method_(method), strategy_(strategy), alu_(alu) {}

const ModeCharacterization& ApproxItSession::ensure_characterized(
    const CharacterizationOptions& options) {
  if (!characterized_) {
    characterization_from_cache_ = false;
    if (cache_ != nullptr) {
      if (std::optional<ModeCharacterization> cached =
              cache_->load(cache_key_)) {
        characterization_ = *std::move(cached);
        characterized_ = true;
        characterization_from_cache_ = true;
        return characterization_;
      }
    }
    characterization_ = characterize(method_, alu_, options);
    characterized_ = true;
    if (cache_ != nullptr) cache_->store(cache_key_, characterization_);
  }
  return characterization_;
}

RunReport ApproxItSession::run(const SessionOptions& options) {
  ensure_characterized();

  method_.reset();
  strategy_.reset(characterization_);
  alu_.reset_ledger();

  RunReport report;
  report.method_name = method_.name();
  report.strategy_name = strategy_.name();

  // Observation plumbing: install the caller's trace sink and attach the
  // caller's registry to the ALU for the duration of the run (both
  // restored on exit), and span the whole run. The sink restorer is
  // declared BEFORE the run span so the span still emits into the
  // caller's sink when it closes at function exit.
  struct SinkRestore {
    obs::TraceSink* previous;
    bool active;
    ~SinkRestore() {
      if (active) obs::set_trace_sink(previous);
    }
  } sink_restore{obs::trace_sink(), options.hooks.trace_sink != nullptr};
  if (options.hooks.trace_sink != nullptr) {
    obs::set_trace_sink(options.hooks.trace_sink);
  }
  obs::MetricsRegistry* const previous_metrics = alu_.metrics_registry();
  if (options.hooks.metrics != nullptr) {
    alu_.set_metrics(options.hooks.metrics);
  }
  obs::ScopedSpan run_span("session", "run",
                           {obs::arg("method", report.method_name),
                            obs::arg("strategy", report.strategy_name)});

  const std::size_t budget = options.max_iterations > 0
                                 ? options.max_iterations
                                 : method_.max_iterations();

  const bool guarded = options.watchdog.enabled;
  Watchdog watchdog(options.watchdog);
  CheckpointRing checkpoints(options.watchdog.checkpoint_capacity);
  watchdog.reset(method_.objective());

  // Streaming-progress seam: one copy-only notification per executed
  // iteration (healthy or watchdog-recovered), after its trace event.
  const auto notify_progress = [&options](std::size_t iter,
                                          arith::ApproxMode iter_mode,
                                          const opt::IterationStats& stats,
                                          double energy_total) {
    if (!options.on_progress) return;
    SessionProgress progress;
    progress.iteration = iter;
    progress.mode = iter_mode;
    progress.objective = stats.objective_after;
    progress.step_norm = stats.step_norm;
    progress.energy_total = energy_total;
    options.on_progress(progress);
  };

  arith::ApproxMode mode = strategy_.initial_mode();
  double energy_before = 0.0;
  std::size_t recoveries = 0;
  std::size_t iterations_since_checkpoint = 0;
  bool aborted = false;
  WatchdogTrigger abort_trigger = WatchdogTrigger::kNone;
  CancelReason cancel_reason = CancelReason::kNone;
  double final_step_norm = 0.0;

  while (report.iterations < budget) {
    // Cooperative stop point: a cancelled/deadline-expired run releases
    // its thread before starting another iteration and reports the
    // partial result it holds. Inert tokens reduce this to one null test.
    cancel_reason = options.cancel.check();
    if (cancel_reason != CancelReason::kNone) {
      if (obs::trace_enabled()) {
        obs::emit_instant(
            "session", "cancelled",
            {obs::arg("iter", report.iterations),
             obs::arg("reason", cancel_reason_name(cancel_reason))});
      }
      break;
    }
    if (report.safe_mode) mode = arith::ApproxMode::kAccurate;
    alu_.set_mode(mode);
    const std::vector<double> snapshot = method_.state();

    const opt::IterationStats stats = method_.iterate(alu_);
    ++report.iterations;
    ++report.steps_per_mode[arith::mode_index(mode)];
    final_step_norm = stats.step_norm;

    const double energy_after = alu_.ledger().total_energy();
    const double iteration_energy = energy_after - energy_before;
    energy_before = energy_after;

    const WatchdogTrigger trigger = watchdog.observe(stats);
    report.watchdog = watchdog.counters();

    // The quantity the quality scheme compares against step_norm; recorded
    // on every iteration so the trace shows the margin, not just the verdict.
    const double eps_estimate =
        characterization_.estimated_state_error(mode, stats.state_norm);

    if (trigger != WatchdogTrigger::kNone) {
      // Recovery ladder: the iteration (or the state it started from) is
      // corrupted — the strategy is not consulted on poisoned statistics.
      ++recoveries;

      const bool pre_state_healthy = std::isfinite(stats.objective_before);
      bool restored = false;
      bool rung1 = false;
      int rung = 0;
      if (mode != arith::ApproxMode::kAccurate && pre_state_healthy) {
        // Rung 1: roll the corrupted iteration back and force the
        // accurate mode — the cheap retry.
        method_.restore(snapshot);
        ++report.forced_escalations;
        restored = true;
        rung1 = true;
        rung = 1;
      } else {
        // Rung 2: the fault outran the one-iteration rollback (already
        // accurate, or the pre-iteration state is itself poisoned) —
        // rewind through the checkpoint ring to the newest snapshot
        // whose objective was still finite.
        while (auto checkpoint = checkpoints.pop()) {
          if (!std::isfinite(checkpoint->objective)) continue;
          method_.restore(checkpoint->state);
          ++report.checkpoint_restores;
          restored = true;
          rung = 2;
          break;
        }
      }

      if (restored && recoveries >= options.watchdog.safe_mode_after &&
          !report.safe_mode) {
        // Rung 3: repeated recoveries — latch safe mode, pinning the
        // accurate (nominal-voltage) configuration to the end of the run.
        report.safe_mode = true;
        rung = 3;
        APPROXIT_LOG(util::LogLevel::kInfo, "session")
            << "iter " << report.iterations
            << ": watchdog latched safe mode after " << recoveries
            << " recoveries";
      }

      const bool abort_now =
          !restored || recoveries > options.watchdog.max_recoveries;
      if (abort_now) rung = 4;

      if (options.keep_trace) {
        IterationRecord record;
        record.index = report.iterations;
        record.mode = mode;
        record.objective_after = stats.objective_after;
        record.energy = iteration_energy;
        record.step_norm = stats.step_norm;
        record.grad_norm = stats.grad_norm;
        record.rolled_back = true;
        record.reconfigured = mode != arith::ApproxMode::kAccurate;
        record.trigger = trigger;
        record.scheme = "watchdog";
        record.eps_estimate = eps_estimate;
        record.recovery_rung = rung;
        report.trace.push_back(record);
      }
      trace_iteration(report.iterations, mode, "watchdog", stats,
                      eps_estimate, iteration_energy, energy_after,
                      /*rolled_back=*/true,
                      mode != arith::ApproxMode::kAccurate,
                      arith::ApproxMode::kAccurate, trigger, rung);
      if (obs::trace_enabled()) {
        obs::emit_instant("watchdog", "recovery",
                          {obs::arg("iter", report.iterations),
                           obs::arg("rung", static_cast<std::size_t>(rung)),
                           obs::arg("restored", restored),
                           obs::arg("recoveries", recoveries),
                           obs::arg("safe_mode", report.safe_mode)});
      }
      notify_progress(report.iterations, mode, stats, energy_after);

      if (abort_now) {
        // Rung 4: nothing healthy left to restore (or the recovery budget
        // is spent) — abort with a structured status instead of iterating
        // on garbage.
        aborted = true;
        abort_trigger = trigger;
        if (!restored && pre_state_healthy) method_.restore(snapshot);
        break;
      }

      watchdog.notify_recovery(method_.objective());
      APPROXIT_LOG(util::LogLevel::kInfo, "session")
          << "iter " << report.iterations << ": watchdog "
          << watchdog_trigger_name(trigger) << " -> "
          << (rung1 ? "rollback + forced accurate" : "checkpoint restore");
      mode = arith::ApproxMode::kAccurate;
      continue;
    }

    // Healthy iteration: retain its pre-iteration state in the ring.
    if (guarded && ++iterations_since_checkpoint >=
                       options.watchdog.checkpoint_period) {
      iterations_since_checkpoint = 0;
      checkpoints.push(Checkpoint{report.iterations - 1,
                                  stats.objective_before, snapshot});
    }

    const Decision decision = strategy_.observe(mode, stats);

    if (decision.rollback) {
      method_.restore(snapshot);
      ++report.rollbacks;
    }
    // The safe-mode latch outranks the strategy's mode choice.
    const arith::ApproxMode next_mode =
        report.safe_mode ? arith::ApproxMode::kAccurate : decision.mode;
    const bool reconfigured = next_mode != mode;
    if (reconfigured) {
      ++report.reconfigurations;
      APPROXIT_LOG(util::LogLevel::kDebug, "session")
          << "iter " << report.iterations << ": "
          << arith::mode_name(mode) << " -> "
          << arith::mode_name(next_mode)
          << (decision.rollback ? " (rollback)" : "");
    }

    if (options.keep_trace) {
      IterationRecord record;
      record.index = report.iterations;
      record.mode = mode;
      record.objective_after = stats.objective_after;
      record.energy = iteration_energy;
      record.step_norm = stats.step_norm;
      record.grad_norm = stats.grad_norm;
      record.rolled_back = decision.rollback;
      record.reconfigured = reconfigured;
      record.scheme = decision.scheme;
      record.eps_estimate = eps_estimate;
      report.trace.push_back(record);
    }
    trace_iteration(report.iterations, mode, decision.scheme, stats,
                    eps_estimate, iteration_energy, energy_after,
                    decision.rollback, reconfigured, next_mode,
                    WatchdogTrigger::kNone, /*rung=*/0);
    notify_progress(report.iterations, mode, stats, energy_after);

    mode = next_mode;

    if (stats.converged && !decision.rollback && !decision.veto_convergence) {
      report.converged = true;
      break;
    }
  }

  if (cancel_reason != CancelReason::kNone) {
    report.status = cancel_reason == CancelReason::kCancelled
                        ? RunStatus::kCancelled
                        : RunStatus::kDeadlineExceeded;
  } else if (report.converged) {
    report.status =
        recoveries > 0 ? RunStatus::kRecovered : RunStatus::kConverged;
  } else if (aborted) {
    report.status = abort_trigger == WatchdogTrigger::kNonFinite
                        ? RunStatus::kNumericalFault
                        : RunStatus::kDiverged;
  } else {
    report.status = RunStatus::kBudgetExhausted;
  }

  report.total_energy = alu_.ledger().total_energy();
  report.final_objective = method_.objective();
  report.final_state = method_.state();

  if (options.hooks.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options.hooks.metrics;
    metrics.counter("session.runs").add(1.0);
    metrics.counter("session.iterations")
        .add(static_cast<double>(report.iterations));
    metrics.counter("session.rollbacks")
        .add(static_cast<double>(report.rollbacks));
    metrics.counter("session.reconfigurations")
        .add(static_cast<double>(report.reconfigurations));
    metrics.counter("session.watchdog_triggers")
        .add(static_cast<double>(report.watchdog.total()));
    metrics.counter("session.energy").add(report.total_energy);
    if (report.converged) metrics.counter("session.converged").add(1.0);
    metrics.gauge("session.final_objective").set(report.final_objective);
    metrics.gauge("session.final_step_norm").set(final_step_norm);
  }
  if (obs::trace_enabled()) {
    obs::emit_instant("session", "run_complete",
                      {obs::arg("method", report.method_name),
                       obs::arg("strategy", report.strategy_name),
                       obs::arg("status", run_status_name(report.status)),
                       obs::arg("iterations", report.iterations),
                       obs::arg("energy", report.total_energy),
                       obs::arg("objective", report.final_objective),
                       obs::arg("converged", report.converged)});
  }
  if (options.hooks.metrics != nullptr) alu_.set_metrics(previous_metrics);

  APPROXIT_LOG(util::LogLevel::kInfo, "session") << report.to_string();
  return report;
}

}  // namespace approxit::core
