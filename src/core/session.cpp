#include "core/session.h"

#include <sstream>

#include "util/logging.h"

namespace approxit::core {

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << method_name << " under " << strategy_name << ": "
     << (converged ? "converged" : "MAX_ITER") << " after " << iterations
     << " iterations, f=" << final_objective
     << ", energy=" << total_energy << ", steps [";
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    if (i > 0) os << ", ";
    os << arith::mode_name(arith::mode_from_index(i)) << ":"
       << steps_per_mode[i];
  }
  os << "], rollbacks=" << rollbacks
     << ", reconfigurations=" << reconfigurations;
  return os.str();
}

ApproxItSession::ApproxItSession(opt::IterativeMethod& method,
                                 Strategy& strategy, arith::QcsAlu& alu)
    : method_(method), strategy_(strategy), alu_(alu) {}

const ModeCharacterization& ApproxItSession::ensure_characterized(
    const CharacterizationOptions& options) {
  if (!characterized_) {
    characterization_ = characterize(method_, alu_, options);
    characterized_ = true;
  }
  return characterization_;
}

RunReport ApproxItSession::run(const SessionOptions& options) {
  ensure_characterized();

  method_.reset();
  strategy_.reset(characterization_);
  alu_.reset_ledger();

  RunReport report;
  report.method_name = method_.name();
  report.strategy_name = strategy_.name();

  const std::size_t budget = options.max_iterations > 0
                                 ? options.max_iterations
                                 : method_.max_iterations();

  arith::ApproxMode mode = strategy_.initial_mode();
  double energy_before = 0.0;

  while (report.iterations < budget) {
    alu_.set_mode(mode);
    const std::vector<double> snapshot = method_.state();

    const opt::IterationStats stats = method_.iterate(alu_);
    ++report.iterations;
    ++report.steps_per_mode[arith::mode_index(mode)];

    const double energy_after = alu_.ledger().total_energy();
    const double iteration_energy = energy_after - energy_before;
    energy_before = energy_after;

    const Decision decision = strategy_.observe(mode, stats);

    if (decision.rollback) {
      method_.restore(snapshot);
      ++report.rollbacks;
    }
    const bool reconfigured = decision.mode != mode;
    if (reconfigured) {
      ++report.reconfigurations;
      APPROXIT_LOG(util::LogLevel::kDebug, "session")
          << "iter " << report.iterations << ": "
          << arith::mode_name(mode) << " -> "
          << arith::mode_name(decision.mode)
          << (decision.rollback ? " (rollback)" : "");
    }

    if (options.keep_trace) {
      IterationRecord record;
      record.index = report.iterations;
      record.mode = mode;
      record.objective_after = stats.objective_after;
      record.energy = iteration_energy;
      record.step_norm = stats.step_norm;
      record.grad_norm = stats.grad_norm;
      record.rolled_back = decision.rollback;
      record.reconfigured = reconfigured;
      report.trace.push_back(record);
    }

    mode = decision.mode;

    if (stats.converged && !decision.rollback && !decision.veto_convergence) {
      report.converged = true;
      break;
    }
  }

  report.total_energy = alu_.ledger().total_energy();
  report.final_objective = method_.objective();
  report.final_state = method_.state();

  APPROXIT_LOG(util::LogLevel::kInfo, "session") << report.to_string();
  return report;
}

}  // namespace approxit::core
