#include "core/sweep.h"

#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/oracle.h"
#include "core/static_strategy.h"

namespace approxit::core {

SweepResult run_configuration_sweep(const MethodFactory& factory,
                                    arith::QcsAlu& alu,
                                    const QemEvaluator& qem,
                                    const SweepOptions& options) {
  SweepResult result;

  const std::unique_ptr<opt::IterativeMethod> char_method = factory();
  const ModeCharacterization characterization =
      characterize(*char_method, alu, options.characterization);

  const std::unique_ptr<opt::IterativeMethod> truth_method = factory();
  {
    StaticStrategy strategy(arith::ApproxMode::kAccurate);
    ApproxItSession session(*truth_method, strategy, alu);
    session.set_characterization(characterization);
    result.truth = session.run();
  }
  const double truth_energy =
      result.truth.total_energy > 0.0 ? result.truth.total_energy : 1.0;

  const auto add_point = [&](const std::string& label,
                             opt::IterativeMethod& method,
                             const RunReport& report) {
    ParetoPoint point;
    point.label = label;
    point.energy = report.total_energy / truth_energy;
    point.quality_error = qem(*truth_method, method);
    point.converged = report.converged;
    point.iterations = report.iterations;
    result.points.push_back(point);
  };

  add_point("truth", *truth_method, result.truth);

  const auto run_strategy = [&](const std::string& label,
                                Strategy& strategy) {
    const std::unique_ptr<opt::IterativeMethod> method = factory();
    ApproxItSession session(*method, strategy, alu);
    session.set_characterization(characterization);
    const RunReport report = session.run();
    add_point(label, *method, report);
  };

  if (options.include_single_modes) {
    for (arith::ApproxMode mode :
         {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
          arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
      StaticStrategy strategy(mode);
      run_strategy(std::string(arith::mode_name(mode)), strategy);
    }
  }
  if (options.include_incremental) {
    IncrementalStrategy strategy;
    run_strategy("incremental", strategy);
  }
  if (options.include_adaptive) {
    AdaptiveAngleStrategy strategy;
    run_strategy(strategy.name(), strategy);
  }
  if (options.include_oracle) {
    const std::unique_ptr<opt::IterativeMethod> method = factory();
    const RunReport report = run_oracle(*method, alu);
    add_point("oracle", *method, report);
  }
  return result;
}

}  // namespace approxit::core
