#include "core/sweep.h"

#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/oracle.h"
#include "core/static_strategy.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace approxit::core {

namespace {

/// One sweep arm: a label, a fresh method instance, and either a strategy
/// (session run) or the oracle. Arms are fully independent — each runs on
/// its own ALU when the sweep is parallel — and results are read back in
/// arm-list order, so thread scheduling cannot reorder or change anything.
struct SweepArm {
  std::string label;
  std::unique_ptr<opt::IterativeMethod> method;
  std::unique_ptr<Strategy> strategy;  ///< Null for the oracle arm.
  RunReport report;
};

void run_arm(SweepArm& arm, std::size_t index, arith::QcsAlu& alu,
             const ModeCharacterization& characterization,
             obs::MetricsRegistry* metrics, const CancelToken& cancel) {
  // Lane 0 is the caller's thread; arms render as lanes 1..N in the trace
  // viewer regardless of which worker thread executes them.
  obs::LaneScope lane(static_cast<std::uint32_t>(index + 1),
                      "arm:" + arm.label);
  obs::ScopedSpan span("sweep", arm.label);
  if (!arm.strategy) {
    // The oracle bypasses ApproxItSession; attach the arm registry to the
    // ALU directly so its operations are still counted.
    obs::MetricsRegistry* const previous = alu.metrics_registry();
    if (metrics != nullptr) alu.set_metrics(metrics);
    arm.report = run_oracle(*arm.method, alu);
    if (metrics != nullptr) alu.set_metrics(previous);
    return;
  }
  ApproxItSession session(*arm.method, *arm.strategy, alu);
  session.set_characterization(characterization);
  SessionOptions session_options;
  session_options.hooks.metrics = metrics;
  session_options.cancel = cancel;
  arm.report = session.run(session_options);
}

}  // namespace

SweepResult run_configuration_sweep(const MethodFactory& factory,
                                    arith::QcsAlu& alu,
                                    const QemEvaluator& qem,
                                    const SweepOptions& options) {
  SweepResult result;

  // Sweep-wide trace sink (restored when the sweep returns).
  struct SinkRestore {
    obs::TraceSink* previous;
    bool active;
    ~SinkRestore() {
      if (active) obs::set_trace_sink(previous);
    }
  } sink_restore{obs::trace_sink(), options.hooks.trace_sink != nullptr};
  if (options.hooks.trace_sink != nullptr) {
    obs::set_trace_sink(options.hooks.trace_sink);
  }

  const std::unique_ptr<opt::IterativeMethod> char_method = factory();
  // The sweep's cancel token rides along in the probe options (the cache
  // key only hashes the explicit iteration/resync fields, so an armed
  // token cannot change the key).
  CharacterizationOptions char_options = options.characterization;
  char_options.cancel = options.cancel;
  const ModeCharacterization characterization = [&] {
    if (options.characterization_cache != nullptr) {
      const CharacterizationKey key = characterization_cache_key(
          *char_method, alu, char_options, options.workload_tag);
      if (std::optional<ModeCharacterization> cached =
              options.characterization_cache->load(key)) {
        return *std::move(cached);
      }
      ModeCharacterization fresh = characterize(*char_method, alu, char_options);
      options.characterization_cache->store(key, fresh);
      return fresh;
    }
    return characterize(*char_method, alu, char_options);
  }();

  // Fixed arm order: truth, single modes, incremental, adaptive, oracle.
  // The order is part of the contract — points come back in this order
  // regardless of thread count.
  std::vector<SweepArm> arms;
  const auto add_arm = [&](std::string label,
                           std::unique_ptr<Strategy> strategy) {
    SweepArm arm;
    arm.label = std::move(label);
    arm.method = factory();
    arm.strategy = std::move(strategy);
    arms.push_back(std::move(arm));
  };

  add_arm("truth",
          std::make_unique<StaticStrategy>(arith::ApproxMode::kAccurate));
  if (options.include_single_modes) {
    for (arith::ApproxMode mode :
         {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
          arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
      add_arm(std::string(arith::mode_name(mode)),
              std::make_unique<StaticStrategy>(mode));
    }
  }
  if (options.include_incremental) {
    add_arm("incremental", std::make_unique<IncrementalStrategy>());
  }
  if (options.include_adaptive) {
    auto strategy = std::make_unique<AdaptiveAngleStrategy>();
    std::string label = strategy->name();
    add_arm(std::move(label), std::move(strategy));
  }
  if (options.include_oracle) {
    add_arm("oracle", nullptr);
  }

  // One registry per arm on BOTH paths when metrics are requested: the
  // arm registries are merged into hooks.metrics in fixed arm order, so
  // the aggregate is bit-identical for any thread count (double additions
  // do not commute).
  std::vector<std::unique_ptr<obs::MetricsRegistry>> arm_metrics;
  if (options.hooks.metrics != nullptr) {
    arm_metrics.resize(arms.size());
    for (auto& registry : arm_metrics) {
      registry = std::make_unique<obs::MetricsRegistry>();
    }
  }
  const auto arm_registry = [&](std::size_t i) -> obs::MetricsRegistry* {
    return options.hooks.metrics != nullptr ? arm_metrics[i].get() : nullptr;
  };

  if (options.threads <= 1) {
    // Serial path: every arm shares the caller's ALU (each session resets
    // the ledger on entry), exactly as the original implementation did.
    for (std::size_t i = 0; i < arms.size(); ++i) {
      run_arm(arms[i], i, alu, characterization, arm_registry(i),
              options.cancel);
    }
  } else {
    // Parallel path: one fresh ALU per arm (thread-compatible, not
    // thread-safe), deterministic index-addressed results, and the arm
    // ledgers merged into the caller's ALU after the join.
    std::vector<std::unique_ptr<arith::QcsAlu>> arm_alus(arms.size());
    for (std::size_t i = 0; i < arms.size(); ++i) {
      arm_alus[i] = alu.clone_fresh();
    }
    util::parallel_for(arms.size(), options.threads, [&](std::size_t i) {
      run_arm(arms[i], i, *arm_alus[i], characterization, arm_registry(i),
              options.cancel);
    });
    for (const std::unique_ptr<arith::QcsAlu>& arm_alu : arm_alus) {
      alu.merge_ledger(arm_alu->ledger());
    }
  }

  if (options.hooks.metrics != nullptr) {
    for (const auto& registry : arm_metrics) {
      options.hooks.metrics->merge(*registry);
    }
  }

  result.truth = arms.front().report;
  const double truth_energy =
      result.truth.total_energy > 0.0 ? result.truth.total_energy : 1.0;

  // QEM evaluation is serial and in arm order: it compares against the
  // finished truth method, after every arm has joined.
  opt::IterativeMethod& truth_method = *arms.front().method;
  for (SweepArm& arm : arms) {
    ParetoPoint point;
    point.label = arm.label;
    point.energy = arm.report.total_energy / truth_energy;
    point.quality_error = qem(truth_method, *arm.method);
    point.converged = arm.report.converged;
    point.iterations = arm.report.iterations;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace approxit::core
