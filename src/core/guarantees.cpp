#include "core/guarantees.h"

namespace approxit::core {

bool direction_criterion_ok(const opt::IterationStats& stats) {
  return stats.grad_dot_step < 0.0;
}

bool update_error_criterion_ok(double error_norm, double step_norm) {
  return error_norm <= step_norm;
}

bool update_error_criterion_ok(const opt::IterationStats& stats,
                               double mode_quality_error) {
  return update_error_criterion_ok(stats.state_norm * mode_quality_error,
                                   stats.step_norm);
}

}  // namespace approxit::core
