#include "core/guarantees.h"

#include <cmath>

namespace approxit::core {

bool direction_criterion_ok(const opt::IterationStats& stats) {
  // A NaN dot product would compare false anyway, but an explicit
  // finiteness check keeps the criterion's contract unambiguous: corrupted
  // monitor statistics never certify a descent direction.
  return std::isfinite(stats.grad_dot_step) && stats.grad_dot_step < 0.0;
}

bool update_error_criterion_ok(double error_norm, double step_norm) {
  // Non-finite inputs certify nothing, and a zero (or negative) step has
  // no error budget at all: ||eps|| <= ||x^k - x^{k-1}|| = 0 would only
  // hold for exactly zero error, which a stalled approximate iteration
  // cannot demonstrate — reject instead of reporting a vacuous pass.
  if (!std::isfinite(error_norm) || !std::isfinite(step_norm)) return false;
  if (step_norm <= 0.0) return false;
  return error_norm <= step_norm;
}

bool update_error_criterion_ok(const opt::IterationStats& stats,
                               double mode_quality_error) {
  return update_error_criterion_ok(stats.state_norm * mode_quality_error,
                                   stats.step_norm);
}

}  // namespace approxit::core
