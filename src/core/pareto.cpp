#include "core/pareto.h"

#include <algorithm>
#include <sstream>

#include "util/csv.h"

namespace approxit::core {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.converged && !b.converged) return true;
  if (!a.converged && b.converged) return false;
  const bool no_worse =
      a.energy <= b.energy && a.quality_error <= b.quality_error;
  const bool strictly_better =
      a.energy < b.energy || a.quality_error < b.quality_error;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points) {
  std::vector<ParetoPoint> frontier;
  for (const ParetoPoint& candidate : points) {
    bool dominated = false;
    for (const ParetoPoint& other : points) {
      if (&other != &candidate && dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.energy != b.energy) return a.energy < b.energy;
              return a.quality_error < b.quality_error;
            });
  return frontier;
}

std::string pareto_csv(const std::vector<ParetoPoint>& all_points) {
  const std::vector<ParetoPoint> frontier = pareto_frontier(all_points);
  auto on_frontier = [&frontier](const ParetoPoint& p) {
    for (const ParetoPoint& f : frontier) {
      if (f.label == p.label && f.energy == p.energy &&
          f.quality_error == p.quality_error) {
        return true;
      }
    }
    return false;
  };
  std::ostringstream os;
  os << "label,energy,quality_error,iterations,converged,on_frontier\n";
  for (const ParetoPoint& p : all_points) {
    os << util::csv_escape(p.label) << ',' << p.energy << ','
       << p.quality_error << ',' << p.iterations << ','
       << (p.converged ? 1 : 0) << ',' << (on_frontier(p) ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace approxit::core
