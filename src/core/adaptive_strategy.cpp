#include "core/adaptive_strategy.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "obs/trace.h"
#include "util/logging.h"

namespace approxit::core {
namespace {

/// Linear-interpolated quantile of a sorted sample set; p in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    // No characterization data: fall back to a uniform split of [0, pi/2).
    return p * std::numbers::pi / 2.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

AdaptiveAngleStrategy::AdaptiveAngleStrategy(AdaptiveOptions options)
    : options_(options) {
  if (options_.update_period == 0) {
    options_.update_period = 1;
  }
}

std::string AdaptiveAngleStrategy::name() const {
  return "adaptive(f=" + std::to_string(options_.update_period) + ")";
}

void AdaptiveAngleStrategy::reset(
    const ModeCharacterization& characterization) {
  characterization_ = characterization;
  recent_improvements_.clear();
  objective_scale_ = 0.0;
  steps_since_update_ = 0;
  lut_updates_ = 0;
  // Offline initialization: E = f(x^1) - f(x^0) from characterization.
  rebuild_lut(characterization_.initial_improvement);
  // Before the first iteration the steepest observed angle is the best
  // prior (iterative methods start far from the optimum).
  last_angle_ = characterization_.angle_samples.empty()
                    ? std::numbers::pi / 2.0 * 0.9
                    : characterization_.angle_samples.back();
}

void AdaptiveAngleStrategy::rebuild_lut(double budget) {
  const double floor_budget = options_.min_budget_fraction *
                              std::abs(characterization_.initial_improvement);
  budget = std::max(budget, floor_budget);
  const auto& errors = options_.use_worst_case_error
                           ? characterization_.worst_quality_error
                           : characterization_.quality_error;
  // Equation 5's mode mix, kept for observability and the ablation bench.
  mix_ = solve_mode_mix(characterization_.energy_per_op, errors, budget,
                        options_.weight_floor);

  // Threshold placement: a mode is admissible at steepness alpha when its
  // characterized error fits the budget scaled by the LOCAL slope,
  //   eps_i <= E * tan(alpha) / tan(alpha_ref),
  // with alpha_ref the median characterized steepness (at median steepness
  // the admissible error is exactly E). Solving for alpha gives the mode's
  // minimum angle; each angle then selects the cheapest admissible mode —
  // the pointwise-constrained version of Equation 5, which keeps all
  // accuracy levels in play as the budget decays.
  const double ref_angle = quantile_sorted(characterization_.angle_samples,
                                           options_.reference_quantile);
  const double ref_tan = std::max(std::tan(ref_angle), 1e-9);
  for (std::size_t level = 0; level < thresholds_.size(); ++level) {
    // thresholds_[0] -> level1 (least accurate) ... thresholds_[3] -> level4.
    const double eps = errors[level];
    thresholds_[level] =
        budget > 0.0 ? std::atan(ref_tan * eps / budget)
                     : std::numbers::pi / 2.0;
  }
  ++lut_updates_;
  if (obs::trace_enabled()) {
    obs::emit_instant("strategy", "lut_rebuild",
                      {obs::arg("budget", budget),
                       obs::arg("ref_angle", ref_angle),
                       obs::arg("t_level1", thresholds_[0]),
                       obs::arg("t_level2", thresholds_[1]),
                       obs::arg("t_level3", thresholds_[2]),
                       obs::arg("t_level4", thresholds_[3]),
                       obs::arg("update", lut_updates_)});
  }
}

arith::ApproxMode AdaptiveAngleStrategy::mode_for_angle(double alpha) const {
  if (alpha >= thresholds_[0]) return arith::ApproxMode::kLevel1;
  if (alpha >= thresholds_[1]) return arith::ApproxMode::kLevel2;
  if (alpha >= thresholds_[2]) return arith::ApproxMode::kLevel3;
  if (alpha >= thresholds_[3]) return arith::ApproxMode::kLevel4;
  return arith::ApproxMode::kAccurate;
}

arith::ApproxMode AdaptiveAngleStrategy::initial_mode() const {
  return mode_for_angle(last_angle_);
}

Decision AdaptiveAngleStrategy::observe(arith::ApproxMode mode,
                                        const opt::IterationStats& stats) {
  // Poisoned monitor statistics (transient-fault NaN/Inf): the angle, the
  // budget window and both guards below are meaningless — escalate straight
  // to accurate and veto, without contaminating the improvement window.
  if (!stats.finite()) {
    return Decision{arith::ApproxMode::kAccurate, /*rollback=*/false,
                    /*veto_convergence=*/true, "non_finite"};
  }

  last_angle_ = steepness_angle(stats.grad_norm);

  // Budget memory: the usable error budget is the MINIMUM relative
  // improvement over the recent window, so one large repair step after a
  // damaging low-accuracy iteration cannot immediately re-license low
  // accuracy. Improvements are normalized by the INITIAL objective scale:
  // normalizing by the current objective would blow the budget up exactly
  // when the objective approaches zero (residual-type objectives), leaving
  // cheap modes licensed forever at their noise floor.
  if (objective_scale_ == 0.0) {
    objective_scale_ = characterization_.objective_scale > 0.0
                           ? characterization_.objective_scale
                           : std::max(std::abs(stats.objective_before), 1e-12);
  }
  recent_improvements_.push_back(stats.improvement() / objective_scale_);
  if (recent_improvements_.size() > options_.budget_window) {
    recent_improvements_.erase(recent_improvements_.begin());
  }
  double budget = recent_improvements_.front();
  for (double v : recent_improvements_) budget = std::min(budget, v);

  // Online f-step fixed update: refresh the LUT from the freshest budget
  // E = f(x^{k-1}) - f(x^k) (window-filtered).
  if (++steps_since_update_ >= options_.update_period) {
    steps_since_update_ = 0;
    rebuild_lut(budget);
  }

  arith::ApproxMode next = mode_for_angle(last_angle_);

  // Decision event: the angle, the LUT bin it selected and the operands of
  // the guards below — only built when a trace sink is installed.
  const double estimated_error =
      characterization_.estimated_state_error(mode, stats.state_norm);
  const auto trace_decision = [&](std::string_view scheme,
                                  arith::ApproxMode chosen) {
    if (!obs::trace_enabled()) return;
    obs::emit_instant(
        "strategy", "adaptive",
        {obs::arg("scheme", scheme), obs::arg("mode", arith::mode_name(mode)),
         obs::arg("next_mode", arith::mode_name(chosen)),
         obs::arg("angle", last_angle_),
         obs::arg("bin", arith::mode_index(chosen)),
         obs::arg("budget", budget), obs::arg("step_norm", stats.step_norm),
         obs::arg("eps_estimate", estimated_error)});
  };

  // Recovery guard: an objective INCREASE is an error that already
  // happened — escalate accuracy regardless of the angle.
  if (mode != arith::ApproxMode::kAccurate && stats.improvement() < 0.0) {
    const arith::ApproxMode escalated = arith::next_more_accurate(mode);
    if (arith::less_accurate(next, escalated)) {
      next = escalated;
    }
    trace_decision("function", next);
    return Decision{next, /*rollback=*/false, /*veto_convergence=*/true,
                    "function"};
  }

  // Quality guard — the update-error criterion: once the mode's estimated
  // state error dominates the realized step, escalate accuracy instead of
  // trusting (possibly false) convergence. This is what keeps the adaptive
  // strategy's final error at zero.
  const bool suspicious_stall =
      mode != arith::ApproxMode::kAccurate &&
      stats.step_norm < estimated_error;
  if (suspicious_stall) {
    const arith::ApproxMode escalated = arith::next_more_accurate(mode);
    if (arith::less_accurate(next, escalated)) {
      next = escalated;
    }
    trace_decision("quality", next);
    return Decision{next, /*rollback=*/false, /*veto_convergence=*/true,
                    "quality"};
  }
  trace_decision("none", next);
  return Decision{next, /*rollback=*/false, /*veto_convergence=*/false};
}

}  // namespace approxit::core
