// Offline characterization stage (Section 3.1).
//
// For each approximation mode, a few iterations of the application are
// simulated on a representative workload: from a common pre-iteration state
// the iteration is executed once exactly and once approximately, and the
// iteration-level quality error (Definition 1) is recorded. The exact
// reference trajectory also yields the steepness-angle distribution and the
// initial error budget E = f(x^1) - f(x^0) used by the adaptive strategy.
#pragma once

#include <cstddef>

#include "arith/alu.h"
#include "core/quality.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// Options for the offline characterization run.
struct CharacterizationOptions {
  /// Iterations simulated per mode (the paper: "several iterations on
  /// representative workloads"). The exact pass also stops early on
  /// convergence, so this is an upper bound.
  std::size_t iterations = 24;
  /// After the approximate probe, continue the trajectory from the exact
  /// result (true, default: every probe starts from an on-trajectory state)
  /// or from the approximate result (false: models free-running drift).
  bool resynchronize = true;
  /// Worker threads for characterize_many: each workload is characterized
  /// on its own QcsAlu::clone_fresh() instance and the profiles are merged
  /// in workload order, so the result is identical for any thread count.
  /// characterize() itself is always a single serial trajectory.
  std::size_t threads = 1;
};

/// Runs the offline characterization of `method` on `alu`.
///
/// The method is reset() before and after; the ALU's ledger is left reset.
/// The returned structure is what the online strategies consume.
ModeCharacterization characterize(opt::IterativeMethod& method,
                                  arith::QcsAlu& alu,
                                  const CharacterizationOptions& options = {});

/// Merges the characterizations of SEVERAL representative workloads (the
/// paper characterizes "on representative workloads", plural) into one
/// conservative profile: mean errors are averaged, worst-case errors take
/// the maximum, angle samples are pooled, and the error budget takes the
/// smallest observed initial improvement. Energies are identical across
/// workloads (they are a property of the ALU) and are taken from the first.
/// Throws std::invalid_argument on an empty input.
ModeCharacterization merge_characterizations(
    const std::vector<ModeCharacterization>& profiles);

/// Convenience: characterize every method and merge.
ModeCharacterization characterize_many(
    const std::vector<opt::IterativeMethod*>& methods, arith::QcsAlu& alu,
    const CharacterizationOptions& options = {});

}  // namespace approxit::core
