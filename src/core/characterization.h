// Offline characterization stage (Section 3.1).
//
// For each approximation mode, a few iterations of the application are
// simulated on a representative workload: from a common pre-iteration state
// the iteration is executed once exactly and once approximately, and the
// iteration-level quality error (Definition 1) is recorded. The exact
// reference trajectory also yields the steepness-angle distribution and the
// initial error budget E = f(x^1) - f(x^0) used by the adaptive strategy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "arith/alu.h"
#include "core/cancel.h"
#include "core/quality.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// Options for the offline characterization run.
struct CharacterizationOptions {
  /// Iterations simulated per mode (the paper: "several iterations on
  /// representative workloads"). The exact pass also stops early on
  /// convergence, so this is an upper bound.
  std::size_t iterations = 24;
  /// After the approximate probe, continue the trajectory from the exact
  /// result (true, default: every probe starts from an on-trajectory state)
  /// or from the approximate result (false: models free-running drift).
  bool resynchronize = true;
  /// Worker threads for characterize_many: each workload is characterized
  /// on its own QcsAlu::clone_fresh() instance and the profiles are merged
  /// in workload order, so the result is identical for any thread count.
  /// characterize() itself is always a single serial trajectory.
  std::size_t threads = 1;
  /// Cooperative cancellation: checked between probe iterations. A
  /// cancelled characterization throws CancelledError — a partial profile
  /// must never escape into a cache. Excluded from the cache key (like
  /// `threads`): an inert or armed token cannot change the result, only
  /// whether one is produced.
  CancelToken cancel;
};

/// Runs the offline characterization of `method` on `alu`.
///
/// The method is reset() before and after; the ALU's ledger is left reset.
/// The returned structure is what the online strategies consume.
ModeCharacterization characterize(opt::IterativeMethod& method,
                                  arith::QcsAlu& alu,
                                  const CharacterizationOptions& options = {});

/// Merges the characterizations of SEVERAL representative workloads (the
/// paper characterizes "on representative workloads", plural) into one
/// conservative profile: mean errors are averaged, worst-case errors take
/// the maximum, angle samples are pooled, and the error budget takes the
/// smallest observed initial improvement. Energies are identical across
/// workloads (they are a property of the ALU) and are taken from the first.
/// Throws std::invalid_argument on an empty input.
ModeCharacterization merge_characterizations(
    const std::vector<ModeCharacterization>& profiles);

/// Convenience: characterize every method and merge.
ModeCharacterization characterize_many(
    const std::vector<opt::IterativeMethod*>& methods, arith::QcsAlu& alu,
    const CharacterizationOptions& options = {});

/// FNV-1a 64-bit hash of `text`: the content-address hash behind
/// CharacterizationKey, also reused as the profile store's file checksum.
std::uint64_t fnv1a64(std::string_view text);

/// Content address of one characterization result: a canonical description
/// of everything the offline stage's output depends on, plus its 64-bit
/// FNV-1a hash. Two runs produce byte-identical characterizations if and
/// only if their keys match — the invariant the profile cache is built on.
struct CharacterizationKey {
  /// Canonical human-readable description (method signature, workload tag,
  /// ALU configuration, characterization options). Stored alongside cached
  /// profiles so a hash collision degrades to a miss, never a wrong hit.
  std::string description;
  /// FNV-1a 64-bit hash of `description`.
  std::uint64_t hash = 0;

  /// 16-hex-digit content id (the on-disk file stem).
  std::string id() const;

  bool operator==(const CharacterizationKey& other) const {
    return hash == other.hash && description == other.description;
  }
};

/// Derives the cache key for characterizing `method` on `alu`.
///
/// The key covers the method signature (name, dimension, iteration budget,
/// tolerance), the caller's `workload_tag` (the dataset's seed/shape
/// identity — the method object cannot describe its own data), the ALU
/// configuration (Q format plus per-mode adder architecture and energy),
/// and the CharacterizationOptions that shape the probe (iterations,
/// resynchronize). `threads` is deliberately excluded: characterize() is a
/// single serial trajectory and characterize_many merges in workload order,
/// so the result is thread-invariant.
CharacterizationKey characterization_cache_key(
    const opt::IterativeMethod& method, const arith::QcsAlu& alu,
    const CharacterizationOptions& options, std::string_view workload_tag);

/// Cache seam the session and sweep consult before running the offline
/// stage. Implementations (svc::ProfileCache) must be safe to call from
/// multiple threads and must return profiles BYTE-IDENTICAL to what was
/// stored — the determinism guarantee extends through the cache.
class CharacterizationCache {
 public:
  virtual ~CharacterizationCache() = default;

  /// The cached profile for `key`, or nullopt on a miss.
  virtual std::optional<ModeCharacterization> load(
      const CharacterizationKey& key) = 0;

  /// Stores a freshly computed profile under `key`.
  virtual void store(const CharacterizationKey& key,
                     const ModeCharacterization& profile) = 0;
};

}  // namespace approxit::core
