// Configuration sweep: runs a workload under Truth, every single mode, the
// reconfiguration strategies and (optionally) the oracle bound, and returns
// quality/energy points ready for Pareto analysis.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "arith/alu.h"
#include "core/pareto.h"
#include "core/runtime_hooks.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// Creates a fresh method instance over the (captured) workload.
using MethodFactory =
    std::function<std::unique_ptr<opt::IterativeMethod>()>;

/// Evaluates the application QEM of a finished candidate run against the
/// finished Truth run (e.g. Hamming distance of assignments, coefficient
/// l2 error).
using QemEvaluator = std::function<double(opt::IterativeMethod& truth,
                                          opt::IterativeMethod& candidate)>;

/// Options for run_configuration_sweep.
struct SweepOptions {
  bool include_single_modes = true;
  bool include_incremental = true;
  bool include_adaptive = true;
  bool include_oracle = false;  ///< Lookahead probes make this pricier.
  CharacterizationOptions characterization{};
  /// Worker threads for the sweep arms. 1 (default) runs every arm
  /// serially on the caller's ALU, exactly as before. > 1 gives each arm
  /// its own QcsAlu::clone_fresh() instance (the ALU is thread-compatible,
  /// not thread-safe) and runs arms concurrently; results are identical to
  /// the serial run — ParetoPoints are assembled in the fixed arm order
  /// and every arm's trajectory is independent of scheduling — and each
  /// arm's ledger is merged into the caller's ALU afterwards.
  std::size_t threads = 1;
  /// Observation endpoints (core/runtime_hooks.h). When hooks.metrics is
  /// set, every arm runs with its OWN MetricsRegistry (serial and parallel
  /// paths alike) and the per-arm registries are merged into hooks.metrics
  /// in fixed arm order afterwards — the aggregate is bit-identical for
  /// any thread count. hooks.trace_sink, when set, becomes the process
  /// trace sink for the whole sweep.
  RuntimeHooks hooks;
  /// When set, the sweep's shared characterization is looked up under a
  /// key derived from the factory's method, the ALU and `workload_tag`
  /// (characterization_cache_key) and only computed — then stored — on a
  /// miss. The cached profile is byte-identical to the computed one, so
  /// sweep results are unchanged.
  CharacterizationCache* characterization_cache = nullptr;
  /// Workload identity (seed/shape) for the cache key; required when
  /// characterization_cache is set.
  std::string workload_tag;
  /// Cooperative cancellation: threaded into the shared characterization
  /// (which throws CancelledError when stopped — a partial profile never
  /// reaches the cache) and into every arm's session, so each running arm
  /// stops within one iteration and reports kCancelled/kDeadlineExceeded.
  CancelToken cancel;
};

/// Result of a sweep: the Truth report plus one ParetoPoint per evaluated
/// configuration (energies normalized to Truth).
struct SweepResult {
  RunReport truth;
  std::vector<ParetoPoint> points;
};

/// Runs the sweep. The factory must produce identically initialized
/// methods; the ALU is shared across runs (its ledger is reset per run).
SweepResult run_configuration_sweep(const MethodFactory& factory,
                                    arith::QcsAlu& alu,
                                    const QemEvaluator& qem,
                                    const SweepOptions& options = {});

}  // namespace approxit::core
