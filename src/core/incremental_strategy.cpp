#include "core/incremental_strategy.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace approxit::core {

namespace {

/// Decision event with the operands the scheme compared — only built when
/// a trace sink is installed.
void trace_decision(std::string_view scheme, arith::ApproxMode mode,
                    arith::ApproxMode next, const opt::IterationStats& stats,
                    double estimated_error) {
  if (!obs::trace_enabled()) return;
  obs::emit_instant(
      "strategy", "incremental",
      {obs::arg("scheme", scheme), obs::arg("mode", arith::mode_name(mode)),
       obs::arg("next_mode", arith::mode_name(next)),
       obs::arg("objective_before", stats.objective_before),
       obs::arg("objective_after", stats.objective_after),
       obs::arg("grad_dot_step", stats.grad_dot_step),
       obs::arg("step_norm", stats.step_norm),
       obs::arg("eps_estimate", estimated_error)});
}

}  // namespace

IncrementalStrategy::IncrementalStrategy(IncrementalOptions options)
    : options_(options) {}

void IncrementalStrategy::reset(
    const ModeCharacterization& characterization) {
  characterization_ = characterization;
  last_trigger_ = "none";
  gradient_triggers_ = 0;
  quality_triggers_ = 0;
  function_triggers_ = 0;
  nonfinite_triggers_ = 0;
}

Decision IncrementalStrategy::observe(arith::ApproxMode mode,
                                      const opt::IterationStats& stats) {
  last_trigger_ = "none";

  const bool at_accurate = mode == arith::ApproxMode::kAccurate;

  // Poisoned monitor statistics (transient-fault NaN/Inf): none of the
  // schemes below can be evaluated — NaN comparisons are silently false —
  // so recover like the function scheme: roll back, escalate, veto.
  if (!stats.finite()) {
    last_trigger_ = "non_finite";
    ++nonfinite_triggers_;
    const arith::ApproxMode next =
        at_accurate ? mode : arith::next_more_accurate(mode);
    trace_decision("non_finite", mode, next, stats, 0.0);
    return Decision{next, /*rollback=*/true, /*veto_convergence=*/true,
                    "non_finite"};
  }

  // Function scheme first: an objective increase is an error that already
  // happened — recover by rolling back and raising accuracy.
  if (options_.function_scheme && !at_accurate) {
    const double slack =
        options_.function_slack * std::max(1.0, std::abs(stats.objective_before));
    if (stats.objective_after > stats.objective_before + slack) {
      last_trigger_ = "function";
      ++function_triggers_;
      const arith::ApproxMode next = arith::next_more_accurate(mode);
      trace_decision("function", mode, next, stats, 0.0);
      return Decision{next, /*rollback=*/true, /*veto_convergence=*/true,
                      "function"};
    }
  }

  // Gradient scheme: the realized step and the (negative) monitor gradient
  // make an obtuse angle — the approximate direction is taking us uphill.
  if (options_.gradient_scheme && !at_accurate && stats.grad_dot_step > 0.0) {
    last_trigger_ = "gradient";
    ++gradient_triggers_;
    const arith::ApproxMode next = arith::next_more_accurate(mode);
    trace_decision("gradient", mode, next, stats, 0.0);
    return Decision{next, /*rollback=*/false, /*veto_convergence=*/true,
                    "gradient"};
  }

  // Quality scheme — the update-error criterion of Section 3.2: the
  // estimated per-iteration update error ||eps^k|| ~ ||x^k|| * eps_i must
  // stay below the realized step ||x^k - x^{k-1}||; once the mode's error
  // dominates the step, progress can no longer be trusted.
  if (options_.quality_scheme && !at_accurate) {
    const double estimated_error =
        characterization_.estimated_state_error(mode, stats.state_norm);
    if (stats.step_norm < estimated_error) {
      last_trigger_ = "quality";
      ++quality_triggers_;
      const arith::ApproxMode next = arith::next_more_accurate(mode);
      trace_decision("quality", mode, next, stats, estimated_error);
      return Decision{next, /*rollback=*/false, /*veto_convergence=*/true,
                      "quality"};
    }
  }

  return Decision{mode, /*rollback=*/false, /*veto_convergence=*/false};
}

}  // namespace approxit::core
