// Fixed single-mode "strategy" — the paper's single-mode configuration
// experiments (Tables 3(a), 4(a)) and the Truth baseline.
#pragma once

#include "core/strategy.h"

namespace approxit::core {

/// Runs the whole application in one fixed approximation mode. Never vetoes
/// convergence, so over-approximation produces exactly the false-stop /
/// non-convergence failures the single-mode tables demonstrate.
class StaticStrategy final : public Strategy {
 public:
  explicit StaticStrategy(arith::ApproxMode mode) : mode_(mode) {}

  std::string name() const override {
    return std::string("static(") + std::string(arith::mode_name(mode_)) +
           ")";
  }
  void reset(const ModeCharacterization&) override {}
  arith::ApproxMode initial_mode() const override { return mode_; }
  Decision observe(arith::ApproxMode,
                   const opt::IterationStats&) override {
    return Decision{mode_, /*rollback=*/false, /*veto_convergence=*/false};
  }

 private:
  arith::ApproxMode mode_;
};

}  // namespace approxit::core
