// Cooperative cancellation and deadlines for iterative runs.
//
// A CancelSource owns one cancellation state; the CancelTokens it hands
// out are cheap shared views that the session's iteration loop and the
// offline characterization poll BETWEEN iterations. Cancellation is
// therefore cooperative and bounded: a cancelled or deadline-expired run
// stops within one iteration, with a well-defined partial result (the
// RunReport carries the state, objective and iteration count reached so
// far under RunStatus::kCancelled / kDeadlineExceeded).
//
// Design constraints, in order:
//  - A default-constructed (inert) token must cost one null-pointer test
//    per iteration and nothing else: runs without deadlines stay
//    bit-identical and allocation-free.
//  - Deadlines are evaluated against a PLUGGABLE clock (milliseconds,
//    monotonic by contract). The serving runtime injects its own clock so
//    chaos tests can skew time deterministically; core code never reads
//    the wall clock directly.
//  - check() latches: the first observed reason (explicit cancel beats a
//    concurrently expiring deadline) is the one every subsequent check()
//    and every other token of the same source reports.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace approxit::core {

/// Why a run was asked to stop.
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,         ///< Explicit CancelSource::cancel().
  kDeadlineExceeded = 2,  ///< The deadline passed.
};

/// Reason label ("none", "cancelled", "deadline_exceeded").
constexpr std::string_view cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kCancelled:
      return "cancelled";
    case CancelReason::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

/// Thrown by cooperative stages that cannot return a partial result (the
/// offline characterization: a half-measured profile must never be
/// computed into the cache). Callers map it back onto the structured
/// kCancelled / kDeadlineExceeded outcome.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("run cancelled: ") +
                           std::string(cancel_reason_name(reason))),
        reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {

/// Shared cancellation cell. `reason` latches the first non-none value;
/// `deadline_ms` is an absolute timestamp on `clock`'s axis (<= 0 = none).
struct CancelState {
  std::atomic<int> reason{0};
  double deadline_ms = 0.0;
  std::function<double()> clock;  ///< Monotonic milliseconds.
};

}  // namespace detail

/// Cheap shared view of a CancelSource. Default-constructed tokens are
/// inert: check() is a single null test and always returns kNone.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is connected to a source (even if not yet
  /// cancelled) — the inverse of "inert".
  bool valid() const { return state_ != nullptr; }

  /// Polls the cancellation state: returns the latched reason, latching
  /// kDeadlineExceeded first if the deadline has passed. kNone otherwise.
  CancelReason check() const {
    if (state_ == nullptr) return CancelReason::kNone;
    int reason = state_->reason.load(std::memory_order_acquire);
    if (reason == 0 && state_->deadline_ms > 0.0 &&
        state_->clock() >= state_->deadline_ms) {
      int expected = 0;
      state_->reason.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadlineExceeded),
          std::memory_order_acq_rel);
      reason = state_->reason.load(std::memory_order_acquire);
    }
    return static_cast<CancelReason>(reason);
  }

  /// check() != kNone, without naming the reason.
  bool stop_requested() const { return check() != CancelReason::kNone; }

  /// check(), throwing CancelledError instead of returning a reason.
  void throw_if_cancelled() const {
    const CancelReason reason = check();
    if (reason != CancelReason::kNone) throw CancelledError(reason);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owns one cancellation state and hands out tokens over it.
class CancelSource {
 public:
  /// `clock` supplies monotonic milliseconds for deadline evaluation;
  /// null uses std::chrono::steady_clock.
  explicit CancelSource(std::function<double()> clock = nullptr);

  /// Arms an absolute deadline (on the source's clock axis). Call before
  /// handing tokens to workers; <= 0 disarms.
  void set_deadline_ms(double absolute_ms) {
    state_->deadline_ms = absolute_ms;
  }

  /// The source's clock reading right now (for deriving absolute
  /// deadlines from relative ones).
  double now_ms() const { return state_->clock(); }

  /// Latches kCancelled (unless a reason is already latched).
  void cancel() {
    int expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kCancelled),
        std::memory_order_acq_rel);
  }

  /// A token observing this source.
  CancelToken token() const { return CancelToken(state_); }

  /// The latched reason (kNone while running).
  CancelReason reason() const { return token().check(); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace approxit::core
