// The adaptive angle-based reconfiguration strategy (Section 4.2).
//
// The manifold steepness angle alpha = atan(||grad f||) measures how much
// freedom the current iterate has: steep regions tolerate approximation
// error (any roughly-downhill move makes progress), flat regions near
// convergence do not. A lookup table maps alpha ranges to approximation
// modes; the range widths Omega come from the energy-minimization problem
// (Equation 5), solved offline against E = f(x^1) - f(x^0) and re-solved
// online every f steps against E = f(x^{k-1}) - f(x^k).
//
// LUT boundaries are placed at empirical quantiles of the steepness
// distribution observed along the characterization trajectory, so the
// mapping is scale-free across applications.
#pragma once

#include <array>

#include "core/mode_mix.h"
#include "core/strategy.h"

namespace approxit::core {

/// Options for AdaptiveAngleStrategy.
struct AdaptiveOptions {
  /// LUT update period in iterations (the paper's f); f = 1 re-solves the
  /// optimization every iteration (greedy), larger f trades adaptivity for
  /// update cost.
  std::size_t update_period = 1;
  /// Strict-positivity floor for the mode weights (omega_i > 0).
  double weight_floor = 0.01;
  /// Guard against degenerate budgets: E is clamped below by this fraction
  /// of the offline initial improvement.
  double min_budget_fraction = 1e-6;
  /// The online budget is the MINIMUM improvement over this many recent
  /// iterations. A single large repair step (after a low-accuracy mode
  /// damaged the state) must not re-license low accuracy — without this
  /// memory the strategy can oscillate damage/repair forever.
  std::size_t budget_window = 3;
  /// Constrain the mode mix with the WORST characterized quality error of
  /// each mode rather than the mean. The mean is the default: premature
  /// stops are already vetoed by the update-error guard, and the worst-case
  /// reading (dominated by early-phase iterations) forces long fully-
  /// accurate tails. Enable for the conservative variant in the ablation
  /// bench.
  bool use_worst_case_error = false;
  /// Quantile of the characterized steepness distribution used as the
  /// reference slope: at this steepness the admissible error equals the
  /// budget exactly. Lower values make the strategy more aggressive
  /// (cheaper modes over wider angle ranges).
  double reference_quantile = 0.25;
};

/// Angle-LUT strategy with offline initialization and online f-step update.
class AdaptiveAngleStrategy final : public Strategy {
 public:
  explicit AdaptiveAngleStrategy(AdaptiveOptions options = {});

  std::string name() const override;
  void reset(const ModeCharacterization& characterization) override;
  arith::ApproxMode initial_mode() const override;
  Decision observe(arith::ApproxMode mode,
                   const opt::IterationStats& stats) override;

  /// Current LUT: angle thresholds t[0] >= t[1] >= ... >= t[3] (radians);
  /// alpha >= t[0] selects level1, alpha >= t[1] level2, ..., otherwise
  /// accurate.
  const std::array<double, arith::kNumModes - 1>& thresholds() const {
    return thresholds_;
  }

  /// The most recent mode-mix solution (for tracing/tests).
  const ModeMix& current_mix() const { return mix_; }

  /// Number of LUT updates performed so far in this run.
  std::size_t lut_updates() const { return lut_updates_; }

 private:
  void rebuild_lut(double budget);
  arith::ApproxMode mode_for_angle(double alpha) const;

  AdaptiveOptions options_;
  ModeCharacterization characterization_;
  ModeMix mix_;
  std::array<double, arith::kNumModes - 1> thresholds_{};
  std::vector<double> recent_improvements_;
  double objective_scale_ = 0.0;
  std::size_t steps_since_update_ = 0;
  std::size_t lut_updates_ = 0;
  double last_angle_ = 0.0;
};

}  // namespace approxit::core
