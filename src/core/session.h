// ApproxItSession: the online reconfiguration engine (Figure 1, right).
//
// Drives an IterativeMethod under a reconfiguration Strategy on a QcsAlu:
// each iteration runs in the strategy-selected mode, monitor statistics are
// fed back, rollbacks are applied, per-mode steps and energy are accounted,
// and convergence is accepted only when the strategy does not veto it.
//
// A convergence Watchdog (watchdog.h) guards every iteration against
// transient-fault corruption: on a trigger the session escalates through
// rollback + forced-accurate mode, checkpoint-ring restore, safe-mode
// latching, and finally a structured abort — the outcome is always a
// well-defined RunStatus, never silently corrupted state.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "arith/alu.h"
#include "core/cancel.h"
#include "core/characterization.h"
#include "core/runtime_hooks.h"
#include "core/strategy.h"
#include "core/watchdog.h"
#include "obs/metrics.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// One executed iteration in the run trace.
struct IterationRecord {
  std::size_t index = 0;             ///< 1-based execution order.
  /// Mode the iteration ran in.
  arith::ApproxMode mode = arith::ApproxMode::kAccurate;
  double objective_after = 0.0;      ///< f(x^k) (before any rollback).
  double energy = 0.0;               ///< Energy spent in this iteration.
  double step_norm = 0.0;            ///< ||x^k - x^{k-1}||.
  double grad_norm = 0.0;            ///< Monitor gradient norm.
  bool rolled_back = false;          ///< Function-scheme rollback applied.
  bool reconfigured = false;         ///< Next mode differs from this one.
  /// Watchdog verdict on this iteration (kNone on a healthy one).
  WatchdogTrigger trigger = WatchdogTrigger::kNone;
  /// Strategy scheme / guard that fired ("none", "gradient", "quality",
  /// "function", "non_finite", "watchdog").
  std::string scheme = "none";
  /// Estimated per-iteration state error ||x||*eps_i of the mode the
  /// iteration ran in (the quantity the quality scheme compares against
  /// step_norm).
  double eps_estimate = 0.0;
  /// Watchdog recovery rung taken on this iteration: 0 healthy, 1 rollback
  /// + forced accurate, 2 checkpoint restore, 3 safe-mode latch engaged,
  /// 4 structured abort.
  int recovery_rung = 0;
};

/// Aggregate result of one session run.
struct RunReport {
  std::string method_name;
  std::string strategy_name;
  std::size_t iterations = 0;  ///< Executed iterations (rollbacks included).
  std::array<std::size_t, arith::kNumModes> steps_per_mode{};
  std::size_t rollbacks = 0;
  std::size_t reconfigurations = 0;
  double total_energy = 0.0;   ///< Normalized units (ledger total).
  double final_objective = 0.0;
  bool converged = false;      ///< True when the method converged in budget.
  /// Structured outcome (kConverged/kRecovered imply converged == true).
  RunStatus status = RunStatus::kBudgetExhausted;
  /// Watchdog trigger counts by kind (all zero on a healthy run).
  WatchdogCounters watchdog;
  /// Rung-1 recoveries: corrupted iteration rolled back, accurate forced.
  std::size_t forced_escalations = 0;
  /// Rung-2 recoveries: state restored from the checkpoint ring.
  std::size_t checkpoint_restores = 0;
  /// True when the safe-mode latch engaged (accurate pinned to the end).
  bool safe_mode = false;
  std::vector<double> final_state;
  std::vector<IterationRecord> trace;

  /// Steps executed in `mode`.
  std::size_t steps(arith::ApproxMode mode) const {
    return steps_per_mode[arith::mode_index(mode)];
  }

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Running totals handed to SessionOptions::on_progress after each
/// executed iteration — the streaming-status seam: a serving front end
/// forwards (a sampled subset of) these to subscribed clients while the
/// run is still in flight.
struct SessionProgress {
  std::size_t iteration = 0;  ///< Executed iterations so far (1-based).
  /// Mode this iteration ran in.
  arith::ApproxMode mode = arith::ApproxMode::kAccurate;
  double objective = 0.0;     ///< f(x) after this iteration.
  double step_norm = 0.0;     ///< ||x^k - x^{k-1}|| of this iteration.
  double energy_total = 0.0;  ///< Cumulative ledger energy so far.
};

/// Options for ApproxItSession::run.
struct SessionOptions {
  /// Cap on executed iterations; 0 uses the method's max_iterations().
  std::size_t max_iterations = 0;
  /// Record the full per-iteration trace (cheap; on by default).
  bool keep_trace = true;
  /// Convergence-watchdog and recovery-ladder configuration. The default
  /// (non-finite + divergence detection only) never fires on a healthy
  /// run, so clean results are identical with the watchdog on or off.
  WatchdogConfig watchdog;
  /// Observation endpoints (core/runtime_hooks.h). hooks.metrics is
  /// attached to the ALU for the duration of the run (the previous
  /// attachment is restored afterwards) and receives the session's
  /// end-of-run counters ("session.iterations", "session.rollbacks",
  /// ...); hooks.trace_sink, when set, becomes the process trace sink for
  /// the run. Pure observation: results are identical with or without
  /// hooks.
  RuntimeHooks hooks;
  /// Cooperative cancellation/deadline token, polled before every
  /// iteration: a cancelled or deadline-expired run stops within ONE
  /// iteration and reports RunStatus::kCancelled / kDeadlineExceeded with
  /// the partial result (iterations, objective, state) reached so far.
  /// The default inert token costs one null test per iteration, so runs
  /// without it are bit-identical to the pre-cancellation session.
  CancelToken cancel;
  /// Invoked after EVERY executed iteration (watchdog-recovered ones
  /// included) with the running totals. Pure observation: the callback
  /// sees copies, never the method state, so results are bit-identical
  /// with or without it; unset costs one null test per iteration. Callers
  /// wanting a coarser stride (e.g. every N iterations) subsample inside
  /// the callback.
  std::function<void(const SessionProgress&)> on_progress;
};

/// Binds a method, a strategy and a QCS ALU for one or more runs.
class ApproxItSession {
 public:
  /// All three references must outlive the session.
  ApproxItSession(opt::IterativeMethod& method, Strategy& strategy,
                  arith::QcsAlu& alu);

  /// Runs the offline characterization (cached across runs). Called
  /// automatically by run() when missing.
  const ModeCharacterization& ensure_characterized(
      const CharacterizationOptions& options = {});

  /// Injects a precomputed characterization (e.g. shared across the many
  /// sessions of a benchmark sweep over the same workload).
  void set_characterization(const ModeCharacterization& characterization) {
    characterization_ = characterization;
    characterized_ = true;
  }

  /// Attaches a characterization cache: ensure_characterized() first asks
  /// `cache` for `key` and only characterizes (then stores) on a miss.
  /// The cache must outlive the session; nullptr detaches. Key derivation:
  /// characterization_cache_key().
  void set_characterization_cache(CharacterizationCache* cache,
                                  CharacterizationKey key) {
    cache_ = cache;
    cache_key_ = std::move(key);
  }

  /// True when the last ensure_characterized() was served from the cache.
  bool characterization_from_cache() const {
    return characterization_from_cache_;
  }

  /// Executes one full run: reset, iterate under the strategy until the
  /// method converges (unvetoed) or the iteration budget is exhausted.
  RunReport run(const SessionOptions& options = {});

  /// The cached characterization (empty optional semantics via flag).
  bool is_characterized() const { return characterized_; }

 private:
  opt::IterativeMethod& method_;
  Strategy& strategy_;
  arith::QcsAlu& alu_;
  ModeCharacterization characterization_;
  bool characterized_ = false;
  CharacterizationCache* cache_ = nullptr;
  CharacterizationKey cache_key_;
  bool characterization_from_cache_ = false;
};

}  // namespace approxit::core
