// Quality-energy Pareto analysis over a set of runs.
//
// The evaluation's core tradeoff is two-dimensional (final quality error vs
// normalized energy); this utility marks the non-dominated configurations
// and orders them into a frontier for reporting.
#pragma once

#include <string>
#include <vector>

namespace approxit::core {

/// One evaluated configuration.
struct ParetoPoint {
  std::string label;     ///< Configuration name ("level2", "adaptive", ...).
  double energy = 0.0;   ///< Normalized energy (lower is better).
  double quality_error = 0.0;  ///< QEM vs Truth (lower is better).
  bool converged = true;
  std::size_t iterations = 0;
};

/// True when `a` dominates `b`: no worse in both objectives and strictly
/// better in at least one. Non-converged points are dominated by any
/// converged point.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Returns the non-dominated subset, sorted by ascending energy (ties by
/// ascending quality error). Labels of dominated points are dropped.
std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points);

/// Renders a frontier (or any point list) as CSV text with header
/// `label,energy,quality_error,iterations,converged,on_frontier`, marking
/// frontier membership against the given full set.
std::string pareto_csv(const std::vector<ParetoPoint>& all_points);

}  // namespace approxit::core
