// PID-controlled dynamic effort scaling — the baseline ApproxIt argues
// against (Chippa et al., "Managing the Quality vs. Efficiency Trade-off
// Using Dynamic Effort Scaling", TECS'13; Section 2.3 of the paper).
//
// A sensor extracts a quality proxy from each iteration (by default the
// relative objective improvement; the K-means motivation bench plugs in the
// mean-centroid-distance sensor). A PID loop steers the accuracy level
// toward a quality setpoint. The controller can move in BOTH directions and
// has no convergence veto or rollback — which is precisely why it cannot
// guarantee final quality.
#pragma once

#include <functional>

#include "core/strategy.h"

namespace approxit::core {

/// Options for PidStrategy.
struct PidOptions {
  double kp = 8.0;   ///< Proportional gain.
  double ki = 2.0;   ///< Integral gain.
  double kd = 0.0;   ///< Derivative gain.
  /// Quality setpoint: target sensor value per iteration.
  double setpoint = 0.01;
  /// Accuracy level used for the first iteration.
  arith::ApproxMode initial_mode = arith::ApproxMode::kLevel2;
  /// Anti-windup clamp on the integral term.
  double integral_limit = 10.0;
};

/// Sensor signature: maps iteration statistics to a quality proxy (larger
/// means better quality / more progress).
using QualitySensor = std::function<double(const opt::IterationStats&)>;

/// The default sensor: relative objective improvement
/// (f_{k-1} - f_k) / max(|f_{k-1}|, 1e-12).
double relative_improvement_sensor(const opt::IterationStats& stats);

/// Sensor-driven PID effort controller.
class PidStrategy final : public Strategy {
 public:
  explicit PidStrategy(PidOptions options = {},
                       QualitySensor sensor = relative_improvement_sensor);

  std::string name() const override { return "pid"; }
  void reset(const ModeCharacterization& characterization) override;
  arith::ApproxMode initial_mode() const override {
    return options_.initial_mode;
  }
  Decision observe(arith::ApproxMode mode,
                   const opt::IterationStats& stats) override;

  /// Number of mode changes so far (instability indicator in the
  /// motivation bench).
  std::size_t mode_changes() const { return mode_changes_; }

 private:
  PidOptions options_;
  QualitySensor sensor_;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  bool has_previous_ = false;
  std::size_t mode_changes_ = 0;
};

}  // namespace approxit::core
