// Oracle mode selection: follows the ACCURATE trajectory and, at every
// iteration, probes which is the cheapest mode whose one-step result would
// have stayed within the update-error criterion of the accurate step. The
// probes are free and the state always advances by the accurate step, so
// the accounted energy is a clean lower bound on any mode SCHEDULE over
// the exact trajectory at zero per-iteration deviation. Note that causal
// strategies can still undercut it in total energy by CONVERGING EARLIER
// on their own approximate trajectory (fewer iterations) — the oracle
// isolates the mode-selection headroom from that trajectory effect.
#pragma once

#include "arith/alu.h"
#include "core/characterization.h"
#include "core/session.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// Options for the oracle run.
struct OracleOptions {
  /// Acceptance threshold: a mode is admissible when its one-step state
  /// deviation from the accurate result is at most `slack` times the
  /// accurate step length (slack = 1 is the update-error criterion).
  double slack = 1.0;
  /// Iteration cap; 0 uses the method's max_iterations().
  std::size_t max_iterations = 0;
};

/// Runs `method` along the accurate trajectory, accounting each iteration
/// at the cheapest admissible mode's energy (lookahead probes are free).
/// The report's strategy name is "oracle".
RunReport run_oracle(opt::IterativeMethod& method, arith::QcsAlu& alu,
                     const OracleOptions& options = {});

}  // namespace approxit::core
