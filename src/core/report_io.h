// Run-report serialization: CSV trace export and a JSON summary, so runs
// can be archived, diffed and plotted outside the harness.
#pragma once

#include <string>

#include "core/session.h"

namespace approxit::core {

/// Writes the per-iteration trace as CSV with header
/// `iteration,mode,objective,energy,step_norm,grad_norm,rolled_back,
/// reconfigured,watchdog`. Throws std::runtime_error if the file cannot be
/// opened.
void write_trace_csv(const RunReport& report, const std::string& path);

/// Serializes the report summary (no trace) as a JSON object string:
/// method, strategy, iterations, per-mode steps, rollbacks,
/// reconfigurations, energy, final objective, convergence flag, run
/// status, and the watchdog/recovery counters.
std::string report_to_json(const RunReport& report);

/// Writes report_to_json() to a file. Throws std::runtime_error on I/O
/// failure.
void write_report_json(const RunReport& report, const std::string& path);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& text);

}  // namespace approxit::core
