// Run-report serialization: CSV trace export/import and a JSON summary, so
// runs can be archived, diffed and plotted outside the harness.
#pragma once

#include <string>
#include <vector>

#include "core/session.h"

namespace approxit::core {

/// Writes the per-iteration trace as CSV with header
/// `iteration,mode,objective,energy,step_norm,grad_norm,rolled_back,
/// reconfigured,watchdog,scheme,eps_estimate,recovery_rung`. Doubles are
/// written with 17 significant digits so read_trace_csv round-trips them
/// exactly. Throws std::runtime_error if the file cannot be opened.
void write_trace_csv(const RunReport& report, const std::string& path);

/// Reads a trace CSV back into IterationRecords. Columns are matched by
/// header name, so files written before the scheme/eps_estimate/
/// recovery_rung columns existed load fine — missing fields keep their
/// defaults. Throws std::runtime_error on I/O failure, a missing header or
/// an unknown mode label.
std::vector<IterationRecord> read_trace_csv(const std::string& path);

/// Serializes the report summary (no trace) as a JSON object string:
/// method, strategy, iterations, per-mode steps, rollbacks,
/// reconfigurations, energy, final objective, convergence flag, run
/// status, and the watchdog/recovery counters.
std::string report_to_json(const RunReport& report);

/// Writes report_to_json() to a file. Throws std::runtime_error on I/O
/// failure.
void write_report_json(const RunReport& report, const std::string& path);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& text);

}  // namespace approxit::core
