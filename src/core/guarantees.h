// Convergence-guarantee criteria (Section 3.2).
//
// These free functions encode the two theoretical conditions ApproxIt's
// schemes enforce; they are exercised directly by the property tests and
// referenced by the strategies:
//
//  1. Direction criterion (Proposition 1, after Boyd & Vandenberghe):
//     a step direction d with grad f(x)^T d < 0 admits a step size that
//     strictly decreases f — checking the realized step against the monitor
//     gradient detects approximation-corrupted directions.
//  2. Update-error criterion (after Luo & Tseng's error-bound analysis of
//     feasible descent): the injected update error must satisfy
//     ||eps^k|| <= ||x^k - x^{k+1}|| for the perturbed descent to converge.
#pragma once

#include "opt/iterative_method.h"

namespace approxit::core {

/// True when the realized step satisfies the direction criterion
/// grad f(x^{k-1})^T (x^k - x^{k-1}) < 0 (strictly descent-aligned).
bool direction_criterion_ok(const opt::IterationStats& stats);

/// True when an (estimated) update-error magnitude is admissible for the
/// observed step: ||eps|| <= ||x^k - x^{k-1}||.
bool update_error_criterion_ok(double error_norm, double step_norm);

/// Convenience: estimated mode error (||x^k|| * eps_mode, the quality
/// scheme's estimate) checked against the observed step norm.
bool update_error_criterion_ok(const opt::IterationStats& stats,
                               double mode_quality_error);

}  // namespace approxit::core
