// Solver for the adaptive strategy's mode-mix optimization (Equation 5):
//
//   min  Omega^T J
//   s.t. sum_i omega_i = 1,  omega_i > 0,  Omega^T eps <= E
//
// with J the per-mode energies, eps the per-mode quality errors and E the
// error tolerable in the current iteration. The feasible set is a simplex
// slice; the optimum of this tiny LP lies on a vertex spanned by at most two
// modes, so we enumerate single modes and mode pairs exactly — equivalent
// to the paper's Lagrange-multiplier solution, but with no iteration and no
// tolerance knobs.
#pragma once

#include <array>

#include "arith/mode.h"

namespace approxit::core {

/// Result of the mode-mix optimization.
struct ModeMix {
  /// Fraction of the angle range assigned to each mode; sums to 1.
  std::array<double, arith::kNumModes> weights{};
  /// Omega^T J of the solution.
  double energy = 0.0;
  /// Omega^T eps of the solution.
  double expected_error = 0.0;
  /// False when even the most accurate mix violates the budget (then the
  /// returned mix is the all-accurate fallback).
  bool feasible = true;
};

/// Solves Equation 5. `floor` is the strict-positivity floor substituted
/// for "omega_i > 0" (every mode keeps at least this weight so each
/// accuracy level stays reachable, as the 5x1 LUT in the paper does).
///
/// Preconditions: energies/errors are per-mode arrays indexed by
/// mode_index(); errors[kAccurate] must be 0; budget E >= 0.
ModeMix solve_mode_mix(const std::array<double, arith::kNumModes>& energies,
                       const std::array<double, arith::kNumModes>& errors,
                       double budget, double floor = 0.01);

}  // namespace approxit::core
