// The paper's iteration-level quality metric (Definition 1) and the
// lightweight runtime quality estimator built on it.
//
// Low-level adder metrics (ER/ME/WCE) cannot predict application quality
// because of error masking/accumulation; ApproxIt instead characterizes the
// RELATIVE OBJECTIVE ERROR OF ONE ITERATION, which is directly comparable
// across modes and across applications.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "arith/mode.h"

namespace approxit::core {

/// Definition 1: quality error of one iteration,
///   epsilon = |f(x) - f'(x)| / |f(x)|,
/// where f(x) is the accurate result of the iteration and f'(x) the
/// approximate one. Falls back to the absolute difference when |f(x)| is
/// (near) zero.
double quality_error(double accurate, double approximate);

/// Per-mode offline characterization result: the pre-characterized quality
/// error and per-operation energy of each approximation mode, plus the
/// observed manifold-steepness distribution used by the adaptive strategy.
struct ModeCharacterization {
  /// Mean per-iteration quality error of each mode (kAccurate entry is 0).
  std::array<double, arith::kNumModes> quality_error{};
  /// Worst observed per-iteration quality error of each mode.
  std::array<double, arith::kNumModes> worst_quality_error{};
  /// Mean per-iteration STATE error of each mode: ||x'_approx - x'_exact||
  /// / ||x'_exact|| after one iteration from a common state. This feeds the
  /// update-error criterion ||eps^k|| <= ||x^k - x^{k-1}|| (quality scheme):
  /// ||x^k|| * state_error[mode] estimates ||eps^k|| online.
  std::array<double, arith::kNumModes> state_error{};
  /// Worst observed per-iteration state error of each mode.
  std::array<double, arith::kNumModes> worst_state_error{};
  /// Mean ABSOLUTE one-step state deviation ||x'_approx - x'_exact|| of
  /// each mode. Lower-part approximate adders inject value-INDEPENDENT
  /// errors, so the absolute deviation is the better estimator when the
  /// iterate itself is small (e.g. solvers started at x = 0, where the
  /// relative estimate degenerates to zero and would miss false stops).
  std::array<double, arith::kNumModes> abs_state_error{};
  /// Per-operation energy of each mode (from the ALU's structural model).
  std::array<double, arith::kNumModes> energy_per_op{};
  /// Sorted steepness-angle samples (radians, in [0, pi/2)) observed along
  /// the exact reference trajectory; empirical quantiles of this
  /// distribution place the adaptive strategy's LUT boundaries.
  std::vector<double> angle_samples;
  /// RELATIVE objective improvement of the first exact iteration,
  /// E = (f(x^0) - f(x^1)) / |f(x^0)| — the paper's initial error budget,
  /// normalized so it is unit-compatible with the relative quality errors.
  double initial_improvement = 0.0;
  /// Iterations simulated per mode during characterization.
  std::size_t iterations_characterized = 0;
  /// |f(x^0)| of the reference trajectory: the objective scale all relative
  /// quantities (quality errors, budgets) are normalized by. Definition 1's
  /// per-iteration normalization by |f(x)| degenerates for residual-type
  /// objectives that approach zero; normalizing by the initial scale keeps
  /// epsilon and the error budget E in the same, well-behaved units.
  double objective_scale = 1.0;

  /// epsilon_i accessor by mode (objective-relative quality error).
  double epsilon(arith::ApproxMode mode) const {
    return quality_error[arith::mode_index(mode)];
  }

  /// State-relative per-iteration error accessor by mode.
  double state_epsilon(arith::ApproxMode mode) const {
    return state_error[arith::mode_index(mode)];
  }

  /// Absolute per-iteration state-deviation accessor by mode.
  double abs_state_epsilon(arith::ApproxMode mode) const {
    return abs_state_error[arith::mode_index(mode)];
  }

  /// The update-error estimate ||eps^k|| used by the quality scheme:
  /// the larger of the relative and absolute characterized deviations
  /// (conservative under both value-proportional and value-independent
  /// adder error structures).
  double estimated_state_error(arith::ApproxMode mode,
                               double state_norm) const {
    const double rel = state_norm * state_epsilon(mode);
    const double abs = abs_state_epsilon(mode);
    return rel > abs ? rel : abs;
  }

  /// Energy accessor by mode.
  double energy(arith::ApproxMode mode) const {
    return energy_per_op[arith::mode_index(mode)];
  }

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Manifold steepness angle alpha = atan(||grad f||) in radians, in
/// [0, pi/2). This is the angle between the tangent plane at the current
/// point and the base plane perpendicular to the objective axis (Fig. 2).
double steepness_angle(double grad_norm);

}  // namespace approxit::core
