// The incremental reconfiguration strategy (Section 4.1).
//
// Starts at the lowest accuracy level and only ever steps to the adjacent
// higher-accuracy mode. Three schemes trigger a reconfiguration:
//
//  - Gradient scheme (error prevention): fires when the realized step makes
//    an obtuse angle with the negative monitor gradient,
//      grad f(x^{k-1})^T (x^k - x^{k-1}) > 0.
//  - Quality scheme (error prevention): fires when the estimated per-
//    iteration error of the current mode dominates the observed progress,
//      |f(x^k) - f(x^{k-1})| < ||x^k|| * eps_i.
//  - Function scheme (error recovery): fires when the objective INCREASES,
//      f(x^k) > f(x^{k-1}); the iteration is additionally rolled back.
//
// Each scheme can be disabled individually for the ablation benches.
#pragma once

#include "core/strategy.h"

namespace approxit::core {

/// Scheme toggles (all enabled by default, as in the paper).
struct IncrementalOptions {
  bool gradient_scheme = true;
  bool quality_scheme = true;
  bool function_scheme = true;
  /// Numerical slack on the function scheme: the objective must increase by
  /// more than this relative amount before a rollback fires (guards against
  /// benign floating-point jitter at convergence).
  double function_slack = 1e-12;
};

/// One-directional (low accuracy -> high accuracy) reconfiguration with the
/// gradient/quality/function schemes.
class IncrementalStrategy final : public Strategy {
 public:
  explicit IncrementalStrategy(IncrementalOptions options = {});

  std::string name() const override { return "incremental"; }
  void reset(const ModeCharacterization& characterization) override;
  arith::ApproxMode initial_mode() const override {
    return arith::ApproxMode::kLevel1;
  }
  Decision observe(arith::ApproxMode mode,
                   const opt::IterationStats& stats) override;

  /// Which scheme fired on the last observe() (for tracing/tests):
  /// "none", "gradient", "quality", "function" or "non_finite".
  const std::string& last_trigger() const { return last_trigger_; }

  /// Cumulative firing counts since reset() (for the ablation bench).
  std::size_t gradient_triggers() const { return gradient_triggers_; }
  std::size_t quality_triggers() const { return quality_triggers_; }
  std::size_t function_triggers() const { return function_triggers_; }
  std::size_t nonfinite_triggers() const { return nonfinite_triggers_; }

 private:
  IncrementalOptions options_;
  ModeCharacterization characterization_;
  std::string last_trigger_ = "none";
  std::size_t gradient_triggers_ = 0;
  std::size_t quality_triggers_ = 0;
  std::size_t function_triggers_ = 0;
  std::size_t nonfinite_triggers_ = 0;
};

}  // namespace approxit::core
