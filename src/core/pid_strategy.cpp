#include "core/pid_strategy.h"

#include <algorithm>
#include <cmath>

namespace approxit::core {

double relative_improvement_sensor(const opt::IterationStats& stats) {
  const double denom = std::max(std::abs(stats.objective_before), 1e-12);
  return stats.improvement() / denom;
}

PidStrategy::PidStrategy(PidOptions options, QualitySensor sensor)
    : options_(options), sensor_(std::move(sensor)) {}

void PidStrategy::reset(const ModeCharacterization&) {
  integral_ = 0.0;
  previous_error_ = 0.0;
  has_previous_ = false;
  mode_changes_ = 0;
}

Decision PidStrategy::observe(arith::ApproxMode mode,
                              const opt::IterationStats& stats) {
  const double reading = sensor_(stats);
  // A non-finite sensor reading would poison the integral term and feed
  // NaN into lround() below (UB). Treat it as maximal quality error: jump
  // to accurate. (No veto — the controller stays the naive baseline.)
  if (!stats.finite() || !std::isfinite(reading)) {
    if (mode != arith::ApproxMode::kAccurate) ++mode_changes_;
    return Decision{arith::ApproxMode::kAccurate, /*rollback=*/false,
                    /*veto_convergence=*/false};
  }

  // Positive error = quality below target -> raise accuracy.
  const double error = options_.setpoint - reading;
  integral_ = std::clamp(integral_ + error, -options_.integral_limit,
                         options_.integral_limit);
  const double derivative = has_previous_ ? error - previous_error_ : 0.0;
  previous_error_ = error;
  has_previous_ = true;

  const double control = options_.kp * error + options_.ki * integral_ +
                         options_.kd * derivative;

  const double current = static_cast<double>(arith::mode_index(mode));
  const double target = std::clamp(
      current + control, 0.0, static_cast<double>(arith::kNumModes - 1));
  const auto next = arith::mode_from_index(
      static_cast<std::size_t>(std::lround(target)));
  if (next != mode) ++mode_changes_;
  // No veto, no rollback: the controller trusts the sensor entirely.
  return Decision{next, /*rollback=*/false, /*veto_convergence=*/false};
}

}  // namespace approxit::core
