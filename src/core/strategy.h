// Online reconfiguration strategy interface (Section 4).
//
// A strategy observes the per-iteration monitor statistics and decides the
// approximation mode of the NEXT iteration, optionally requesting a
// one-iteration rollback (the incremental strategy's function scheme).
#pragma once

#include <string>

#include "arith/mode.h"
#include "core/quality.h"
#include "opt/iterative_method.h"

namespace approxit::core {

/// Outcome of observing one iteration.
struct Decision {
  /// Mode to configure for the next iteration.
  arith::ApproxMode mode = arith::ApproxMode::kAccurate;
  /// Roll the just-completed iteration back before continuing.
  bool rollback = false;
  /// Suppress convergence-based termination for this iteration: the
  /// strategy suspects the observed stall/convergence is approximation-
  /// induced, not real (the mechanism behind the paper's "no false stops"
  /// guarantee).
  bool veto_convergence = false;
  /// Which scheme/guard produced this decision ("none" when nothing
  /// fired); propagated into the iteration trace and the trace sink.
  std::string scheme = "none";
};

/// Base class for all reconfiguration strategies.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Strategy name for reports ("incremental", "adaptive(f=1)", ...).
  virtual std::string name() const = 0;

  /// (Re)initializes internal state from the offline characterization.
  /// Called once per session run, before the first iteration.
  virtual void reset(const ModeCharacterization& characterization) = 0;

  /// Mode for the first iteration.
  virtual arith::ApproxMode initial_mode() const = 0;

  /// Observes the statistics of the iteration just executed in `mode` and
  /// returns the decision for the next one.
  virtual Decision observe(arith::ApproxMode mode,
                           const opt::IterationStats& stats) = 0;
};

}  // namespace approxit::core
