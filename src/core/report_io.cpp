#include "core/report_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace approxit::core {

namespace {

/// Full-precision double formatting: std::to_string keeps only 6 digits,
/// which breaks the read_trace_csv round-trip.
std::string format_full(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Splits one CSV record per RFC 4180 (the dialect CsvWriter emits).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

WatchdogTrigger parse_watchdog_trigger(const std::string& name) {
  for (std::size_t t = 0; t < kNumWatchdogTriggers; ++t) {
    const auto trigger = static_cast<WatchdogTrigger>(static_cast<int>(t));
    if (name == watchdog_trigger_name(trigger)) return trigger;
  }
  return WatchdogTrigger::kNone;
}

}  // namespace

void write_trace_csv(const RunReport& report, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_row({"iteration", "mode", "objective", "energy", "step_norm",
                 "grad_norm", "rolled_back", "reconfigured", "watchdog",
                 "scheme", "eps_estimate", "recovery_rung"});
  for (const IterationRecord& rec : report.trace) {
    csv.write_row({std::to_string(rec.index),
                   std::string(arith::mode_name(rec.mode)),
                   format_full(rec.objective_after),
                   format_full(rec.energy),
                   format_full(rec.step_norm),
                   format_full(rec.grad_norm),
                   rec.rolled_back ? "1" : "0",
                   rec.reconfigured ? "1" : "0",
                   std::string(watchdog_trigger_name(rec.trigger)),
                   rec.scheme,
                   format_full(rec.eps_estimate),
                   std::to_string(rec.recovery_rung)});
  }
}

std::vector<IterationRecord> read_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_csv: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("read_trace_csv: missing header in " + path);
  }
  // Column positions come from the header, so older files (fewer columns)
  // and any future reordering both load correctly.
  std::map<std::string, std::size_t> columns;
  {
    const std::vector<std::string> header = split_csv_line(line);
    for (std::size_t i = 0; i < header.size(); ++i) columns[header[i]] = i;
  }
  const auto field = [&](const std::vector<std::string>& fields,
                         const char* name) -> const std::string* {
    const auto it = columns.find(name);
    if (it == columns.end() || it->second >= fields.size()) return nullptr;
    return &fields[it->second];
  };

  std::vector<IterationRecord> trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    IterationRecord rec;
    if (const std::string* v = field(fields, "iteration")) {
      rec.index = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                         nullptr, 10));
    }
    if (const std::string* v = field(fields, "mode")) {
      const std::optional<arith::ApproxMode> mode = arith::parse_mode(*v);
      if (!mode) {
        throw std::runtime_error("read_trace_csv: unknown mode '" + *v +
                                 "' in " + path);
      }
      rec.mode = *mode;
    }
    if (const std::string* v = field(fields, "objective")) {
      rec.objective_after = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = field(fields, "energy")) {
      rec.energy = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = field(fields, "step_norm")) {
      rec.step_norm = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = field(fields, "grad_norm")) {
      rec.grad_norm = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = field(fields, "rolled_back")) {
      rec.rolled_back = *v == "1";
    }
    if (const std::string* v = field(fields, "reconfigured")) {
      rec.reconfigured = *v == "1";
    }
    if (const std::string* v = field(fields, "watchdog")) {
      rec.trigger = parse_watchdog_trigger(*v);
    }
    if (const std::string* v = field(fields, "scheme")) {
      rec.scheme = *v;
    }
    if (const std::string* v = field(fields, "eps_estimate")) {
      rec.eps_estimate = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = field(fields, "recovery_rung")) {
      rec.recovery_rung = static_cast<int>(std::strtol(v->c_str(),
                                                       nullptr, 10));
    }
    trace.push_back(std::move(rec));
  }
  return trace;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string report_to_json(const RunReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "{";
  os << "\"method\":\"" << json_escape(report.method_name) << "\",";
  os << "\"strategy\":\"" << json_escape(report.strategy_name) << "\",";
  os << "\"iterations\":" << report.iterations << ",";
  os << "\"steps_per_mode\":{";
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    if (i > 0) os << ",";
    os << "\"" << arith::mode_name(arith::mode_from_index(i)) << "\":"
       << report.steps_per_mode[i];
  }
  os << "},";
  os << "\"rollbacks\":" << report.rollbacks << ",";
  os << "\"reconfigurations\":" << report.reconfigurations << ",";
  os << "\"total_energy\":" << report.total_energy << ",";
  os << "\"final_objective\":" << report.final_objective << ",";
  os << "\"converged\":" << (report.converged ? "true" : "false") << ",";
  os << "\"status\":\"" << run_status_name(report.status) << "\",";
  os << "\"watchdog\":{";
  os << "\"triggers\":" << report.watchdog.total() << ",";
  for (std::size_t t = 1; t < kNumWatchdogTriggers; ++t) {
    const auto trigger = static_cast<WatchdogTrigger>(static_cast<int>(t));
    os << "\"" << watchdog_trigger_name(trigger)
       << "\":" << report.watchdog.count(trigger) << ",";
  }
  os << "\"forced_escalations\":" << report.forced_escalations << ",";
  os << "\"checkpoint_restores\":" << report.checkpoint_restores << ",";
  os << "\"safe_mode\":" << (report.safe_mode ? "true" : "false");
  os << "}}";
  return os.str();
}

void write_report_json(const RunReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_report_json: cannot open " + path);
  }
  out << report_to_json(report) << '\n';
}

}  // namespace approxit::core
