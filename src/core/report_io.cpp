#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace approxit::core {

void write_trace_csv(const RunReport& report, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_row({"iteration", "mode", "objective", "energy", "step_norm",
                 "grad_norm", "rolled_back", "reconfigured", "watchdog"});
  for (const IterationRecord& rec : report.trace) {
    csv.write_row({std::to_string(rec.index),
                   std::string(arith::mode_name(rec.mode)),
                   std::to_string(rec.objective_after),
                   std::to_string(rec.energy),
                   std::to_string(rec.step_norm),
                   std::to_string(rec.grad_norm),
                   rec.rolled_back ? "1" : "0",
                   rec.reconfigured ? "1" : "0",
                   std::string(watchdog_trigger_name(rec.trigger))});
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string report_to_json(const RunReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "{";
  os << "\"method\":\"" << json_escape(report.method_name) << "\",";
  os << "\"strategy\":\"" << json_escape(report.strategy_name) << "\",";
  os << "\"iterations\":" << report.iterations << ",";
  os << "\"steps_per_mode\":{";
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    if (i > 0) os << ",";
    os << "\"" << arith::mode_name(arith::mode_from_index(i)) << "\":"
       << report.steps_per_mode[i];
  }
  os << "},";
  os << "\"rollbacks\":" << report.rollbacks << ",";
  os << "\"reconfigurations\":" << report.reconfigurations << ",";
  os << "\"total_energy\":" << report.total_energy << ",";
  os << "\"final_objective\":" << report.final_objective << ",";
  os << "\"converged\":" << (report.converged ? "true" : "false") << ",";
  os << "\"status\":\"" << run_status_name(report.status) << "\",";
  os << "\"watchdog\":{";
  os << "\"triggers\":" << report.watchdog.total() << ",";
  for (std::size_t t = 1; t < kNumWatchdogTriggers; ++t) {
    const auto trigger = static_cast<WatchdogTrigger>(static_cast<int>(t));
    os << "\"" << watchdog_trigger_name(trigger)
       << "\":" << report.watchdog.count(trigger) << ",";
  }
  os << "\"forced_escalations\":" << report.forced_escalations << ",";
  os << "\"checkpoint_restores\":" << report.checkpoint_restores << ",";
  os << "\"safe_mode\":" << (report.safe_mode ? "true" : "false");
  os << "}}";
  return os.str();
}

void write_report_json(const RunReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_report_json: cannot open " + path);
  }
  out << report_to_json(report) << '\n';
}

}  // namespace approxit::core
