#include "core/cancel.h"

#include <chrono>

namespace approxit::core {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CancelSource::CancelSource(std::function<double()> clock)
    : state_(std::make_shared<detail::CancelState>()) {
  state_->clock = clock != nullptr ? std::move(clock) : steady_now_ms;
}

}  // namespace approxit::core
