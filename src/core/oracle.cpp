#include "core/oracle.h"

#include <cmath>

#include "la/vector_ops.h"

namespace approxit::core {

RunReport run_oracle(opt::IterativeMethod& method, arith::QcsAlu& alu,
                     const OracleOptions& options) {
  method.reset();
  alu.reset_ledger();

  RunReport report;
  report.method_name = method.name();
  report.strategy_name = "oracle";
  const std::size_t budget = options.max_iterations > 0
                                 ? options.max_iterations
                                 : method.max_iterations();

  double energy_accounted = 0.0;

  while (report.iterations < budget) {
    const std::vector<double> snapshot = method.state();

    // Accurate reference step.
    alu.set_mode(arith::ApproxMode::kAccurate);
    const double acc_energy_before = alu.ledger().total_energy();
    const opt::IterationStats acc_stats = method.iterate(alu);
    const double acc_energy =
        alu.ledger().total_energy() - acc_energy_before;
    const std::vector<double> acc_state = method.state();
    const double acc_step =
        la::distance2(acc_state, snapshot);

    // Cheapest admissible approximate mode (probe from the same snapshot;
    // the state will advance by the ACCURATE step regardless, so the
    // accounted energy is a true lower bound at zero quality loss).
    arith::ApproxMode chosen = arith::ApproxMode::kAccurate;
    double chosen_energy = acc_energy;
    for (arith::ApproxMode mode :
         {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
          arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
      method.restore(snapshot);
      alu.set_mode(mode);
      const double before = alu.ledger().total_energy();
      (void)method.iterate(alu);
      const double energy = alu.ledger().total_energy() - before;
      const std::vector<double> state = method.state();
      const double deviation = la::distance2(state, acc_state);
      if (deviation <= options.slack * acc_step) {
        chosen = mode;
        chosen_energy = energy;
        break;  // modes are ordered cheapest-first
      }
    }

    // Advance along the accurate trajectory.
    method.restore(acc_state);

    ++report.iterations;
    ++report.steps_per_mode[arith::mode_index(chosen)];
    energy_accounted += chosen_energy;

    IterationRecord record;
    record.index = report.iterations;
    record.mode = chosen;
    record.objective_after = acc_stats.objective_after;
    record.energy = chosen_energy;
    record.step_norm = acc_stats.step_norm;
    record.grad_norm = acc_stats.grad_norm;
    report.trace.push_back(record);

    // Convergence is judged on the ACCURATE step (the oracle never false
    // stops: it knows the true dynamics).
    if (acc_stats.converged) {
      report.converged = true;
      break;
    }
  }

  report.total_energy = energy_accounted;
  report.final_objective = method.objective();
  report.final_state = method.state();
  return report;
}

}  // namespace approxit::core
