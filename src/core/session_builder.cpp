#include "core/session_builder.h"

#include <stdexcept>

namespace approxit::core {

ApproxItSession SessionBuilder::build() const {
  if (method_ == nullptr) {
    throw std::logic_error("SessionBuilder: method() is required");
  }
  if (strategy_ == nullptr) {
    throw std::logic_error("SessionBuilder: strategy() is required");
  }
  if (alu_ == nullptr) {
    throw std::logic_error("SessionBuilder: alu() is required");
  }
  if (cache_ != nullptr && workload_tag_.empty() && !have_characterization_) {
    throw std::logic_error(
        "SessionBuilder: profile_cache() needs a non-empty workload tag");
  }

  ApproxItSession session(*method_, *strategy_, *alu_);
  if (have_characterization_) {
    session.set_characterization(characterization_);
  } else if (cache_ != nullptr) {
    session.set_characterization_cache(
        cache_, characterization_cache_key(*method_, *alu_,
                                           characterization_options_,
                                           workload_tag_));
  }
  return session;
}

RunReport SessionBuilder::run() const {
  ApproxItSession session = build();
  session.ensure_characterized(characterization_options_);
  return session.run(options_);
}

}  // namespace approxit::core
