// Shared observation hooks for the run-shaped entry points.
//
// SessionOptions and SweepOptions used to carry their own parallel
// metrics/trace knobs; RuntimeHooks is the one struct both embed, so a
// caller wires observation up the same way whether it runs one session,
// a sweep, or a service job. Hooks are pure observation: results are
// bit-identical with or without them.
#pragma once

namespace approxit::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace approxit::obs

namespace approxit::core {

/// Observation endpoints threaded through session/sweep/service runs.
struct RuntimeHooks {
  /// When set, the run attaches this registry (sessions attach it to the
  /// ALU for the duration and post end-of-run counters; sweeps give every
  /// arm its own registry and merge them here in fixed arm order).
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, the run installs this sink as the process trace sink for
  /// its duration and restores the previous sink afterwards. The trace
  /// sink is process-global: install per-run sinks from one thread at a
  /// time only (a long-lived service installs its sink once at startup
  /// instead). nullptr leaves the active sink untouched.
  obs::TraceSink* trace_sink = nullptr;
};

}  // namespace approxit::core
