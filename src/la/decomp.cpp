#include "la/decomp.h"

#include <cmath>
#include <stdexcept>

namespace approxit::la {
namespace {

constexpr double kSingularTolerance = 1e-12;

void check_square(const Matrix& a, const char* who) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(std::string(who) + ": matrix must be square");
  }
}

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  check_square(a, "cholesky");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (sum <= kSingularTolerance) {
          return std::nullopt;  // not positive definite
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::optional<std::vector<double>> cholesky_solve(const Matrix& a,
                                                  std::span<const double> b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("cholesky_solve: dimension mismatch");
  }
  const auto l = cholesky(a);
  if (!l) return std::nullopt;
  const std::size_t n = a.rows();
  // Forward solve L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= (*l)(i, k) * y[k];
    y[i] = sum / (*l)(i, i);
  }
  // Backward solve L^T x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= (*l)(k, i) * x[k];
    x[i] = sum / (*l)(i, i);
  }
  return x;
}

std::optional<LuDecomposition> lu_decompose(const Matrix& a) {
  check_square(a, "lu_decompose");
  const std::size_t n = a.rows();
  LuDecomposition out;
  out.lu = a;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(out.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(out.lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= kSingularTolerance) {
      return std::nullopt;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(out.lu(pivot, c), out.lu(col, c));
      }
      std::swap(out.perm[pivot], out.perm[col]);
      out.sign = -out.sign;
    }
    const double diag = out.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = out.lu(r, col) / diag;
      out.lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        out.lu(r, c) -= factor * out.lu(col, c);
      }
    }
  }
  return out;
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: dimension mismatch");
  }
  // Apply permutation, forward solve L y = Pb (unit diagonal).
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t k = 0; k < i; ++k) sum -= lu(i, k) * y[k];
    y[i] = sum;
  }
  // Backward solve U x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lu(i, k) * x[k];
    x[i] = sum / lu(i, i);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = static_cast<double>(sign);
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

std::optional<std::vector<double>> lu_solve(const Matrix& a,
                                            std::span<const double> b) {
  const auto lu = lu_decompose(a);
  if (!lu) return std::nullopt;
  return lu->solve(b);
}

double determinant(const Matrix& a) {
  const auto lu = lu_decompose(a);
  return lu ? lu->determinant() : 0.0;
}

std::optional<Matrix> inverse(const Matrix& a) {
  const auto lu = lu_decompose(a);
  if (!lu) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix inv(n, n, 0.0);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const std::vector<double> col = lu->solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

bool LuWorkspace::factor(const Matrix& a) {
  check_square(a, "LuWorkspace::factor");
  n_ = a.rows();
  lu_ = a;  // vector copy-assign: reuses capacity for same-sized refactors
  perm_.resize(n_);
  y_.resize(n_);
  e_.assign(n_, 0.0);
  col_.resize(n_);
  sign_ = 1;
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  // Identical elimination to lu_decompose (same pivot choice, same update
  // order, same tolerance) so the factors — and everything derived from
  // them — match bit-for-bit.
  for (std::size_t col = 0; col < n_; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= kSingularTolerance) {
      return false;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_(pivot, c), lu_(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
      sign_ = -sign_;
    }
    const double diag = lu_(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double factor = lu_(r, col) / diag;
      lu_(r, col) = factor;
      for (std::size_t c = col + 1; c < n_; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
  return true;
}

double LuWorkspace::determinant() const {
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

void LuWorkspace::solve(std::span<const double> b,
                        std::span<double> out) const {
  if (b.size() != n_ || out.size() != n_) {
    throw std::invalid_argument("LuWorkspace::solve: dimension mismatch");
  }
  // Same forward/backward substitution as LuDecomposition::solve.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) sum -= lu_(i, k) * y_[k];
    y_[i] = sum;
  }
  for (std::size_t i = n_; i-- > 0;) {
    double sum = y_[i];
    for (std::size_t k = i + 1; k < n_; ++k) sum -= lu_(i, k) * out[k];
    out[i] = sum / lu_(i, i);
  }
}

void LuWorkspace::inverse_into(Matrix& out) const {
  if (out.rows() != n_ || out.cols() != n_) {
    throw std::invalid_argument(
        "LuWorkspace::inverse_into: output must be n x n");
  }
  for (std::size_t c = 0; c < n_; ++c) {
    e_[c] = 1.0;
    solve(e_, col_);
    e_[c] = 0.0;
    for (std::size_t r = 0; r < n_; ++r) out(r, c) = col_[r];
  }
}

Matrix covariance(std::span<const double> rows, std::size_t dim,
                  std::span<const double> mean, double ridge) {
  if (dim == 0 || rows.size() % dim != 0) {
    throw std::invalid_argument("covariance: bad row layout");
  }
  if (mean.size() != dim) {
    throw std::invalid_argument("covariance: mean dimension mismatch");
  }
  const std::size_t n = rows.size() / dim;
  Matrix cov(dim, dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < dim; ++r) {
      const double dr = rows[i * dim + r] - mean[r];
      for (std::size_t c = 0; c <= r; ++c) {
        const double dc = rows[i * dim + c] - mean[c];
        cov(r, c) += dr * dc;
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      cov(r, c) /= denom;
      cov(c, r) = cov(r, c);
    }
  }
  for (std::size_t d = 0; d < dim; ++d) cov(d, d) += ridge;
  return cov;
}

}  // namespace approxit::la
