// Small dense decompositions and solves.
//
// These back the error-SENSITIVE parts of the applications (GMM covariance
// inversion, Newton steps), so they are exact by design — approximating
// them is exactly the kind of "fatal error" the paper's offline resilience
// analysis excludes from approximation.
#pragma once

#include <optional>
#include <vector>

#include "la/matrix.h"

namespace approxit::la {

/// Cholesky factor L (lower-triangular, LL^T = A) of a symmetric positive
/// definite matrix; nullopt when A is not SPD (within a small tolerance).
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky; nullopt when not SPD.
std::optional<std::vector<double>> cholesky_solve(const Matrix& a,
                                                  std::span<const double> b);

/// LU decomposition with partial pivoting packed in-place.
struct LuDecomposition {
  Matrix lu;                      ///< combined L (unit diag) and U factors
  std::vector<std::size_t> perm;  ///< row permutation
  int sign = 1;                   ///< permutation parity (for determinant)

  /// Back-substitution solve for one right-hand side.
  std::vector<double> solve(std::span<const double> b) const;

  /// Determinant of the original matrix.
  double determinant() const;
};

/// Factors a square matrix; nullopt when singular (within tolerance).
std::optional<LuDecomposition> lu_decompose(const Matrix& a);

/// Solves A x = b via LU; nullopt when A is singular.
std::optional<std::vector<double>> lu_solve(const Matrix& a,
                                            std::span<const double> b);

/// Determinant via LU; 0 for singular matrices.
double determinant(const Matrix& a);

/// Inverse via LU; nullopt when singular. Intended for the small (2x2/3x3)
/// covariance matrices of the GMM application.
std::optional<Matrix> inverse(const Matrix& a);

/// Symmetric sample covariance of `n` observations of dimension `dim`
/// stored row-major in `rows`, about the provided mean. Adds `ridge` to the
/// diagonal (regularization against degenerate clusters).
Matrix covariance(std::span<const double> rows, std::size_t dim,
                  std::span<const double> mean, double ridge = 0.0);

/// Reusable LU factorization arena for iteration hot paths that factor a
/// same-sized matrix every pass (GMM covariances): all storage is retained
/// between factor() calls, so steady-state refactorization, solves, and
/// inversion allocate nothing. Arithmetic (pivoting, elimination order,
/// singularity tolerance) is exactly that of lu_decompose /
/// LuDecomposition::solve / inverse — results are bit-identical.
class LuWorkspace {
 public:
  /// Factors `a` in place of the previous factorization. Returns false
  /// when `a` is singular (within the shared tolerance); the workspace is
  /// then unusable until the next successful factor().
  bool factor(const Matrix& a);

  /// Determinant of the last factored matrix.
  double determinant() const;

  /// Solves A x = b into `out` (b.size() == out.size() == n). `b` and
  /// `out` may alias only if identical.
  void solve(std::span<const double> b, std::span<double> out) const;

  /// Writes A^{-1} into `out` (resized/reshaped as needed by the caller:
  /// out must already be n x n).
  void inverse_into(Matrix& out) const;

  /// Dimension of the last factored matrix.
  std::size_t size() const { return n_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
  std::size_t n_ = 0;
  // Scratch for solve()/inverse_into(); mutable so the const solves can
  // reuse it (single-threaded use, like the apps that own the workspace).
  mutable std::vector<double> y_;
  mutable std::vector<double> e_;
  mutable std::vector<double> col_;
};

}  // namespace approxit::la
