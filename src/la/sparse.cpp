#include "la/sparse.h"

#include <algorithm>
#include <stdexcept>

#include "la/matrix.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace approxit::la {

namespace {

/// Validates shared shape limits (col_idx is 32-bit storage).
void check_shape(std::size_t rows, std::size_t cols) {
  if (cols > std::size_t{1} << 32) {
    throw std::invalid_argument("CsrMatrix: cols exceed 32-bit col_idx");
  }
  (void)rows;
}

}  // namespace

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  check_shape(rows, cols);
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix::from_triplets: index out of "
                                  "range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t last_row = rows;  // sentinel: no entry emitted yet
  for (const Triplet& t : triplets) {
    if (!m.values_.empty() && t.row == last_row &&
        t.col == m.col_idx_.back()) {
      m.values_.back() += t.value;  // duplicate: sum
      continue;
    }
    m.col_idx_.push_back(static_cast<std::uint32_t>(t.col));
    m.values_.push_back(t.value);
    last_row = t.row;
    ++m.row_ptr_[t.row + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.finish_build();
  return m;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<std::uint32_t> col_idx,
                                std::vector<double> values) {
  check_shape(rows, cols);
  if (row_ptr.size() != rows + 1 || row_ptr.front() != 0 ||
      row_ptr.back() != values.size() || col_idx.size() != values.size()) {
    throw std::invalid_argument("CsrMatrix::from_parts: malformed arrays");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw std::invalid_argument("CsrMatrix::from_parts: row_ptr not "
                                  "non-decreasing");
    }
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      if (col_idx[i] >= cols ||
          (i > row_ptr[r] && col_idx[i] <= col_idx[i - 1])) {
        throw std::invalid_argument("CsrMatrix::from_parts: columns must be "
                                    "strictly increasing and in range");
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  m.finish_build();
  return m;
}

void CsrMatrix::finish_build() {
  max_row_nnz_ = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    max_row_nnz_ = std::max(max_row_nnz_, row_ptr_[r + 1] - row_ptr_[r]);
  }
}

Matrix CsrMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      dense(r, col_idx_[i]) += values_[i];
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::transposed() const {
  // Counting sort by column. Walking source rows in increasing order
  // makes each transposed row's columns strictly increasing.
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (const std::uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) {
    t.row_ptr_[c + 1] += t.row_ptr_[c];
  }
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t slot = cursor[col_idx_[i]]++;
      t.col_idx_[slot] = static_cast<std::uint32_t>(r);
      t.values_[slot] = values_[i];
    }
  }
  t.finish_build();
  return t;
}

void CsrMatrix::build_transpose() {
  if (transpose_ == nullptr) {
    transpose_ = std::make_shared<CsrMatrix>(transposed());
  }
}

const CsrMatrix& CsrMatrix::transpose_view() const {
  if (transpose_ == nullptr) {
    throw std::logic_error("CsrMatrix: call build_transpose() before using "
                           "the transposed kernels");
  }
  return *transpose_;
}

void CsrMatrix::validate_spmv(std::span<const double> x,
                              std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw std::invalid_argument("CsrMatrix: spmv operand size mismatch");
  }
}

void CsrMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  validate_spmv(x, y);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[i] * x[col_idx_[i]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::matvec_transposed(std::span<const double> x,
                                  std::span<double> y) const {
  transpose_view().matvec(x, y);
}

void CsrMatrix::spmv_into(arith::ArithContext& ctx, SpmvWorkspace& ws,
                          std::span<const double> x,
                          std::span<double> y) const {
  validate_spmv(x, y);
  ws.run(*this, ctx, x, y);
}

void CsrMatrix::spmv_transposed_into(arith::ArithContext& ctx,
                                     SpmvWorkspace& ws,
                                     std::span<const double> x,
                                     std::span<double> y) const {
  transpose_view().spmv_into(ctx, ws, x, y);
}

// --- SpmvWorkspace ---------------------------------------------------------

void SpmvWorkspace::set_options(SpmvOptions options) {
  if (options.shards == 0) options.shards = 1;
  if (options.threads == 0) options.threads = 1;
  options_ = options;
  matrix_ = nullptr;  // force prepare() to rebuild the plan
}

void SpmvWorkspace::prepare(const CsrMatrix& m, arith::ArithContext& ctx) {
  if (matrix_ == &m && ctx_ == &ctx) return;

  matrix_ = &m;
  ctx_ = &ctx;
  alu_ = dynamic_cast<arith::QcsAlu*>(&ctx);
  const bool exact = dynamic_cast<arith::ExactContext*>(&ctx) != nullptr;
  // Shards may leave the caller's context only when per-op interception is
  // not in play: QcsAlu clones carry the full datapath; ExactContext is
  // stateless and shared. Anything else (fault decorators, custom
  // contexts) runs serially on the caller's context in row order.
  const std::size_t want =
      std::min(options_.shards, std::max<std::size_t>(m.rows(), 1));
  sharded_ = want > 1 && ((alu_ != nullptr && alu_->batching_supported()) ||
                          (alu_ == nullptr && exact));

  // Fixed nnz-balanced contiguous row shards: shard s covers the smallest
  // row prefix reaching s/want of the total nnz. Pure function of
  // (matrix, shard count) — independent of thread count and context.
  const auto row_ptr = m.row_ptr();
  bounds_.assign(want + 1, 0);
  bounds_.back() = m.rows();
  for (std::size_t s = 1; s < want; ++s) {
    const std::size_t target = s * m.nnz() / want;
    const auto it = std::lower_bound(row_ptr.begin(), row_ptr.end(), target);
    std::size_t row = static_cast<std::size_t>(it - row_ptr.begin());
    row = std::clamp(row, bounds_[s - 1], m.rows());
    bounds_[s] = row;
  }

  shards_.clear();
  shards_.resize(want);
  for (std::size_t s = 0; s < want; ++s) {
    Shard& shard = shards_[s];
    shard.begin = bounds_[s];
    shard.end = bounds_[s + 1];
    shard.gather.resize(kBlock);
    shard.products.resize(kBlock);
    shard.lane_name = "spmv shard " + std::to_string(s);
    if (sharded_ && alu_ != nullptr) {
      shard.alu = alu_->clone_fresh();
      shard.metrics = std::make_unique<obs::MetricsRegistry>();
      shard.chain.bind(*shard.alu);
    } else {
      shard.chain.bind(ctx);
    }
  }
  counter_registry_ = nullptr;
  rows_counter_ = nullptr;
  nnz_counter_ = nullptr;
}

void SpmvWorkspace::sync_clones() {
  const bool want_metrics = alu_->metrics_registry() != nullptr;
  for (Shard& shard : shards_) {
    arith::QcsAlu& clone = *shard.alu;
    if (clone.mode() != alu_->mode()) clone.set_mode(alu_->mode());
    if (clone.batching() != alu_->batching()) {
      clone.set_batching(alu_->batching());
    }
    if (clone.dynamic_energy() != alu_->dynamic_energy()) {
      clone.set_dynamic_energy(alu_->dynamic_energy());
    }
    if (want_metrics != (clone.metrics_registry() != nullptr)) {
      clone.set_metrics(want_metrics ? shard.metrics.get() : nullptr);
    }
  }
}

void SpmvWorkspace::run_rows(const CsrMatrix& m, Shard& shard,
                             std::span<const double> x,
                             std::span<double> y) {
  const std::size_t* rp = m.row_ptr().data();
  const std::uint32_t* ci = m.col_idx().data();
  const double* values = m.values().data();
  double* gather = shard.gather.data();
  double* products = shard.products.data();
  arith::BatchWorkspace& chain = shard.chain;
  for (std::size_t r = shard.begin; r < shard.end; ++r) {
    const std::size_t row_begin = rp[r];
    const std::size_t row_end = rp[r + 1];
    if (row_begin == row_end) {
      y[r] = 0.0;  // empty row: no stored entries, no ops
      continue;
    }
    // One fused chain per row: zero seed, exact multiplies into the block
    // buffer, routed accumulation (ctx.dot semantics over stored entries).
    chain.begin(0.0);
    for (std::size_t i = row_begin; i < row_end; i += kBlock) {
      const std::size_t n = std::min(kBlock, row_end - i);
      for (std::size_t j = 0; j < n; ++j) gather[j] = x[ci[i + j]];
      for (std::size_t j = 0; j < n; ++j) {
        products[j] = values[i + j] * gather[j];
      }
      chain.accumulate({products, n});
    }
    y[r] = chain.finish();
  }
}

void SpmvWorkspace::run(const CsrMatrix& m, arith::ArithContext& ctx,
                        std::span<const double> x, std::span<double> y) {
  prepare(m, ctx);
  const bool cloned = sharded_ && alu_ != nullptr;
  if (cloned) sync_clones();

  // alu.sparse.* counters post to the caller ALU's registry; handles are
  // re-resolved only when the attached registry changes.
  obs::MetricsRegistry* registry =
      alu_ != nullptr ? alu_->metrics_registry() : nullptr;
  if (registry != counter_registry_) {
    counter_registry_ = registry;
    rows_counter_ = registry ? &registry->counter("alu.sparse.rows") : nullptr;
    nnz_counter_ = registry ? &registry->counter("alu.sparse.nnz") : nullptr;
  }
  if (rows_counter_ != nullptr) {
    rows_counter_->add(static_cast<double>(m.rows()));
    nnz_counter_->add(static_cast<double>(m.nnz()));
  }

  // Shards run on pool threads that don't inherit this thread's job
  // context: capture it here and re-bind inside each shard, so a serving
  // job's sparse lanes still carry its job/tenant/attempt identity.
  const obs::JobContext job_context = obs::current_job();
  const auto run_shard = [&](std::size_t s) {
    Shard& shard = shards_[s];
    if (obs::trace_enabled()) {
      const obs::JobScope job_scope(job_context);
      obs::LaneScope lane(static_cast<std::uint32_t>(s + 1),
                          shard.lane_name);
      const double start = obs::trace_now_us();
      run_rows(m, shard, x, y);
      const std::size_t* rp = m.row_ptr().data();
      obs::emit_span("spmv", "shard", start,
                     {obs::arg("rows", shard.end - shard.begin),
                      obs::arg("nnz", rp[shard.end] - rp[shard.begin])});
    } else {
      run_rows(m, shard, x, y);
    }
  };
  if (sharded_ && options_.threads > 1) {
    util::parallel_for(shards_.size(), options_.threads, run_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) run_shard(s);
  }

  if (cloned) {
    // Shard-id-order merge: aggregates are byte-identical for any thread
    // count (the core/sweep.cpp determinism argument).
    for (Shard& shard : shards_) {
      alu_->merge_ledger(shard.alu->ledger());
      shard.alu->reset_ledger();
      if (registry != nullptr && shard.alu->metrics_registry() != nullptr) {
        registry->merge(*shard.metrics);
        shard.metrics->reset();
      }
    }
  }
}

}  // namespace approxit::la
