// Sparse CSR datapath: context-routed SpMV with fused row chains and
// deterministic intra-solver sharding.
//
// CsrMatrix stores a compressed-sparse-row matrix (row_ptr / col_idx /
// values, columns strictly increasing within each row) plus an optional
// cached CSC view (the transpose stored as a CSR matrix of its own) so
// y = A^T x runs as a row-major SpMV too — no scatter, no per-call
// allocation.
//
// The approximate kernel is spmv_into(ctx, ws, x, y): each row is one
// fused arith::BatchWorkspace chain — gather x into a stack-sized block,
// multiply exactly (the QCS approximates adders only), fold the products
// word-resident through the active mode's closed-form kernel. One
// quantize in, one dequantize out per chunk stream; ledger op counts and
// energies identical to the scalar fold (the BatchWorkspace contract).
// When the context is not an eligible QcsAlu — ExactContext, a
// fault-injecting decorator, a generic-kernel bank — the chain degrades
// to exactly the ArithContext call sequence (ctx.accumulate + per-op
// adds), preserving fault streams and op counts, like the dense span ops.
//
// Sharding (SpmvOptions{shards, threads}) partitions rows into FIXED
// contiguous, nnz-balanced shards — a pure function of (matrix, shard
// count), never of the thread count. Each shard owns a clone_fresh() ALU
// and a MetricsRegistry; after the parallel section, shard ledgers and
// registries merge into the caller's ALU in shard-id order. Result
// vectors are byte-identical for ANY thread count (each y[r] is written
// by exactly one shard from inputs that do not depend on scheduling),
// and ledger/metrics aggregates are byte-identical too (fixed-order
// merge, the core/sweep.cpp argument). Fault-injecting decorators
// (batching_supported() == false) run serially on the caller's context
// so every operation stays intercepted in deterministic row order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arith/alu.h"
#include "arith/context.h"
#include "arith/workspace.h"
#include "obs/metrics.h"

namespace approxit::la {

class Matrix;
class SpmvWorkspace;

/// One coordinate-form entry for CsrMatrix::from_triplets.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix with an optional cached transpose view.
///
/// Invariants: row_ptr().size() == rows() + 1, row_ptr() is
/// non-decreasing, and within each row column indices are strictly
/// increasing. Explicit zeros are kept (they cost an op in the routed
/// kernels, like a zero addend in a dense span).
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from coordinate triplets: sorts by (row, col) and sums
  /// duplicates. cols must fit col_idx's 32-bit storage.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  /// Adopts pre-built CSR arrays; validates the invariants above.
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_ptr,
                              std::vector<std::uint32_t> col_idx,
                              std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// Stored entries of row r.
  std::span<const double> row_values(std::size_t r) const {
    return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }
  std::span<const std::uint32_t> row_cols(std::size_t r) const {
    return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Largest stored-entry count of any row.
  std::size_t max_row_nnz() const { return max_row_nnz_; }

  /// Dense copy (tests and small problems only).
  Matrix to_dense() const;

  /// Transposed copy (CSC of this matrix, stored as CSR).
  CsrMatrix transposed() const;

  /// Builds and caches the transpose view used by the *_transposed_into
  /// kernels. Idempotent. Call once at setup time — the transposed
  /// kernels throw if the view is missing rather than allocating one
  /// mid-iteration (the zero-alloc contract).
  void build_transpose();

  /// True once build_transpose() has run.
  bool has_transpose() const { return transpose_ != nullptr; }

  /// The cached transpose (throws std::logic_error when absent).
  const CsrMatrix& transpose_view() const;

  // --- Exact kernels (no context, plain floating point) -----------------

  /// y = A x, exact: per row, acc starts at 0.0 and adds entries in
  /// column order — bit-identical to Matrix::matvec on to_dense() (adding
  /// 0.0 addends is the identity in exact arithmetic; both start at +0.0).
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x, exact, via the cached transpose view (build_transpose()
  /// first). Entry order per output row is increasing source row —
  /// the same order Matrix::matvec_transposed accumulates in.
  void matvec_transposed(std::span<const double> x,
                         std::span<double> y) const;

  // --- Context-routed kernels -------------------------------------------

  /// y = A x with each row folded through `ctx` as one chain (ctx.dot
  /// semantics over the stored entries: exact multiplies, routed
  /// accumulation from a zero seed; empty rows write 0.0 with no ops).
  /// Sharding/threading and buffer reuse come from `ws`; steady-state
  /// calls with an unchanged (matrix, ctx, options) triple do not
  /// allocate.
  void spmv_into(arith::ArithContext& ctx, SpmvWorkspace& ws,
                 std::span<const double> x, std::span<double> y) const;

  /// y = A^T x through the cached transpose view, same contract.
  void spmv_transposed_into(arith::ArithContext& ctx, SpmvWorkspace& ws,
                            std::span<const double> x,
                            std::span<double> y) const;

 private:
  void validate_spmv(std::span<const double> x, std::span<double> y) const;

  /// Recomputes derived fields (max_row_nnz_) after the arrays are set.
  void finish_build();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  std::size_t max_row_nnz_ = 0;
  std::shared_ptr<CsrMatrix> transpose_;
};

/// Execution parameters for SpmvWorkspace.
struct SpmvOptions {
  /// Fixed contiguous row shards. The shard plan is a pure function of
  /// (matrix, shards) — results are byte-identical for any `threads`.
  std::size_t shards = 1;
  /// Workers executing the shards (util::parallel_for). threads <= 1 runs
  /// the shards inline in shard order with no thread machinery.
  std::size_t threads = 1;
};

/// Reusable execution state for the context-routed SpMV kernels: the
/// shard plan, per-shard clone ALUs / metrics registries / fused chains,
/// and the gather/product blocks. One workspace per (matrix, context)
/// pair in a solver; rebinding to a different matrix or context rebuilds
/// the plan (allocates), steady-state reuse does not. Not thread-safe —
/// it IS the thread coordinator.
class SpmvWorkspace {
 public:
  SpmvWorkspace() = default;
  explicit SpmvWorkspace(SpmvOptions options) : options_(options) {}

  void set_options(SpmvOptions options);
  const SpmvOptions& options() const { return options_; }

  /// Shard boundaries of the current plan (empty before first use).
  std::span<const std::size_t> shard_bounds() const { return bounds_; }

 private:
  friend class CsrMatrix;

  static constexpr std::size_t kBlock = 256;  ///< Gather/product block.

  struct Shard {
    std::size_t begin = 0;  ///< First row.
    std::size_t end = 0;    ///< One past the last row.
    std::unique_ptr<arith::QcsAlu> alu;  ///< Clone (sharded QCS path only).
    std::unique_ptr<obs::MetricsRegistry> metrics;
    arith::BatchWorkspace chain;
    std::vector<double> gather;    ///< x values of one row block.
    std::vector<double> products;  ///< value * gather of one row block.
    std::string lane_name;         ///< Trace lane label.
  };

  /// Rebuilds the plan when (matrix, ctx, options) changed.
  void prepare(const CsrMatrix& m, arith::ArithContext& ctx);

  /// Copies the caller ALU's current mode/flags onto the shard clones and
  /// (de)tattaches per-shard registries to mirror the caller's.
  void sync_clones();

  /// Runs rows [shard.begin, shard.end) through `chain` (bound to either
  /// the shard clone or the shared context).
  void run_rows(const CsrMatrix& m, Shard& shard, std::span<const double> x,
                std::span<double> y);

  /// Executes the routed SpMV (called by CsrMatrix::spmv_into).
  void run(const CsrMatrix& m, arith::ArithContext& ctx,
           std::span<const double> x, std::span<double> y);

  SpmvOptions options_;
  const CsrMatrix* matrix_ = nullptr;
  arith::ArithContext* ctx_ = nullptr;
  arith::QcsAlu* alu_ = nullptr;  ///< Non-null iff ctx is a QcsAlu.
  bool sharded_ = false;  ///< Shards may run on workers (clones or exact).
  std::vector<Shard> shards_;
  std::vector<std::size_t> bounds_;  ///< shards_.size() + 1 row bounds.
  obs::MetricsRegistry* counter_registry_ = nullptr;
  obs::Counter* rows_counter_ = nullptr;
  obs::Counter* nnz_counter_ = nullptr;
};

}  // namespace approxit::la
