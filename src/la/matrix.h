// Dense row-major matrix used by the solvers and applications.
//
// Deliberately small: the paper's workloads need dense matrices up to a few
// hundred columns (AR design matrices, GMM covariances), not a full BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace approxit::la {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construction from nested initializer lists; all rows must have equal
  /// length. Example: Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Unchecked element access.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Row r as a span of cols() doubles.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Contiguous row-major storage.
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// y = this * x; x.size() must equal cols(). Returns a new vector.
  std::vector<double> matvec(std::span<const double> x) const;

  /// y = this^T * x; x.size() must equal rows().
  std::vector<double> matvec_transposed(std::span<const double> x) const;

  /// y = this * x into a caller-owned buffer of rows() doubles (no
  /// allocation); same arithmetic as the allocating overload.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y = this^T * x into a caller-owned buffer of cols() doubles.
  void matvec_transposed(std::span<const double> x,
                         std::span<double> y) const;

  /// this * other; inner dimensions must agree.
  Matrix multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Sum of diagonal entries (min(rows, cols) terms).
  double trace() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Element-wise addition; shapes must match.
  Matrix operator+(const Matrix& other) const;

  /// Element-wise subtraction; shapes must match.
  Matrix operator-(const Matrix& other) const;

  /// Scalar multiple.
  Matrix operator*(double s) const;

  bool operator==(const Matrix&) const = default;

  /// Multi-line debug rendering.
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace approxit::la
