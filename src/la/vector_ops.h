// Vector kernels. Context-routed variants exist for the operations that sit
// inside error-resilient regions (reductions, updates); norms and distances
// used by convergence checks are exact-only by design.
#pragma once

#include <span>
#include <vector>

#include "arith/context.h"

namespace approxit::la {

/// Euclidean norm (exact; used by error-sensitive convergence logic).
double norm2(std::span<const double> x);

/// Squared Euclidean norm (exact).
double norm2_squared(std::span<const double> x);

/// Max-magnitude norm (exact).
double norm_inf(std::span<const double> x);

/// Euclidean distance between two equal-length vectors (exact).
double distance2(std::span<const double> x, std::span<const double> y);

/// Exact dot product.
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x (exact, in place).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha (in place).
void scale(double alpha, std::span<double> x);

/// out = x - y element-wise.
std::vector<double> subtract(std::span<const double> x,
                             std::span<const double> y);

/// out = x + y element-wise.
std::vector<double> add(std::span<const double> x, std::span<const double> y);

/// out = x - y element-wise into a caller-owned buffer (no allocation;
/// the iteration hot paths reuse scratch arenas through these).
void subtract(std::span<const double> x, std::span<const double> y,
              std::span<double> out);

/// out = x + y element-wise into a caller-owned buffer (no allocation).
void add(std::span<const double> x, std::span<const double> y,
         std::span<double> out);

/// Context-routed dot product: multiplications exact, accumulation through
/// `ctx` (resilient-region reduction).
double dot(arith::ArithContext& ctx, std::span<const double> x,
           std::span<const double> y);

/// Context-routed sum of all elements.
double sum(arith::ArithContext& ctx, std::span<const double> x);

/// Context-routed in-place update y_i = y_i + alpha * x_i — the iterative
/// method's position update x^{k+1} = x^k + alpha d^k, whose error is the
/// paper's "update error".
void axpy(arith::ArithContext& ctx, double alpha, std::span<const double> x,
          std::span<double> y);

/// Context-routed element-wise mean of rows: out_j = (sum_i m[i][j]) / n,
/// accumulated through `ctx`. `rows` is a flattened row-major span with
/// `dim` columns. Division stays exact (it is not an adder operation).
std::vector<double> mean_rows(arith::ArithContext& ctx,
                              std::span<const double> rows, std::size_t dim);

}  // namespace approxit::la
