#include "la/matrix.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace approxit::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return std::span<double>(data_.data() + r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return std::span<const double>(data_.data() + r * cols_, cols_);
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  matvec(x, y);
  return y;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> x) const {
  std::vector<double> y(cols_, 0.0);
  matvec_transposed(x, y);
  return y;
}

void Matrix::matvec(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::matvec: dimension mismatch");
  }
  if (y.size() != rows_) {
    throw std::invalid_argument("Matrix::matvec: output dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += row_ptr[c] * x[c];
    }
    y[r] = acc;
  }
}

void Matrix::matvec_transposed(std::span<const double> x,
                               std::span<double> y) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "Matrix::matvec_transposed: dimension mismatch");
  }
  if (y.size() != cols_) {
    throw std::invalid_argument(
        "Matrix::matvec_transposed: output dimension mismatch");
  }
  for (std::size_t c = 0; c < cols_; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      y[c] += row_ptr[c] * xr;
    }
  }
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

double Matrix::trace() const {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::operator+(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

}  // namespace approxit::la
