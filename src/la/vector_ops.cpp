#include "la/vector_ops.h"

#include <cmath>
#include <stdexcept>

namespace approxit::la {
namespace {

void check_sizes(std::span<const double> x, std::span<const double> y,
                 const char* who) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  }
}

}  // namespace

double norm2(std::span<const double> x) { return std::sqrt(norm2_squared(x)); }

double norm2_squared(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double distance2(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "distance2");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double dot(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_sizes(x, y, "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

std::vector<double> subtract(std::span<const double> x,
                             std::span<const double> y) {
  check_sizes(x, y, "subtract");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

std::vector<double> add(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "add");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

void subtract(std::span<const double> x, std::span<const double> y,
              std::span<double> out) {
  check_sizes(x, y, "subtract");
  check_sizes(x, out, "subtract");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void add(std::span<const double> x, std::span<const double> y,
         std::span<double> out) {
  check_sizes(x, y, "add");
  check_sizes(x, out, "add");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
}

double dot(arith::ArithContext& ctx, std::span<const double> x,
           std::span<const double> y) {
  check_sizes(x, y, "dot(ctx)");
  return ctx.dot(x, y);
}

double sum(arith::ArithContext& ctx, std::span<const double> x) {
  return ctx.accumulate(x);
}

void axpy(arith::ArithContext& ctx, double alpha, std::span<const double> x,
          std::span<double> y) {
  check_sizes(x, y, "axpy(ctx)");
  ctx.axpy(alpha, x, y);
}

std::vector<double> mean_rows(arith::ArithContext& ctx,
                              std::span<const double> rows, std::size_t dim) {
  if (dim == 0) {
    throw std::invalid_argument("mean_rows: dim must be positive");
  }
  if (rows.size() % dim != 0) {
    throw std::invalid_argument("mean_rows: size not divisible by dim");
  }
  const std::size_t n = rows.size() / dim;
  std::vector<double> out(dim, 0.0);
  if (n == 0) return out;
  // Column-major gather so each column is one batched reduction; the
  // per-column fold (and hence the result) is identical to the row-major
  // element loop, only the operation order across columns changes.
  std::vector<double> column(n);
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = rows[i * dim + j];
    out[j] = ctx.accumulate(column) * inv;
  }
  return out;
}

}  // namespace approxit::la
