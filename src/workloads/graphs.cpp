#include "workloads/graphs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace approxit::workloads {

WebGraph make_web_graph(std::size_t nodes, std::size_t links_per_node,
                        std::uint64_t seed, double dangling_fraction) {
  if (nodes < 2 || links_per_node == 0) {
    throw std::invalid_argument(
        "make_web_graph: need >= 2 nodes and >= 1 link per node");
  }
  if (dangling_fraction < 0.0 || dangling_fraction >= 1.0) {
    throw std::invalid_argument(
        "make_web_graph: dangling_fraction must be in [0, 1)");
  }
  util::Rng rng(seed);
  WebGraph graph;
  graph.nodes = nodes;
  graph.out_links.resize(nodes);

  // Repeated-endpoint list for preferential attachment: each time a node
  // receives an in-link, it is appended, so a uniform draw from the list is
  // proportional to (in-degree + 1).
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(nodes * (links_per_node + 1));
  endpoints.push_back(0);

  for (std::size_t t = 1; t < nodes; ++t) {
    const bool dangling = rng.uniform() < dangling_fraction;
    if (!dangling) {
      const std::size_t want = std::min(links_per_node, t);
      std::vector<std::uint32_t>& links = graph.out_links[t];
      while (links.size() < want) {
        const std::uint32_t target =
            endpoints[rng.uniform_u64(endpoints.size())];
        if (std::find(links.begin(), links.end(), target) == links.end()) {
          links.push_back(target);
        }
      }
      std::sort(links.begin(), links.end());
      for (std::uint32_t v : links) endpoints.push_back(v);
    }
    endpoints.push_back(static_cast<std::uint32_t>(t));
  }
  return graph;
}

la::CsrMatrix pagerank_transition(const WebGraph& graph) {
  const std::size_t n = graph.nodes;
  // Pass 1: in-degree histogram -> row_ptr prefix sums.
  std::vector<std::size_t> row_ptr(n + 1, 0);
  for (const auto& links : graph.out_links) {
    for (const std::uint32_t v : links) ++row_ptr[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];
  const std::size_t nnz = row_ptr[n];

  // Pass 2: place each edge. Walking sources u in ascending order makes
  // the columns of every row strictly increasing (out_links are sorted
  // and deduplicated, so a row sees each u at most once).
  std::vector<std::uint32_t> col_idx(nnz);
  std::vector<double> values(nnz);
  std::vector<std::size_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (std::size_t u = 0; u < n; ++u) {
    const auto& links = graph.out_links[u];
    if (links.empty()) continue;
    const double share = 1.0 / static_cast<double>(links.size());
    for (const std::uint32_t v : links) {
      const std::size_t slot = cursor[v]++;
      col_idx[slot] = static_cast<std::uint32_t>(u);
      values[slot] = share;
    }
  }
  return la::CsrMatrix::from_parts(n, n, std::move(row_ptr),
                                   std::move(col_idx), std::move(values));
}

std::vector<std::uint32_t> dangling_nodes(const WebGraph& graph) {
  std::vector<std::uint32_t> dangling;
  for (std::size_t u = 0; u < graph.nodes; ++u) {
    if (graph.out_links[u].empty()) {
      dangling.push_back(static_cast<std::uint32_t>(u));
    }
  }
  return dangling;
}

la::CsrMatrix make_stencil_laplacian(std::size_t nx, std::size_t ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("make_stencil_laplacian: empty grid");
  }
  const std::size_t n = nx * ny;
  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(n + 1);
  col_idx.reserve(5 * n);
  values.reserve(5 * n);
  row_ptr.push_back(0);
  for (std::size_t gy = 0; gy < ny; ++gy) {
    for (std::size_t gx = 0; gx < nx; ++gx) {
      const std::size_t idx = gy * nx + gx;
      const auto entry = [&](std::size_t col, double value) {
        col_idx.push_back(static_cast<std::uint32_t>(col));
        values.push_back(value);
      };
      if (gy > 0) entry(idx - nx, -1.0);
      if (gx > 0) entry(idx - 1, -1.0);
      entry(idx, 4.0);
      if (gx + 1 < nx) entry(idx + 1, -1.0);
      if (gy + 1 < ny) entry(idx + nx, -1.0);
      row_ptr.push_back(col_idx.size());
    }
  }
  return la::CsrMatrix::from_parts(n, n, std::move(row_ptr),
                                   std::move(col_idx), std::move(values));
}

ClassificationDataset make_classification(std::size_t total, std::size_t dim,
                                          double separation,
                                          std::uint64_t seed,
                                          double noise_flip) {
  if (total == 0 || dim == 0) {
    throw std::invalid_argument("make_classification: empty shape");
  }
  if (noise_flip < 0.0 || noise_flip >= 0.5) {
    throw std::invalid_argument(
        "make_classification: noise_flip must be in [0, 0.5)");
  }
  util::Rng rng(seed);

  // Random unit direction for the class separation axis.
  std::vector<double> axis(dim);
  double norm = 0.0;
  for (double& a : axis) {
    a = rng.gaussian();
    norm += a * a;
  }
  norm = std::sqrt(norm);
  for (double& a : axis) a /= norm > 0.0 ? norm : 1.0;

  ClassificationDataset ds;
  ds.dim = dim;
  ds.features.reserve(total * dim);
  ds.labels.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const int label = rng.uniform() < 0.5 ? 0 : 1;
    const double sign = label == 0 ? -0.5 : 0.5;
    for (std::size_t d = 0; d < dim; ++d) {
      ds.features.push_back(sign * separation * axis[d] + rng.gaussian());
    }
    const bool flip = rng.uniform() < noise_flip;
    ds.labels.push_back(flip ? 1 - label : label);
  }
  return ds;
}

}  // namespace approxit::workloads
