#include "workloads/graphs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace approxit::workloads {

WebGraph make_web_graph(std::size_t nodes, std::size_t links_per_node,
                        std::uint64_t seed, double dangling_fraction) {
  if (nodes < 2 || links_per_node == 0) {
    throw std::invalid_argument(
        "make_web_graph: need >= 2 nodes and >= 1 link per node");
  }
  if (dangling_fraction < 0.0 || dangling_fraction >= 1.0) {
    throw std::invalid_argument(
        "make_web_graph: dangling_fraction must be in [0, 1)");
  }
  util::Rng rng(seed);
  WebGraph graph;
  graph.nodes = nodes;
  graph.out_links.resize(nodes);

  // Repeated-endpoint list for preferential attachment: each time a node
  // receives an in-link, it is appended, so a uniform draw from the list is
  // proportional to (in-degree + 1).
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(nodes * (links_per_node + 1));
  endpoints.push_back(0);

  for (std::size_t t = 1; t < nodes; ++t) {
    const bool dangling = rng.uniform() < dangling_fraction;
    if (!dangling) {
      const std::size_t want = std::min(links_per_node, t);
      std::vector<std::uint32_t>& links = graph.out_links[t];
      while (links.size() < want) {
        const std::uint32_t target =
            endpoints[rng.uniform_u64(endpoints.size())];
        if (std::find(links.begin(), links.end(), target) == links.end()) {
          links.push_back(target);
        }
      }
      std::sort(links.begin(), links.end());
      for (std::uint32_t v : links) endpoints.push_back(v);
    }
    endpoints.push_back(static_cast<std::uint32_t>(t));
  }
  return graph;
}

ClassificationDataset make_classification(std::size_t total, std::size_t dim,
                                          double separation,
                                          std::uint64_t seed,
                                          double noise_flip) {
  if (total == 0 || dim == 0) {
    throw std::invalid_argument("make_classification: empty shape");
  }
  if (noise_flip < 0.0 || noise_flip >= 0.5) {
    throw std::invalid_argument(
        "make_classification: noise_flip must be in [0, 0.5)");
  }
  util::Rng rng(seed);

  // Random unit direction for the class separation axis.
  std::vector<double> axis(dim);
  double norm = 0.0;
  for (double& a : axis) {
    a = rng.gaussian();
    norm += a * a;
  }
  norm = std::sqrt(norm);
  for (double& a : axis) a /= norm > 0.0 ? norm : 1.0;

  ClassificationDataset ds;
  ds.dim = dim;
  ds.features.reserve(total * dim);
  ds.labels.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const int label = rng.uniform() < 0.5 ? 0 : 1;
    const double sign = label == 0 ? -0.5 : 0.5;
    for (std::size_t d = 0; d < dim; ++d) {
      ds.features.push_back(sign * separation * axis[d] + rng.gaussian());
    }
    const bool flip = rng.uniform() < noise_flip;
    ds.labels.push_back(flip ? 1 - label : label);
  }
  return ds;
}

}  // namespace approxit::workloads
