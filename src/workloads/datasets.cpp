#include "workloads/datasets.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.h"

namespace approxit::workloads {
namespace {

/// One Gaussian mixture component specification.
struct Component {
  std::vector<double> mean;
  std::vector<double> stddev;  // axis-aligned
  double weight;
};

GmmDataset draw_mixture(std::string name, std::size_t dim,
                        const std::vector<Component>& components,
                        std::size_t total, std::uint64_t seed,
                        std::size_t max_iter, double tol) {
  GmmDataset out;
  out.name = std::move(name);
  out.dim = dim;
  out.num_clusters = components.size();
  out.max_iter = max_iter;
  out.convergence_tol = tol;
  out.points.reserve(total * dim);
  out.labels.reserve(total);

  util::Rng rng(seed);
  // Cumulative weights for component selection.
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const Component& c : components) {
    acc += c.weight;
    cumulative.push_back(acc);
  }
  for (std::size_t i = 0; i < total; ++i) {
    const double u = rng.uniform() * acc;
    std::size_t k = 0;
    while (k + 1 < cumulative.size() && u > cumulative[k]) ++k;
    const Component& c = components[k];
    for (std::size_t d = 0; d < dim; ++d) {
      out.points.push_back(rng.gaussian(c.mean[d], c.stddev[d]));
    }
    out.labels.push_back(static_cast<int>(k));
  }
  return out;
}

}  // namespace

GmmDataset make_gmm_dataset(GmmDatasetId id) {
  switch (id) {
    case GmmDatasetId::k3cluster:
      // 1000 x 2, three well-separated clusters (paper: converges cleanly
      // at level4, falsely stops at level1 with two visible clusters).
      return draw_mixture(
          "3cluster", 2,
          {
              {{0.0, 0.0}, {1.1, 1.2}, 0.34},
              {{4.6, 1.2}, {1.3, 1.0}, 0.33},
              {{1.9, 4.4}, {1.0, 1.3}, 0.33},
          },
          1000, /*seed=*/17u, /*max_iter=*/500, /*tol=*/1e-10);
    case GmmDatasetId::k3d3cluster:
      // 1900 x 3, three clusters with moderate overlap in 3-D.
      return draw_mixture(
          "3d3cluster", 3,
          {
              {{0.0, 0.0, 0.0}, {1.3, 1.1, 1.2}, 0.35},
              {{2.9, 2.5, 0.3}, {1.1, 1.4, 1.0}, 0.35},
              {{0.5, 3.1, 2.9}, {1.2, 1.0, 1.3}, 0.30},
          },
          1900, /*seed=*/3u, /*max_iter=*/500, /*tol=*/1e-6);
    case GmmDatasetId::k4cluster:
      // 2350 x 2, four clusters, two of them close together — the hardest
      // case (paper: level1 cannot converge within MAX_ITER).
      return draw_mixture(
          "4cluster", 2,
          {
              {{0.0, 0.0}, {1.1, 1.1}, 0.25},
              {{5.2, 0.4}, {1.1, 1.2}, 0.25},
              {{4.8, 4.8}, {1.2, 1.0}, 0.25},
              {{2.0, 4.0}, {1.1, 1.1}, 0.25},
          },
          2350, /*seed=*/1u, /*max_iter=*/500, /*tol=*/1e-6);
  }
  throw std::invalid_argument("make_gmm_dataset: unknown id");
}

TimeSeriesDataset make_series_dataset(SeriesId id) {
  TimeSeriesDataset out;
  switch (id) {
    case SeriesId::kHangSeng:
      out = make_financial_series(6694, 10000.0, 3.0e-4, 0.016, 0xA5EED001u,
                                  /*return_autocorr=*/0.50);
      out.name = "HangSeng INDEX";
      break;
    case SeriesId::kNasdaq:
      out = make_financial_series(10799, 800.0, 3.5e-4, 0.014, 0xA5EED002u,
                                  /*return_autocorr=*/0.78);
      out.name = "NASDAQ Composite";
      break;
    case SeriesId::kSp500:
      out = make_financial_series(16080, 100.0, 3.0e-4, 0.011, 0xA5EED003u,
                                  /*return_autocorr=*/0.86);
      out.name = "S&P 500";
      break;
    default:
      throw std::invalid_argument("make_series_dataset: unknown id");
  }
  out.ar_order = 10;
  out.max_iter = 1000;
  out.convergence_tol = 1e-13;
  return out;
}

std::vector<GmmDatasetId> all_gmm_datasets() {
  return {GmmDatasetId::k3cluster, GmmDatasetId::k3d3cluster,
          GmmDatasetId::k4cluster};
}

std::vector<SeriesId> all_series_datasets() {
  return {SeriesId::kHangSeng, SeriesId::kNasdaq, SeriesId::kSp500};
}

GmmDataset make_gaussian_blobs(std::size_t k, std::size_t total,
                               std::size_t dim, double separation,
                               double spread, std::uint64_t seed) {
  if (k == 0 || dim == 0) {
    throw std::invalid_argument("make_gaussian_blobs: k and dim must be > 0");
  }
  util::Rng layout_rng(seed ^ 0xB10B5ULL);
  std::vector<Component> components;
  components.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    Component comp;
    comp.weight = 1.0;
    comp.mean.resize(dim);
    comp.stddev.resize(dim);
    // Centers on a jittered ring/shell layout scaled by `separation`.
    for (std::size_t d = 0; d < dim; ++d) {
      const double angle = 2.0 * std::numbers::pi *
                           (static_cast<double>(c) / static_cast<double>(k)) +
                           static_cast<double>(d);
      comp.mean[d] = separation * std::cos(angle + 0.5 * d) +
                     layout_rng.uniform(-0.3, 0.3) * separation * 0.1;
      comp.stddev[d] = spread * layout_rng.uniform(0.5, 1.5);
    }
    components.push_back(std::move(comp));
  }
  GmmDataset out = draw_mixture("blobs", dim, components, total, seed,
                                /*max_iter=*/500, /*tol=*/1e-8);
  out.num_clusters = k;
  return out;
}

TimeSeriesDataset make_financial_series(std::size_t length, double start,
                                        double drift, double base_volatility,
                                        std::uint64_t seed,
                                        double return_autocorr) {
  if (length == 0) {
    throw std::invalid_argument("make_financial_series: length must be > 0");
  }
  TimeSeriesDataset out;
  out.name = "synthetic";
  out.values.reserve(length);
  util::Rng rng(seed);
  double level = start;
  double prev_shock = 0.0;
  // Two-regime Markov volatility: calm vs turbulent.
  bool turbulent = false;
  for (std::size_t t = 0; t < length; ++t) {
    // Regime switching.
    const double switch_p = turbulent ? 0.02 : 0.005;
    if (rng.uniform() < switch_p) turbulent = !turbulent;
    const double vol = base_volatility * (turbulent ? 2.8 : 1.0);
    // AR(1) momentum in the shock process (return_autocorr), innovation
    // variance scaled so the stationary shock variance stays ~ vol^2.
    const double innovation_scale =
        std::sqrt(std::max(0.0, 1.0 - return_autocorr * return_autocorr));
    double shock =
        return_autocorr * prev_shock + innovation_scale * vol * rng.gaussian();
    prev_shock = shock;
    double log_return = drift + shock;
    // Rare jump events (crash/rally days).
    if (rng.uniform() < 0.002) {
      log_return += rng.gaussian(0.0, 6.0 * base_volatility);
    }
    level *= std::exp(log_return);
    out.values.push_back(level);
  }
  return out;
}

}  // namespace approxit::workloads
