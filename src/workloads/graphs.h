// Synthetic graph and classification workload generators for the extended
// applications (PageRank power iteration, logistic-regression training) —
// the "Recognition, Mining and Synthesis" application classes the paper's
// introduction motivates beyond its two benchmark programs.
#pragma once

#include <cstdint>
#include <vector>

#include "la/sparse.h"

namespace approxit::workloads {

/// Directed graph in adjacency-list form (out-links per node).
struct WebGraph {
  std::size_t nodes = 0;
  /// out_links[u] = sorted list of v with an edge u -> v.
  std::vector<std::vector<std::uint32_t>> out_links;

  /// Total edge count.
  std::size_t edges() const {
    std::size_t total = 0;
    for (const auto& links : out_links) total += links.size();
    return total;
  }
};

/// Preferential-attachment web-graph generator: node t links to
/// `links_per_node` distinct earlier nodes chosen proportionally to
/// (in-degree + 1), yielding the heavy-tailed in-degree distribution of
/// real link graphs. A small fraction of nodes is left dangling (no
/// out-links) to exercise PageRank's dangling-mass handling.
WebGraph make_web_graph(std::size_t nodes, std::size_t links_per_node,
                        std::uint64_t seed, double dangling_fraction = 0.02);

/// The in-link PageRank transition matrix P of a graph as sparse CSR:
/// P[v][u] = 1/outdeg(u) for each edge u -> v, so one SpMV computes the
/// pull-form rank update y = P x. Built directly in CSR form (two-pass
/// counting sort over the out-link lists) — no dense matrix, no triplet
/// buffer. nnz == graph.edges().
la::CsrMatrix pagerank_transition(const WebGraph& graph);

/// Nodes with no out-links, ascending (their rank mass is redistributed
/// uniformly by PageRank's dangling-mass term).
std::vector<std::uint32_t> dangling_nodes(const WebGraph& graph);

/// The 5-point finite-difference Laplacian on an nx x ny grid (Dirichlet
/// boundary): diagonal 4, off-diagonals -1 to the four grid neighbours.
/// Symmetric positive definite — the standard CG stress operator at
/// nx*ny unknowns with nnz < 5*nx*ny. Row/column order is row-major over
/// the grid, columns strictly increasing within each row.
la::CsrMatrix make_stencil_laplacian(std::size_t nx, std::size_t ny);

/// Binary classification workload: two Gaussian classes in `dim`
/// dimensions.
struct ClassificationDataset {
  std::size_t dim = 0;
  std::vector<double> features;  ///< Row-major n x dim.
  std::vector<int> labels;       ///< 0/1 per sample.

  std::size_t size() const { return dim == 0 ? 0 : features.size() / dim; }
};

/// Draws `total` points from two Gaussian classes whose means are
/// `separation` apart along a random direction; `noise_flip` of the labels
/// are flipped (irreducible error).
ClassificationDataset make_classification(std::size_t total, std::size_t dim,
                                          double separation,
                                          std::uint64_t seed,
                                          double noise_flip = 0.02);

}  // namespace approxit::workloads
