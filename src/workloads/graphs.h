// Synthetic graph and classification workload generators for the extended
// applications (PageRank power iteration, logistic-regression training) —
// the "Recognition, Mining and Synthesis" application classes the paper's
// introduction motivates beyond its two benchmark programs.
#pragma once

#include <cstdint>
#include <vector>

namespace approxit::workloads {

/// Directed graph in adjacency-list form (out-links per node).
struct WebGraph {
  std::size_t nodes = 0;
  /// out_links[u] = sorted list of v with an edge u -> v.
  std::vector<std::vector<std::uint32_t>> out_links;

  /// Total edge count.
  std::size_t edges() const {
    std::size_t total = 0;
    for (const auto& links : out_links) total += links.size();
    return total;
  }
};

/// Preferential-attachment web-graph generator: node t links to
/// `links_per_node` distinct earlier nodes chosen proportionally to
/// (in-degree + 1), yielding the heavy-tailed in-degree distribution of
/// real link graphs. A small fraction of nodes is left dangling (no
/// out-links) to exercise PageRank's dangling-mass handling.
WebGraph make_web_graph(std::size_t nodes, std::size_t links_per_node,
                        std::uint64_t seed, double dangling_fraction = 0.02);

/// Binary classification workload: two Gaussian classes in `dim`
/// dimensions.
struct ClassificationDataset {
  std::size_t dim = 0;
  std::vector<double> features;  ///< Row-major n x dim.
  std::vector<int> labels;       ///< 0/1 per sample.

  std::size_t size() const { return dim == 0 ? 0 : features.size() / dim; }
};

/// Draws `total` points from two Gaussian classes whose means are
/// `separation` apart along a random direction; `noise_flip` of the labels
/// are flipped (irreducible error).
ClassificationDataset make_classification(std::size_t total, std::size_t dim,
                                          double separation,
                                          std::uint64_t seed,
                                          double noise_flip = 0.02);

}  // namespace approxit::workloads
