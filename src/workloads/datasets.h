// Synthetic workload generators reproducing the paper's Table 2 datasets.
//
// The paper's GMM datasets are Matlab-generated Gaussian mixtures; we
// generate seeded mixtures with the same sample counts, dimensions and
// cluster counts. The AutoRegression datasets are Yahoo! Finance index
// histories (Hang Seng / NASDAQ Composite / S&P 500); offline we substitute
// seeded geometric random walks with regime-switching volatility and the
// same lengths and AR window. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace approxit::workloads {

/// The three GMM datasets of Table 2.
enum class GmmDatasetId { k3cluster, k3d3cluster, k4cluster };

/// The three AutoRegression datasets of Table 2.
enum class SeriesId { kHangSeng, kNasdaq, kSp500 };

/// A labeled Gaussian-mixture clustering workload.
struct GmmDataset {
  std::string name;            ///< Table 2 dataset label.
  std::size_t dim = 0;         ///< Point dimensionality.
  std::size_t num_clusters = 0;
  std::vector<double> points;  ///< Row-major samples (n x dim).
  std::vector<int> labels;     ///< Ground-truth component of each sample.
  std::size_t max_iter = 0;    ///< Table 2 MAX_ITER.
  double convergence_tol = 0;  ///< Table 2 Convergence threshold.

  std::size_t size() const { return dim == 0 ? 0 : points.size() / dim; }
};

/// A univariate time series workload for AR(p) fitting.
struct TimeSeriesDataset {
  std::string name;            ///< Table 2 dataset label.
  std::vector<double> values;  ///< Raw series (index levels).
  std::size_t ar_order = 10;   ///< Table 2 window (10).
  std::size_t max_iter = 0;    ///< Table 2 MAX_ITER.
  double convergence_tol = 0;  ///< Table 2 Convergence threshold.
};

/// Builds one of the paper's GMM datasets (deterministic; the seed is fixed
/// per dataset so every run and every mode sees identical data).
GmmDataset make_gmm_dataset(GmmDatasetId id);

/// Builds one of the paper's AR datasets (deterministic surrogate series).
TimeSeriesDataset make_series_dataset(SeriesId id);

/// All GMM dataset ids in Table 2 order.
std::vector<GmmDatasetId> all_gmm_datasets();

/// All AR dataset ids in Table 2 order.
std::vector<SeriesId> all_series_datasets();

/// Generic generator: `total` points from `k` Gaussian blobs in `dim`
/// dimensions. Cluster centers are placed on a scaled simplex-like layout
/// with the given separation; per-cluster standard deviations in
/// [0.5, 1.5] * spread.
GmmDataset make_gaussian_blobs(std::size_t k, std::size_t total,
                               std::size_t dim, double separation,
                               double spread, std::uint64_t seed);

/// Generic generator: geometric random walk of `length` steps starting at
/// `start`, with per-step drift and regime-switching volatility (two
/// regimes, Markov switching), plus rare jump events — the qualitative
/// structure of financial index series.
/// `return_autocorr` is the AR(1) coefficient of the log-return process
/// (momentum); it controls the AR design matrix's conditioning and hence
/// how many iterations the least-squares fit needs.
TimeSeriesDataset make_financial_series(std::size_t length, double start,
                                        double drift, double base_volatility,
                                        std::uint64_t seed,
                                        double return_autocorr = 0.0);

}  // namespace approxit::workloads
