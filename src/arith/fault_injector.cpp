#include "arith/fault_injector.h"

#include <sstream>
#include <stdexcept>

#include "arith/fixed_point.h"

namespace approxit::arith {

void FaultConfig::validate() const {
  double max_rate = 0.0;
  for (double rate : rate_per_op) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument(
          "FaultConfig: per-op fault rates must be in [0, 1]");
    }
    max_rate = rate > max_rate ? rate : max_rate;
  }
  if (bit_flip_weight < 0.0 || stuck_at_weight < 0.0 || burst_weight < 0.0) {
    throw std::invalid_argument(
        "FaultConfig: fault-kind weights must be non-negative");
  }
  const double total_weight =
      bit_flip_weight + stuck_at_weight + burst_weight;
  if (max_rate > 0.0 && total_weight <= 0.0) {
    throw std::invalid_argument(
        "FaultConfig: positive fault rate requires a positive kind weight");
  }
  if (burst_max_length == 0) {
    throw std::invalid_argument(
        "FaultConfig: burst_max_length must be positive");
  }
}

FaultConfig FaultConfig::uniform_approximate(double rate,
                                             std::uint64_t seed) {
  FaultConfig config;
  for (ApproxMode mode :
       {ApproxMode::kLevel1, ApproxMode::kLevel2, ApproxMode::kLevel3,
        ApproxMode::kLevel4}) {
    config.rate_per_op[mode_index(mode)] = rate;
  }
  config.seed = seed;
  return config;
}

FaultConfig FaultConfig::voltage_droop(double level1_rate,
                                       std::uint64_t seed) {
  FaultConfig config;
  double rate = level1_rate;
  for (ApproxMode mode :
       {ApproxMode::kLevel1, ApproxMode::kLevel2, ApproxMode::kLevel3,
        ApproxMode::kLevel4}) {
    config.rate_per_op[mode_index(mode)] = rate;
    rate *= 0.5;
  }
  config.bit_flip_weight = 0.7;
  config.stuck_at_weight = 0.1;
  config.burst_weight = 0.2;
  config.seed = seed;
  return config;
}

std::size_t FaultLedger::injected() const {
  std::size_t total = 0;
  for (std::size_t count : injected_per_mode) total += count;
  return total;
}

void FaultLedger::reset() {
  total_ops = 0;
  injected_per_mode.fill(0);
  injected_per_kind.fill(0);
  bit_position_counts.assign(bit_position_counts.size(), 0);
}

std::string FaultLedger::summary() const {
  std::ostringstream os;
  os << "faults: " << injected() << "/" << total_ops << " ops [";
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (k > 0) os << ", ";
    os << fault_kind_name(static_cast<FaultKind>(static_cast<int>(k)))
       << ":" << injected_per_kind[k];
  }
  os << "], per mode [";
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (i > 0) os << ", ";
    os << mode_name(mode_from_index(i)) << ":" << injected_per_mode[i];
  }
  os << "]";
  return os.str();
}

FaultyQcsAlu::FaultyQcsAlu(const FaultConfig& fault, const QcsConfig& config)
    : QcsAlu(config), fault_(fault), rng_(fault.seed) {
  fault_.validate();
  if (fault_.stuck_at_bit >= format().total_bits) {
    throw std::invalid_argument(
        "FaultConfig: stuck_at_bit outside the datapath width");
  }
  fault_ledger_.bit_position_counts.assign(format().total_bits, 0);
}

FaultyQcsAlu::FaultyQcsAlu(const FaultConfig& fault, const QFormat& format,
                           std::array<AdderPtr, kNumModes> adders,
                           const EnergyParams& energy)
    : QcsAlu(format, std::move(adders), energy),
      fault_(fault),
      rng_(fault.seed) {
  fault_.validate();
  if (fault_.stuck_at_bit >= this->format().total_bits) {
    throw std::invalid_argument(
        "FaultConfig: stuck_at_bit outside the datapath width");
  }
  fault_ledger_.bit_position_counts.assign(this->format().total_bits, 0);
}

std::unique_ptr<QcsAlu> FaultyQcsAlu::clone_fresh() const {
  auto fresh = std::make_unique<FaultyQcsAlu>(fault_, format(), adder_bank(),
                                              energy_params());
  fresh->set_mode(mode());
  fresh->set_dynamic_energy(dynamic_energy());
  return fresh;
}

double FaultyQcsAlu::add(double a, double b) {
  return perturb(QcsAlu::add(a, b));
}

double FaultyQcsAlu::sub(double a, double b) {
  return perturb(QcsAlu::sub(a, b));
}

void FaultyQcsAlu::reset_faults() {
  rng_ = util::Rng(fault_.seed);
  fault_ledger_.reset();
  droop_remaining_ = 0;
}

FaultKind FaultyQcsAlu::draw_kind() {
  const double total =
      fault_.bit_flip_weight + fault_.stuck_at_weight + fault_.burst_weight;
  const double pick = rng_.uniform(0.0, total);
  if (pick < fault_.bit_flip_weight) return FaultKind::kBitFlip;
  if (pick < fault_.bit_flip_weight + fault_.stuck_at_weight) {
    return FaultKind::kStuckAt;
  }
  return FaultKind::kBurst;
}

Word FaultyQcsAlu::apply_fault(Word word, FaultKind kind) {
  const unsigned width = format().total_bits;
  const Word mask = word_mask(width);
  switch (kind) {
    case FaultKind::kBitFlip: {
      const unsigned bit =
          static_cast<unsigned>(rng_.uniform_u64(width));
      ++fault_ledger_.bit_position_counts[bit];
      return (word ^ (Word{1} << bit)) & mask;
    }
    case FaultKind::kStuckAt: {
      const unsigned bit = fault_.stuck_at_bit;
      ++fault_ledger_.bit_position_counts[bit];
      const Word select = Word{1} << bit;
      return (fault_.stuck_at_value ? (word | select) : (word & ~select)) &
             mask;
    }
    case FaultKind::kBurst: {
      const unsigned max_len =
          fault_.burst_max_length < width ? fault_.burst_max_length : width;
      const unsigned length =
          1 + static_cast<unsigned>(rng_.uniform_u64(max_len));
      const unsigned start = static_cast<unsigned>(
          rng_.uniform_u64(width - length + 1));
      for (unsigned bit = start; bit < start + length; ++bit) {
        ++fault_ledger_.bit_position_counts[bit];
      }
      const Word burst_mask = word_mask(length) << start;
      return (word ^ burst_mask) & mask;
    }
  }
  return word & mask;
}

double FaultyQcsAlu::perturb(double value) {
  ++fault_ledger_.total_ops;

  const double rate = fault_.rate_per_op[mode_index(mode())];
  FaultKind kind;
  if (droop_remaining_ > 0) {
    // The supply rail has not recovered from the last burst: this
    // operation faults regardless of the per-op rate.
    --droop_remaining_;
    kind = FaultKind::kBurst;
  } else if (rate > 0.0 && rng_.uniform() < rate) {
    kind = draw_kind();
    if (kind == FaultKind::kBurst) {
      droop_remaining_ = fault_.droop_persistence;
    }
  } else {
    return value;  // Clean pass-through (bit-identical to QcsAlu).
  }

  ++fault_ledger_.injected_per_mode[mode_index(mode())];
  ++fault_ledger_.injected_per_kind[static_cast<std::size_t>(kind)];
  const Word clean = quantize(value, format());
  return dequantize(apply_fault(clean, kind), format());
}

}  // namespace approxit::arith
