// AVX2 backend for the span primitives in simd_kernels.h.
//
// Compiled with -mavx2 and only ever entered after the dispatcher's cpuid
// check, so the intrinsics here never execute on a host without AVX2.
// Every routine is bit-identical to its portable counterpart; the
// differential sweep in simd_kernels_test.cpp runs both tiers against the
// structural adders.
//
// double<->int64 conversions use the magic-constant trick (adding
// 1.5 * 2^52 places an integer's two's-complement representation in the
// low mantissa bits). It is exact for |value| <= 2^51, which the
// dispatcher guarantees by gating these conversion paths on
// total_bits <= 52.
#include "arith/simd_kernels.h"

#ifdef APPROXIT_HAVE_AVX2

#include <immintrin.h>

#include "arith/batch_kernels.h"

namespace approxit::arith::simd::detail {

namespace {

// 1.5 * 2^52: the exponent that pins an integer |x| <= 2^51 into the low
// mantissa bits with a constant bias.
constexpr double kMagic = 6755399441055744.0;

inline __m256i bcast(Word w) {
  return _mm256_set1_epi64x(static_cast<long long>(w));
}

inline __m256i srl(__m256i v, unsigned k) {
  return _mm256_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline __m256i sll(__m256i v, unsigned k) {
  return _mm256_sll_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline __m256i load4(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store4(Word* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// All result bits at or below the highest set bit of each lane:
/// smear(g) == word_mask(bit_width(g)) lane-wise (0 when g == 0).
inline __m256i smear_down(__m256i g) {
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 1));
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 2));
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 4));
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 8));
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 16));
  g = _mm256_or_si256(g, _mm256_srli_epi64(g, 32));
  return g;
}

/// Four lanes of the closed-form kernel named by `spec`. `b` arrives
/// already complemented for subtraction (the caller feeds ~b & mask), so
/// this routine is oblivious to add-vs-sub.
template <AdderKernel kKind>
inline __m256i kernel4(unsigned k, __m256i a, __m256i b, __m256i cin,
                       __m256i mask) {
  if constexpr (kKind == AdderKernel::kExact) {
    return _mm256_and_si256(
        _mm256_add_epi64(_mm256_add_epi64(a, b), cin), mask);
  } else if constexpr (kKind == AdderKernel::kLowerOr) {
    // k in (0, width): handled by the caller's edge-case routing.
    a = _mm256_and_si256(a, mask);
    b = _mm256_and_si256(b, mask);
    const __m256i low =
        _mm256_and_si256(_mm256_or_si256(a, b), bcast(word_mask(k)));
    const __m256i bridge = _mm256_and_si256(
        _mm256_and_si256(srl(a, k - 1), srl(b, k - 1)), bcast(1));
    const __m256i upper = sll(
        _mm256_add_epi64(_mm256_add_epi64(srl(a, k), srl(b, k)), bridge), k);
    return _mm256_and_si256(_mm256_or_si256(low, upper), mask);
  } else if constexpr (kKind == AdderKernel::kTruncated) {
    // k in (0, width): carry-in dropped below the cut.
    a = _mm256_and_si256(a, mask);
    b = _mm256_and_si256(b, mask);
    return _mm256_and_si256(
        sll(_mm256_add_epi64(srl(a, k), srl(b, k)), k), mask);
  } else {
    static_assert(kKind == AdderKernel::kEtaI);
    // k in (0, width): XOR low part saturating below the first 1+1 pair.
    a = _mm256_and_si256(a, mask);
    b = _mm256_and_si256(b, mask);
    const __m256i low_mask = bcast(word_mask(k));
    const __m256i generate =
        _mm256_and_si256(_mm256_and_si256(a, b), low_mask);
    __m256i low = _mm256_and_si256(_mm256_xor_si256(a, b), low_mask);
    low = _mm256_or_si256(low, smear_down(generate));
    const __m256i upper =
        sll(_mm256_add_epi64(srl(a, k), srl(b, k)), k);
    return _mm256_and_si256(_mm256_or_si256(low, upper), mask);
  }
}

/// ETA-II: same block schedule as etaii_word_add, with the speculated
/// inter-block carry as a vector lane.
inline __m256i etaii4(unsigned width, unsigned segment, __m256i a, __m256i b,
                      __m256i cin, __m256i mask) {
  a = _mm256_and_si256(a, mask);
  b = _mm256_and_si256(b, mask);
  __m256i sum = _mm256_setzero_si256();
  __m256i speculated = cin;
  const __m256i one = bcast(1);
  for (unsigned base = 0; base < width; base += segment) {
    const unsigned end = base + segment < width ? base + segment : width;
    const unsigned span = end - base;
    const __m256i span_mask = bcast(word_mask(span));
    const __m256i va = _mm256_and_si256(srl(a, base), span_mask);
    const __m256i vb = _mm256_and_si256(srl(b, base), span_mask);
    const __m256i t = _mm256_add_epi64(va, vb);
    sum = _mm256_or_si256(
        sum,
        sll(_mm256_and_si256(_mm256_add_epi64(t, speculated), span_mask),
            base));
    speculated = _mm256_and_si256(srl(t, span), one);
  }
  return _mm256_and_si256(sum, mask);
}

/// Shared elementwise driver: vector body over groups of four, portable
/// scalar loop for the tail, optional operand-b complement (subtraction).
void elementwise(const KernelSpec& spec, unsigned width, const Word* a,
                 const Word* b, bool carry_in, bool complement_b,
                 std::size_t n, Word* out) {
  const Word maskw = word_mask(width);
  const __m256i mask = bcast(maskw);
  const __m256i cin = bcast(carry_in ? 1 : 0);
  const unsigned k = spec.param;
  const std::size_t n4 = n & ~std::size_t{3};

  // Edge parameters collapse to simpler families; route them before the
  // lane loop so kernel4 only sees the general case.
  AdderKernel kind = spec.kind;
  if ((kind == AdderKernel::kLowerOr || kind == AdderKernel::kEtaI) &&
      k == 0) {
    kind = AdderKernel::kExact;
  }
  if (kind == AdderKernel::kTruncated && k == 0) kind = AdderKernel::kExact;

  auto load_b = [&](std::size_t i) {
    const __m256i vb = load4(b + i);
    // ~b & mask: exactly the operand Adder::subtract feeds the hardware.
    return complement_b ? _mm256_andnot_si256(vb, mask) : vb;
  };

  switch (kind) {
    case AdderKernel::kExact:
      for (std::size_t i = 0; i < n4; i += 4) {
        store4(out + i, kernel4<AdderKernel::kExact>(k, load4(a + i),
                                                     load_b(i), cin, mask));
      }
      break;
    case AdderKernel::kLowerOr:
      if (k >= width) {
        // Pure OR region: result is (a | b) & mask (carry-in swallowed).
        for (std::size_t i = 0; i < n4; i += 4) {
          store4(out + i, _mm256_and_si256(
                              _mm256_or_si256(load4(a + i), load_b(i)),
                              mask));
        }
        break;
      }
      for (std::size_t i = 0; i < n4; i += 4) {
        store4(out + i, kernel4<AdderKernel::kLowerOr>(k, load4(a + i), load_b(i), cin, mask));
      }
      break;
    case AdderKernel::kTruncated:
      if (k >= width) {
        for (std::size_t i = 0; i < n4; i += 4) {
          store4(out + i, _mm256_setzero_si256());
        }
        break;
      }
      for (std::size_t i = 0; i < n4; i += 4) {
        store4(out + i, kernel4<AdderKernel::kTruncated>(k, load4(a + i), load_b(i), cin, mask));
      }
      break;
    case AdderKernel::kEtaI:
      if (k >= width) {
        // Low part only: XOR saturating below the first 1+1 pair.
        const __m256i low_mask = bcast(word_mask(k));
        for (std::size_t i = 0; i < n4; i += 4) {
          const __m256i va = _mm256_and_si256(load4(a + i), mask);
          const __m256i vb = _mm256_and_si256(load_b(i), mask);
          const __m256i generate =
              _mm256_and_si256(_mm256_and_si256(va, vb), low_mask);
          __m256i low =
              _mm256_and_si256(_mm256_xor_si256(va, vb), low_mask);
          store4(out + i, _mm256_or_si256(low, smear_down(generate)));
        }
        break;
      }
      for (std::size_t i = 0; i < n4; i += 4) {
        store4(out + i, kernel4<AdderKernel::kEtaI>(k, load4(a + i), load_b(i), cin, mask));
      }
      break;
    case AdderKernel::kEtaII:
      for (std::size_t i = 0; i < n4; i += 4) {
        store4(out + i,
               etaii4(width, k, load4(a + i), load_b(i), cin, mask));
      }
      break;
    case AdderKernel::kGeneric:
      break;  // portable tail below throws with the canonical message
  }

  if (n4 < n || kind == AdderKernel::kGeneric) {
    const std::size_t off = kind == AdderKernel::kGeneric ? 0 : n4;
    if (complement_b) {
      portable_kernel_sub_span(spec, width, a + off, b + off, n - off,
                               out + off);
    } else {
      portable_kernel_add_span(spec, width, a + off, b + off, carry_in,
                               n - off, out + off);
    }
  }
}

}  // namespace

void avx2_quantize_span(const QuantSpec& spec, const double* in,
                        std::size_t n, Word* out) {
  const __m256d scale = _mm256_set1_pd(spec.scale());
  const __m256d max_int = _mm256_set1_pd(spec.max_int());
  const __m256d min_int = _mm256_set1_pd(spec.min_int());
  const __m256d magic = _mm256_set1_pd(kMagic);
  const __m256i mask = bcast(spec.mask());
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    __m256d v = _mm256_loadu_pd(in + i);
    // NaN -> +0.0 (quantizes to word 0, matching the scalar NaN path).
    v = _mm256_and_pd(v, _mm256_cmp_pd(v, v, _CMP_ORD_Q));
    // nearbyint: round in the current MXCSR mode, same as the scalar op.
    __m256d scaled =
        _mm256_round_pd(_mm256_mul_pd(v, scale), _MM_FROUND_CUR_DIRECTION);
    scaled = _mm256_min_pd(scaled, max_int);
    scaled = _mm256_max_pd(scaled, min_int);
    const __m256i ints =
        _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(scaled, magic)),
                         _mm256_castpd_si256(magic));
    store4(out + i, _mm256_and_si256(ints, mask));
  }
  portable_quantize_span(spec, in + n4, n - n4, out + n4);
}

void avx2_dequantize_span(const QuantSpec& spec, const Word* in,
                          std::size_t n, double* out) {
  const __m256i mask = bcast(spec.mask());
  const __m256i sign = bcast(spec.sign_bit());
  const __m256d inv_scale = _mm256_set1_pd(spec.inv_scale());
  const __m256d magic = _mm256_set1_pd(kMagic);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256i w = _mm256_and_si256(load4(in + i), mask);
    // Sign-extend the width-bit word: (w ^ s) - s.
    const __m256i raw =
        _mm256_sub_epi64(_mm256_xor_si256(w, sign), sign);
    const __m256d d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(raw, magic_bits)), magic);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, inv_scale));
  }
  portable_dequantize_span(spec, in + n4, n - n4, out + n4);
}

void avx2_kernel_add_span(const KernelSpec& spec, unsigned width,
                          const Word* a, const Word* b, bool carry_in,
                          std::size_t n, Word* out) {
  elementwise(spec, width, a, b, carry_in, /*complement_b=*/false, n, out);
}

void avx2_kernel_sub_span(const KernelSpec& spec, unsigned width,
                          const Word* a, const Word* b, std::size_t n,
                          Word* out) {
  elementwise(spec, width, a, b, /*carry_in=*/true, /*complement_b=*/true, n,
              out);
}

Word avx2_fold_words(const KernelSpec& spec, unsigned width, Word acc,
                     const Word* w, std::size_t n) {
  const Word maskw = word_mask(width);
  const unsigned k = spec.param;
  const std::size_t n4 = n & ~std::size_t{3};
  alignas(32) Word lanes[4];

  switch (spec.kind) {
    case AdderKernel::kExact: {
      __m256i sum = _mm256_setzero_si256();
      for (std::size_t i = 0; i < n4; i += 4) {
        sum = _mm256_add_epi64(sum, load4(w + i));
      }
      store4(lanes, sum);
      Word total = acc + lanes[0] + lanes[1] + lanes[2] + lanes[3];
      for (std::size_t i = n4; i < n; ++i) total += w[i];
      return total & maskw;
    }
    case AdderKernel::kLowerOr: {
      if (k == 0 || k >= width || n == 0) break;  // portable handles edges
      const __m256i mask = bcast(maskw);
      const __m256i one = bcast(1);
      __m256i vor = _mm256_setzero_si256();
      __m256i vhi = _mm256_setzero_si256();
      __m256i vones = _mm256_setzero_si256();
      for (std::size_t i = 0; i < n4; i += 4) {
        const __m256i wi = _mm256_and_si256(load4(w + i), mask);
        vor = _mm256_or_si256(vor, wi);
        vhi = _mm256_add_epi64(vhi, srl(wi, k));
        vones = _mm256_add_epi64(vones, _mm256_and_si256(srl(wi, k - 1), one));
      }
      acc &= maskw;
      Word or_low = acc;
      Word hi_sum = acc >> k;
      Word ones = 0;
      store4(lanes, vor);
      or_low |= lanes[0] | lanes[1] | lanes[2] | lanes[3];
      store4(lanes, vhi);
      hi_sum += lanes[0] + lanes[1] + lanes[2] + lanes[3];
      store4(lanes, vones);
      ones += lanes[0] + lanes[1] + lanes[2] + lanes[3];
      for (std::size_t i = n4; i < n; ++i) {
        const Word wi = w[i] & maskw;
        or_low |= wi;
        hi_sum += wi >> k;
        ones += (wi >> (k - 1)) & Word{1};
      }
      const bool p0 = ((acc >> (k - 1)) & Word{1}) != 0;
      const Word bridges = p0 ? ones : (ones > 0 ? ones - 1 : 0);
      const Word ah = (hi_sum + bridges) & word_mask(width - k);
      return ((or_low & word_mask(k)) | (ah << k)) & maskw;
    }
    case AdderKernel::kTruncated: {
      if (k == 0 || k >= width || n == 0) break;
      const __m256i mask = bcast(maskw);
      __m256i vhi = _mm256_setzero_si256();
      for (std::size_t i = 0; i < n4; i += 4) {
        vhi = _mm256_add_epi64(vhi, srl(_mm256_and_si256(load4(w + i), mask),
                                        k));
      }
      store4(lanes, vhi);
      Word hi_sum =
          ((acc & maskw) >> k) + lanes[0] + lanes[1] + lanes[2] + lanes[3];
      for (std::size_t i = n4; i < n; ++i) hi_sum += (w[i] & maskw) >> k;
      return (hi_sum & word_mask(width - k)) << k;
    }
    default:
      break;  // ETA-I/II feed the accumulator back nonlinearly: serial.
  }
  return portable_fold_words(spec, width, acc, w, n);
}

}  // namespace approxit::arith::simd::detail

#endif  // APPROXIT_HAVE_AVX2
