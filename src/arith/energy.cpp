#include "arith/energy.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace approxit::arith {

double operation_energy(const GateInventory& inv, const EnergyParams& p) {
  const double gate_energy =
      static_cast<double>(inv.full_adders) * p.full_adder +
      static_cast<double>(inv.half_adders) * p.half_adder +
      static_cast<double>(inv.and2) * p.and2 +
      static_cast<double>(inv.or2) * p.or2 +
      static_cast<double>(inv.xor2) * p.xor2 +
      static_cast<double>(inv.mux2) * p.mux2 +
      static_cast<double>(inv.inverters) * p.inverter;
  const double glitch =
      1.0 + p.glitch_per_depth * static_cast<double>(inv.carry_depth);
  return gate_energy * p.activity * glitch;
}

double adder_energy(const Adder& adder, const EnergyParams& params) {
  return operation_energy(adder.gates(), params);
}

unsigned longest_carry_chain(Word a, Word b, unsigned width, bool carry_in) {
  a &= word_mask(width);
  b &= word_mask(width);
  const Word generate = a & b;
  const Word propagate = a ^ b;
  unsigned longest = 0;
  unsigned run = carry_in ? 1 : 0;  // virtual generate below bit 0
  for (unsigned i = 0; i < width; ++i) {
    const bool g = (generate >> i) & 1;
    const bool p = (propagate >> i) & 1;
    if (run > 0 && p) {
      // An active carry keeps propagating through this stage.
      ++run;
    } else if (g) {
      // A fresh carry starts here (any incoming one is absorbed).
      run = 1;
    } else {
      run = 0;
    }
    longest = std::max(longest, run);
  }
  return longest;
}

ToggleEnergyModel::ToggleEnergyModel(const GateInventory& inventory,
                                     unsigned width,
                                     const EnergyParams& params)
    : width_(width == 0 ? 1 : width),
      glitch_per_depth_(params.glitch_per_depth),
      structural_depth_(inventory.carry_depth) {
  EnergyParams unit = params;
  // Collect the raw gate energy (activity/glitch applied per operation).
  unit.activity = 1.0;
  unit.glitch_per_depth = 0.0;
  GateInventory flat = inventory;
  flat.carry_depth = 0;
  gate_energy_ = approxit::arith::operation_energy(flat, unit);
  static_energy_ = approxit::arith::operation_energy(inventory, params);
}

void ToggleEnergyModel::reset() { has_prev_ = false; }

double ToggleEnergyModel::operation_energy(Word a, Word b) {
  // Toggle activity: fraction of input bits that changed since the last
  // operation (first operation charges full switching).
  double activity = 1.0;
  if (has_prev_) {
    const unsigned toggles =
        static_cast<unsigned>(std::popcount((a ^ prev_a_) & word_mask(width_)) +
                              std::popcount((b ^ prev_b_) & word_mask(width_)));
    // A small floor models clocking/leakage-equivalent switching.
    activity = std::max(0.1, static_cast<double>(toggles) /
                                 (2.0 * static_cast<double>(width_)));
  }
  prev_a_ = a;
  prev_b_ = b;
  has_prev_ = true;

  // Glitch term from the ACTUAL resolved carry chain, capped by the
  // component's structural depth (carries cannot propagate further than
  // the wiring allows).
  const unsigned chain =
      std::min<unsigned>(longest_carry_chain(a, b, width_),
                         static_cast<unsigned>(structural_depth_));
  const double glitch = 1.0 + glitch_per_depth_ * static_cast<double>(chain);
  return gate_energy_ * activity * glitch;
}

void EnergyLedger::record(ApproxMode mode, double energy_per_op,
                          std::size_t count) {
  energy_[mode_index(mode)] += energy_per_op * static_cast<double>(count);
  ops_[mode_index(mode)] += count;
}

void EnergyLedger::record_total(ApproxMode mode, double total_energy,
                                std::size_t count) {
  energy_[mode_index(mode)] += total_energy;
  ops_[mode_index(mode)] += count;
}

double EnergyLedger::total_energy() const {
  double total = 0.0;
  for (double e : energy_) total += e;
  return total;
}

std::size_t EnergyLedger::total_ops() const {
  std::size_t total = 0;
  for (std::size_t n : ops_) total += n;
  return total;
}

void EnergyLedger::reset() {
  energy_.fill(0.0);
  ops_.fill(0);
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (std::size_t i = 0; i < kNumModes; ++i) {
    energy_[i] += other.energy_[i];
    ops_[i] += other.ops_[i];
  }
}

std::string EnergyLedger::summary() const {
  std::ostringstream os;
  os << "energy=" << total_energy() << " ops=" << total_ops() << " [";
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (i > 0) os << ", ";
    os << mode_name(mode_from_index(i)) << ":" << ops_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace approxit::arith
