// The quality-configurable ALU (QCS datapath model).
//
// A QcsAlu owns one adder per approximation mode (level1..level4 + accurate)
// over a common fixed-point format. Application code inside an error-
// resilient region performs its additions through the ALU: operands are
// quantized, added bit-accurately on the active mode's adder, dequantized,
// and the operation's energy is recorded in the ledger.
//
// Error-sensitive computations (control flow, convergence checks, objective
// evaluation) stay in exact floating point outside the ALU — mirroring the
// paper's offline resilience partitioning (Table 2's "Adder Impact" column
// names the resilient kernel of each application).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>

#include "arith/adder.h"
#include "arith/context.h"
#include "arith/energy.h"
#include "arith/fixed_point.h"
#include "arith/mode.h"

namespace approxit::arith {

/// Construction parameters for the default QCS: a gracefully-degrading
/// accuracy-configurable adder bank (GdaAdder) with four lower-part
/// approximation widths plus the fully accurate configuration.
struct QcsConfig {
  /// Fixed-point format of the resilient datapath.
  QFormat format{32, 16};
  /// Approximate (carry-free) low bits for level1..level4; must strictly
  /// decrease — fewer approximate bits means higher accuracy. The accurate
  /// mode uses 0. With the default Q16.16 format the per-add error scale is
  /// ~2^(bits-17) in value terms: 0.06, 0.016, 0.004, 0.001 for the defaults —
  /// a ladder calibrated so that level1 visibly corrupts accumulation-heavy
  /// kernels while level4 is near-exact (the paper's Table 3(a) spread).
  std::array<unsigned, 4> level_approx_bits{13, 11, 9, 7};
  /// Gate energy parameters.
  EnergyParams energy = EnergyParams::defaults();

  void validate() const;
};

/// Mode-switchable approximate ALU with energy accounting.
///
/// Thread-compatible: concurrent use requires external synchronization
/// (the ledger and mode are mutable state).
///
/// Not final: FaultyQcsAlu (fault_injector.h) decorates the routed
/// operations with transient-fault injection. accumulate()/dot() fold
/// through the virtual add(), so overriding add()/sub() is sufficient to
/// intercept every routed operation.
class QcsAlu : public ArithContext {
 public:
  /// Builds the default QCS (QcsConfigurableAdder bank) per `config`.
  explicit QcsAlu(const QcsConfig& config = QcsConfig{});

  /// Builds a QCS from a custom adder bank; all five adders must share the
  /// format's total width, and the kAccurate entry must be exact.
  QcsAlu(const QFormat& format, std::array<AdderPtr, kNumModes> adders,
         const EnergyParams& energy = EnergyParams::defaults());

  /// Selects the active approximation mode.
  void set_mode(ApproxMode mode) { mode_ = mode; }

  /// Currently active mode.
  ApproxMode mode() const { return mode_; }

  /// a + b through the active adder (quantize, add, dequantize); records
  /// one operation in the ledger.
  double add(double a, double b) override;

  /// a - b through the active adder (two's-complement subtraction).
  double sub(double a, double b) override;

  /// Sequential accumulation of `values` through the active adder;
  /// records values.size() operations. Returns 0 for an empty span.
  double accumulate(std::span<const double> values) override;

  /// Dot product: multiplications exact (the QCS approximates adders only,
  /// as in the paper), accumulation through the active adder.
  double dot(std::span<const double> x, std::span<const double> y) override;

  /// Per-operation energy of a mode's adder (normalized units, static
  /// average model).
  double energy_per_add(ApproxMode mode) const {
    return energy_per_add_[mode_index(mode)];
  }

  /// Switches between the static average energy model (default) and the
  /// data-dependent toggle/carry-chain model. Enabling resets the toggle
  /// state of every mode.
  void set_dynamic_energy(bool enabled);

  /// True when the data-dependent model is active.
  bool dynamic_energy() const { return dynamic_energy_; }

  /// The adder backing a mode.
  const Adder& adder(ApproxMode mode) const {
    return *adders_[mode_index(mode)];
  }

  /// Fixed-point format of the datapath.
  const QFormat& format() const { return format_; }

  /// Energy/op ledger accumulated since construction or reset_ledger().
  const EnergyLedger& ledger() const { return ledger_; }

  /// Clears the ledger (mode is preserved).
  void reset_ledger() { ledger_.reset(); }

  /// Descriptive multi-line summary of the adder bank (names, energies).
  std::string describe() const;

 private:
  double route_add(double a, double b, bool subtract);

  QFormat format_;
  std::array<AdderPtr, kNumModes> adders_;
  std::array<double, kNumModes> energy_per_add_{};
  std::array<std::optional<ToggleEnergyModel>, kNumModes> toggle_models_;
  bool dynamic_energy_ = false;
  ApproxMode mode_ = ApproxMode::kAccurate;
  EnergyLedger ledger_;
};

}  // namespace approxit::arith
