// The quality-configurable ALU (QCS datapath model).
//
// A QcsAlu owns one adder per approximation mode (level1..level4 + accurate)
// over a common fixed-point format. Application code inside an error-
// resilient region performs its additions through the ALU: operands are
// quantized, added bit-accurately on the active mode's adder, dequantized,
// and the operation's energy is recorded in the ledger.
//
// Error-sensitive computations (control flow, convergence checks, objective
// evaluation) stay in exact floating point outside the ALU — mirroring the
// paper's offline resilience partitioning (Table 2's "Adder Impact" column
// names the resilient kernel of each application).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "arith/adder.h"
#include "arith/context.h"
#include "arith/energy.h"
#include "arith/fixed_point.h"
#include "arith/mode.h"
#include "obs/metrics.h"

namespace approxit::arith {

/// Construction parameters for the default QCS: a gracefully-degrading
/// accuracy-configurable adder bank (GdaAdder) with four lower-part
/// approximation widths plus the fully accurate configuration.
struct QcsConfig {
  /// Fixed-point format of the resilient datapath.
  QFormat format{32, 16};
  /// Approximate (carry-free) low bits for level1..level4; must strictly
  /// decrease — fewer approximate bits means higher accuracy. The accurate
  /// mode uses 0. With the default Q16.16 format the per-add error scale is
  /// ~2^(bits-17) in value terms: 0.06, 0.016, 0.004, 0.001 for the defaults —
  /// a ladder calibrated so that level1 visibly corrupts accumulation-heavy
  /// kernels while level4 is near-exact (the paper's Table 3(a) spread).
  std::array<unsigned, 4> level_approx_bits{13, 11, 9, 7};
  /// Gate energy parameters.
  EnergyParams energy = EnergyParams::defaults();

  void validate() const;
};

/// Mode-switchable approximate ALU with energy accounting.
///
/// Thread-compatible: concurrent use requires external synchronization
/// (the ledger and mode are mutable state). For parallel sweeps, give
/// each worker its own clone_fresh() instance — the (stateless, const)
/// adder bank is shared, the mutable ledger/mode/toggle state is not.
///
/// The span kernels (accumulate/dot/axpy/add_vec/sub_vec) run a batched
/// datapath: operands are quantized in bulk, the active mode's adder is
/// evaluated with the closed-form word-parallel kernel it advertises via
/// Adder::kernel_spec() (batch_kernels.h), and energy is posted to the
/// ledger once per batch. The batched path is bit-identical to folding
/// through the scalar add()/sub(); set_batching(false) forces the scalar
/// fold, which is used as the differential reference in tests.
///
/// Not final: FaultyQcsAlu (fault_injector.h) decorates the routed
/// operations with transient-fault injection. Decorators that override
/// add()/sub() must also override batching_supported() to return false so
/// the span kernels fall back to folding through the virtual add()/sub()
/// and every operation is intercepted.
class QcsAlu : public ArithContext {
 public:
  /// Builds the default QCS (QcsConfigurableAdder bank) per `config`.
  explicit QcsAlu(const QcsConfig& config = QcsConfig{});

  /// Builds a QCS from a custom adder bank; all five adders must share the
  /// format's total width, and the kAccurate entry must be exact.
  QcsAlu(const QFormat& format, std::array<AdderPtr, kNumModes> adders,
         const EnergyParams& energy = EnergyParams::defaults());

  /// Selects the active approximation mode.
  void set_mode(ApproxMode mode) { mode_ = mode; }

  /// Currently active mode.
  ApproxMode mode() const { return mode_; }

  /// a + b through the active adder (quantize, add, dequantize); records
  /// one operation in the ledger.
  double add(double a, double b) override;

  /// a - b through the active adder (two's-complement subtraction).
  double sub(double a, double b) override;

  /// Sequential accumulation of `values` through the active adder;
  /// records values.size() operations. Returns 0 for an empty span.
  /// Batched: bit-identical to the scalar fold, one ledger post.
  double accumulate(std::span<const double> values) override;

  /// Dot product: multiplications exact (the QCS approximates adders only,
  /// as in the paper), accumulation through the active adder. Batched.
  double dot(std::span<const double> x, std::span<const double> y) override;

  /// y[i] <- y[i] + alpha * x[i]; the scale is exact, each addition goes
  /// through the active adder. Batched, one ledger post per call.
  void axpy(double alpha, std::span<const double> x,
            std::span<double> y) override;

  /// out[i] <- x[i] + y[i] through the active adder. Batched.
  void add_vec(std::span<const double> x, std::span<const double> y,
               std::span<double> out) override;

  /// out[i] <- x[i] - y[i] through the active adder (two's-complement
  /// subtraction, like sub()). Batched.
  void sub_vec(std::span<const double> x, std::span<const double> y,
               std::span<double> out) override;

  /// Per-operation energy of a mode's adder (normalized units, static
  /// average model).
  double energy_per_add(ApproxMode mode) const {
    return energy_per_add_[mode_index(mode)];
  }

  /// Switches between the static average energy model (default) and the
  /// data-dependent toggle/carry-chain model. Enabling resets the toggle
  /// state of every mode.
  void set_dynamic_energy(bool enabled);

  /// True when the data-dependent model is active.
  bool dynamic_energy() const { return dynamic_energy_; }

  /// The adder backing a mode.
  const Adder& adder(ApproxMode mode) const {
    return *adders_[mode_index(mode)];
  }

  /// Fixed-point format of the datapath.
  const QFormat& format() const { return format_; }

  /// Energy/op ledger accumulated since construction or reset_ledger().
  const EnergyLedger& ledger() const { return ledger_; }

  /// Clears the ledger (mode is preserved).
  void reset_ledger() { ledger_.reset(); }

  /// Merges another ledger's counts into this ALU's ledger (aggregation of
  /// per-arm clone ledgers after a parallel sweep).
  void merge_ledger(const EnergyLedger& other) { ledger_.merge(other); }

  /// Attaches a metrics registry: every routed operation additionally
  /// posts per-mode "alu.ops.<mode>" / "alu.energy.<mode>" counters
  /// (batched ops post once per batch), and sampled batch spans record
  /// their duration into the "alu.batch_us" histogram. nullptr (default)
  /// detaches — the hot path then pays a single pointer test. Counter
  /// handles are resolved here, not per operation. Not propagated by
  /// clone_fresh(): parallel sweeps attach one registry per arm and merge
  /// them in arm order (core/sweep.cpp), like the energy ledger.
  void set_metrics(obs::MetricsRegistry* registry);

  /// The attached registry (nullptr when detached).
  obs::MetricsRegistry* metrics_registry() const { return metrics_; }

  /// Enables/disables the batched word-parallel span kernels. Disabled,
  /// every span operation folds through the virtual add()/sub() exactly as
  /// the scalar path does — the differential reference for tests. The two
  /// paths are bit-identical; only ledger posting granularity and speed
  /// differ. Default: enabled.
  void set_batching(bool enabled) { batching_ = enabled; }

  /// True when the batched span kernels are enabled.
  bool batching() const { return batching_; }

  /// Whether this ALU may legally take the batched fast path. Decorators
  /// that intercept add()/sub() per operation (fault injection) return
  /// false so span kernels keep routing through the virtual scalar ops.
  virtual bool batching_supported() const { return true; }

  // --- Fused word-resident chains (workspace.h drives these) ------------
  //
  // A fused chain quantizes its seed once, folds every subsequent span or
  // scalar operand in the Word domain, and dequantizes once at the end.
  // Because quantize(dequantize(w)) == w whenever total_bits <= 53 (the
  // same invariant behind fast_path), the chain is bit-identical to the
  // unfused sequence of accumulate()/add()/sub() calls that dequantize and
  // requantize between ops — only the redundant conversions are gone.
  // Energy/ledger accounting is op-for-op identical to the unfused calls.

  /// True when the fused chain API may be used for the active mode: same
  /// condition as the batched span kernels (closed-form kernel, batching
  /// enabled and supported, total_bits <= 53).
  bool fused_eligible() const {
    return fast_path(kernel_specs_[mode_index(mode_)]);
  }

  /// Opens a chain: quantizes the seed. Counts one fused chain in the
  /// metrics; no ledger ops (quantization is free, as in route_add).
  Word fused_begin(double seed);

  /// Folds `n` addends into the word accumulator through the active
  /// kernel; ledgers n operations (bit- and ledger-identical to
  /// accumulate() seeded with dequantize(acc)).
  Word fused_fold(Word acc, const double* addends, std::size_t n);

  /// One scalar add (or two's-complement subtract) into the word
  /// accumulator; ledgers 1 operation (identical to add()/sub()).
  Word fused_apply(Word acc, double operand, bool subtract);

  /// Bulk-quantizes `n` doubles into `out` — the identical conversion
  /// fused_fold performs internally. Quantization is free (no ledger ops),
  /// so grouped chains may hoist one big quantize pass over many chains'
  /// operands and then fold each chain from the pre-quantized words.
  void fused_quantize(const double* values, std::size_t n, Word* out) const;

  /// Folds `n` pre-quantized words into the word accumulator through the
  /// active kernel; ledgers n operations. Bit- and ledger-identical to
  /// fused_fold over the doubles the words were quantized from.
  Word fused_fold_words(Word acc, const Word* words, std::size_t n);

  /// Closes a chain: dequantizes the accumulator.
  double fused_finish(Word acc) const { return quant_.dequantize(acc); }

  /// A fresh ALU sharing this one's (immutable) adder bank, format, energy
  /// parameters, mode, and flags — with a zeroed ledger and toggle state.
  /// This is what parallel sweep arms own: one clone per worker, merged
  /// back via EnergyLedger::merge.
  virtual std::unique_ptr<QcsAlu> clone_fresh() const;

  /// Descriptive multi-line summary of the adder bank (names, energies).
  std::string describe() const;

 protected:
  /// The full adder bank (shared, immutable); for decorator clone_fresh().
  const std::array<AdderPtr, kNumModes>& adder_bank() const {
    return adders_;
  }

  /// Energy parameters the bank was built with; for decorator clone_fresh().
  const EnergyParams& energy_params() const { return energy_params_; }

 private:
  double route_add(double a, double b, bool subtract);

  /// Folds `n` addends into `acc` through the active adder: the batched
  /// word-domain loop when eligible, otherwise the virtual scalar add().
  double fold_chunk(double acc, const double* addends, std::size_t n);

  /// True when the active mode can run the word-parallel kernels and
  /// produce bit-identical results to the scalar path.
  bool fast_path(const KernelSpec& spec) const;

  /// Posts one batch's op/energy totals to the attached registry.
  void post_metrics(std::size_t mode_idx, double total_energy,
                    std::size_t ops) {
    if (metrics_ == nullptr) return;
    metric_ops_[mode_idx]->add(static_cast<double>(ops));
    metric_energy_[mode_idx]->add(total_energy);
  }

  /// 1-in-64 sampling decision for batch-op trace spans; pure observation,
  /// never taken when tracing is off.
  bool span_sampled();

  /// Emits the sampled span (started at `start_us`) and records its
  /// duration into the "alu.batch_us" histogram when a registry is
  /// attached.
  void finish_span(const char* op, double start_us, std::size_t n);

  QFormat format_;
  QuantSpec quant_{format_};  ///< Inline conversions for the batch loops.
  std::array<AdderPtr, kNumModes> adders_;
  std::array<double, kNumModes> energy_per_add_{};
  std::array<KernelSpec, kNumModes> kernel_specs_{};
  std::array<std::optional<ToggleEnergyModel>, kNumModes> toggle_models_;
  EnergyParams energy_params_;
  bool dynamic_energy_ = false;
  bool batching_ = true;
  ApproxMode mode_ = ApproxMode::kAccurate;
  EnergyLedger ledger_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::array<obs::Counter*, kNumModes> metric_ops_{};
  std::array<obs::Counter*, kNumModes> metric_energy_{};
  obs::Counter* metric_fused_chains_ = nullptr;
  obs::Counter* metric_fused_ops_ = nullptr;
  obs::Histogram* metric_batch_us_ = nullptr;
  std::uint32_t span_sample_ = 0;
};

}  // namespace approxit::arith
