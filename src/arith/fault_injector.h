// Transient-fault injection for the QCS datapath.
//
// ApproxIt's hardware platform is voltage-overscaled: the approximate
// adder levels trade accuracy for energy by letting timing errors through.
// The clean adder models in this repository capture the DETERMINISTIC
// approximation error only; FaultyQcsAlu adds the misbehaving-hardware
// part — stochastic transient faults in the adder outputs — so the online
// schemes and the convergence watchdog can be exercised against the error
// regime the paper's platform actually produces:
//
//  - Bit flips: a single uniformly chosen output bit inverts (particle
//    strike / marginal timing on one sum bit).
//  - Stuck-at faults: a configured bit position reads a constant
//    (manufacturing defect or a latch stuck under drooped voltage).
//  - Burst errors: a contiguous run of output bits inverts and the fault
//    persists for a few subsequent operations (supply-voltage droop: once
//    the rail sags, several back-to-back operations resolve late).
//
// Faults are driven by a seeded util::Rng with PER-MODE rates (overscaled
// approximate levels fault; the nominal-voltage accurate mode typically
// does not), and every injection is recorded in a FaultLedger. With all
// rates zero the injector is a bit-identical pass-through of QcsAlu.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arith/alu.h"
#include "util/rng.h"

namespace approxit::arith {

/// Kinds of injected transient faults.
enum class FaultKind : int {
  kBitFlip = 0,  ///< One uniformly chosen output bit inverts.
  kStuckAt = 1,  ///< A configured bit position reads a constant.
  kBurst = 2,    ///< A contiguous bit run inverts; persists across ops.
};

/// Number of fault kinds.
inline constexpr std::size_t kNumFaultKinds = 3;

/// Human-readable fault-kind label ("bit_flip", "stuck_at", "burst").
constexpr std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kStuckAt:
      return "stuck_at";
    case FaultKind::kBurst:
      return "burst";
  }
  return "?";
}

/// Configuration of the fault process. Defaults are a zero-rate
/// pass-through: no RNG draw, no perturbation, bit-identical to QcsAlu.
struct FaultConfig {
  /// Per-operation fault probability of each mode. Voltage overscaling
  /// motivates a decreasing profile (level1 most overscaled, accurate at
  /// nominal voltage fault-free), but any profile is accepted.
  std::array<double, kNumModes> rate_per_op{};
  /// Relative weights of the fault kinds when a fault fires. Kinds with
  /// zero weight never fire; at least one weight must be positive whenever
  /// any rate is positive.
  double bit_flip_weight = 1.0;
  double stuck_at_weight = 0.0;
  double burst_weight = 0.0;
  /// Stuck-at fault: bit position (must be < format total bits) and value.
  unsigned stuck_at_bit = 0;
  bool stuck_at_value = true;
  /// Burst fault: maximum contiguous flipped-bit run (clamped to width).
  unsigned burst_max_length = 6;
  /// After a burst fires, this many FOLLOWING operations also take a burst
  /// fault regardless of the rate (the droop has not recovered yet).
  unsigned droop_persistence = 2;
  /// RNG seed; the fault stream is a deterministic function of the seed
  /// and the operation sequence.
  std::uint64_t seed = 0x0fa417;

  /// Throws std::invalid_argument on negative rates/weights, rates > 1,
  /// or all-zero kind weights combined with a positive rate.
  void validate() const;

  /// Uniform rate across the four approximate levels; the accurate mode
  /// stays fault-free (nominal voltage). Bit flips only.
  static FaultConfig uniform_approximate(double rate,
                                         std::uint64_t seed = 0x0fa417);

  /// Voltage-droop profile: rate decays by half per accuracy level from
  /// `level1_rate` (accurate mode fault-free), with bit-flip, stuck-at and
  /// burst faults mixed 70/10/20.
  static FaultConfig voltage_droop(double level1_rate,
                                   std::uint64_t seed = 0x0fa417);
};

/// Injection statistics of one run.
struct FaultLedger {
  /// Operations routed through the injector (faulted or not).
  std::size_t total_ops = 0;
  /// Injections per mode / per kind.
  std::array<std::size_t, kNumModes> injected_per_mode{};
  std::array<std::size_t, kNumFaultKinds> injected_per_kind{};
  /// Times each bit position was inverted or forced (index = bit).
  std::vector<std::size_t> bit_position_counts;

  /// Total injected faults across modes.
  std::size_t injected() const;

  /// Injections in one mode / of one kind.
  std::size_t injected_in(ApproxMode mode) const {
    return injected_per_mode[mode_index(mode)];
  }
  std::size_t injected_of(FaultKind kind) const {
    return injected_per_kind[static_cast<std::size_t>(kind)];
  }

  /// Clears all counters.
  void reset();

  /// One-line human-readable summary.
  std::string summary() const;
};

/// QcsAlu decorator injecting transient faults into routed adder outputs.
///
/// Every routed operation (add, sub, and each partial sum of accumulate/
/// dot) first computes the clean mode result through QcsAlu, then — with
/// the active mode's configured probability — perturbs the result word.
/// Energy accounting is untouched: a faulty operation costs what the clean
/// one does, as in hardware.
class FaultyQcsAlu : public QcsAlu {
 public:
  /// Default GDA adder bank with fault injection per `fault`.
  explicit FaultyQcsAlu(const FaultConfig& fault = FaultConfig{},
                        const QcsConfig& config = QcsConfig{});

  /// Custom adder bank with fault injection per `fault`.
  FaultyQcsAlu(const FaultConfig& fault, const QFormat& format,
               std::array<AdderPtr, kNumModes> adders,
               const EnergyParams& energy = EnergyParams::defaults());

  double add(double a, double b) override;
  double sub(double a, double b) override;

  /// Fault injection is a per-operation process (each routed op draws from
  /// the RNG stream in sequence), so the batched word-parallel span path
  /// must not bypass add()/sub(): span kernels fall back to the scalar
  /// fold, preserving the exact fault stream of the seed implementation.
  bool batching_supported() const override { return false; }

  /// Fresh injector sharing the adder bank, with the same fault config
  /// (re-seeded RNG: the clone sees the identical fault stream from op 0).
  std::unique_ptr<QcsAlu> clone_fresh() const override;

  /// Injection statistics since construction or reset_faults().
  const FaultLedger& fault_ledger() const { return fault_ledger_; }

  /// The active fault configuration.
  const FaultConfig& fault_config() const { return fault_; }

  /// Re-seeds the fault RNG, clears the fault ledger and any pending
  /// droop state — the next run sees the identical fault stream.
  void reset_faults();

 private:
  /// Applies the fault process to a clean result value.
  double perturb(double value);
  /// Perturbs the quantized result word with a fault of `kind`.
  Word apply_fault(Word word, FaultKind kind);
  /// Draws a fault kind according to the configured weights.
  FaultKind draw_kind();

  FaultConfig fault_;
  util::Rng rng_;
  FaultLedger fault_ledger_;
  unsigned droop_remaining_ = 0;
};

}  // namespace approxit::arith
