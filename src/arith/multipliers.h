// Bit-accurate multiplier models built from adder components.
//
// Multipliers are part of the approximate-arithmetic substrate (the paper's
// related work covers underdesigned multipliers, e.g. Kulkarni et al. [13]);
// the ApproxIt QCS itself only approximates adders, so the ALU routes
// multiplications exactly — these models back the characterization bench and
// the adder-family ablation.
//
// Operand width w must satisfy 2w <= 64 (products are returned in one Word).
#pragma once

#include <memory>

#include "arith/adder.h"

namespace approxit::arith {

/// Base class for w x w -> 2w multipliers.
class Multiplier {
 public:
  explicit Multiplier(unsigned width);
  virtual ~Multiplier() = default;

  Multiplier(const Multiplier&) = delete;
  Multiplier& operator=(const Multiplier&) = delete;

  /// Unsigned multiply of the low width() bits of a and b; full 2w-bit
  /// product.
  virtual Word multiply(Word a, Word b) const = 0;

  /// Architecture name for reports.
  virtual std::string name() const = 0;

  /// Structural gate counts (partial products + reduction + final adder).
  virtual GateInventory gates() const = 0;

  /// Signed (two's complement) multiply: sign-magnitude wrapper around
  /// multiply(); result is a 2w-bit two's-complement product.
  Word multiply_signed(Word a, Word b) const;

  /// Operand width in bits.
  unsigned width() const { return width_; }

 private:
  unsigned width_;
};

/// Carry-save array multiplier: w partial products accumulated through the
/// supplied 2w-bit adder (pass an approximate adder to model an approximate
/// multiplier array).
class ArrayMultiplier final : public Multiplier {
 public:
  /// `sum_adder` must have width 2 * width.
  ArrayMultiplier(unsigned width, AdderPtr sum_adder);
  Word multiply(Word a, Word b) const override;
  std::string name() const override;
  GateInventory gates() const override;

 private:
  AdderPtr sum_adder_;
};

/// Radix-4 Booth multiplier: ~w/2 partial products through the supplied
/// 2w-bit adder.
class BoothMultiplier final : public Multiplier {
 public:
  BoothMultiplier(unsigned width, AdderPtr sum_adder);
  Word multiply(Word a, Word b) const override;
  std::string name() const override;
  GateInventory gates() const override;

 private:
  AdderPtr sum_adder_;
};

/// Truncated array multiplier: partial-product bits below `truncated_bits`
/// of the final product are never formed (classic fixed-width truncation).
class TruncatedMultiplier final : public Multiplier {
 public:
  TruncatedMultiplier(unsigned width, unsigned truncated_bits,
                      AdderPtr sum_adder);
  Word multiply(Word a, Word b) const override;
  std::string name() const override;
  GateInventory gates() const override;

  unsigned truncated_bits() const { return truncated_bits_; }

 private:
  unsigned truncated_bits_;
  AdderPtr sum_adder_;
};

/// Kulkarni-style underdesigned multiplier: the 2x2 building block computes
/// 3 x 3 = 7 (instead of 9); larger multipliers are composed recursively
/// from four half-width blocks whose partial results are summed exactly.
/// Width must be a power of two.
class KulkarniMultiplier final : public Multiplier {
 public:
  explicit KulkarniMultiplier(unsigned width);
  Word multiply(Word a, Word b) const override;
  std::string name() const override;
  GateInventory gates() const override;
};

}  // namespace approxit::arith
