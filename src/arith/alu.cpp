#include "arith/alu.h"

#include <sstream>
#include <stdexcept>

#include "arith/approx_adders.h"

namespace approxit::arith {

void QcsConfig::validate() const {
  format.validate();
  for (std::size_t i = 0; i < level_approx_bits.size(); ++i) {
    if (level_approx_bits[i] == 0 ||
        level_approx_bits[i] >= format.total_bits) {
      throw std::invalid_argument(
          "QcsConfig: approx bits must be in (0, total_bits)");
    }
    if (i > 0 && level_approx_bits[i] >= level_approx_bits[i - 1]) {
      throw std::invalid_argument(
          "QcsConfig: approx bits must strictly decrease with accuracy level");
    }
  }
}

QcsAlu::QcsAlu(const QcsConfig& config) : format_(config.format) {
  config.validate();
  const unsigned width = format_.total_bits;
  for (std::size_t i = 0; i < 4; ++i) {
    adders_[i] =
        std::make_shared<GdaAdder>(width, config.level_approx_bits[i]);
  }
  adders_[mode_index(ApproxMode::kAccurate)] =
      std::make_shared<GdaAdder>(width, 0);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    energy_per_add_[i] = adder_energy(*adders_[i], config.energy);
    toggle_models_[i].emplace(adders_[i]->gates(), format_.total_bits,
                              config.energy);
  }
}

QcsAlu::QcsAlu(const QFormat& format, std::array<AdderPtr, kNumModes> adders,
               const EnergyParams& energy)
    : format_(format), adders_(std::move(adders)) {
  format_.validate();
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!adders_[i]) {
      throw std::invalid_argument("QcsAlu: null adder in bank");
    }
    if (adders_[i]->width() != format_.total_bits) {
      throw std::invalid_argument(
          "QcsAlu: adder width does not match format");
    }
    energy_per_add_[i] = adder_energy(*adders_[i], energy);
    toggle_models_[i].emplace(adders_[i]->gates(), format_.total_bits,
                              energy);
  }
  if (!adders_[mode_index(ApproxMode::kAccurate)]->is_exact()) {
    throw std::invalid_argument(
        "QcsAlu: the kAccurate slot must hold an exact adder");
  }
}

double QcsAlu::route_add(double a, double b, bool subtract) {
  const std::size_t idx = mode_index(mode_);
  const Adder& active = *adders_[idx];
  const Word wa = quantize(a, format_);
  const Word wb = quantize(b, format_);
  // Subtraction feeds the complemented operand into the adder array; the
  // energy model sees the bits the hardware sees.
  const Word wb_effective = subtract ? (~wb & active.mask()) : wb;
  const AddResult result =
      subtract ? active.subtract(wa, wb) : active.add(wa, wb, false);
  const double energy = dynamic_energy_
                            ? toggle_models_[idx]->operation_energy(
                                  wa, wb_effective)
                            : energy_per_add_[idx];
  ledger_.record(mode_, energy);
  return dequantize(result.sum, format_);
}

void QcsAlu::set_dynamic_energy(bool enabled) {
  dynamic_energy_ = enabled;
  for (auto& model : toggle_models_) {
    if (model) model->reset();
  }
}

double QcsAlu::add(double a, double b) { return route_add(a, b, false); }

double QcsAlu::sub(double a, double b) { return route_add(a, b, true); }

double QcsAlu::accumulate(std::span<const double> values) {
  double acc = 0.0;
  for (double v : values) {
    acc = add(acc, v);
  }
  return acc;
}

double QcsAlu::dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("QcsAlu::dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc = add(acc, x[i] * y[i]);
  }
  return acc;
}

std::string QcsAlu::describe() const {
  std::ostringstream os;
  os << "QcsAlu format=" << format_.to_string() << "\n";
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const ApproxMode m = mode_from_index(i);
    os << "  " << mode_name(m) << ": " << adders_[i]->name()
       << " energy/add=" << energy_per_add_[i]
       << (adders_[i]->is_exact() ? " (exact)" : "") << "\n";
  }
  return os.str();
}

}  // namespace approxit::arith
