#include "arith/alu.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "arith/approx_adders.h"
#include "arith/batch_kernels.h"
#include "arith/simd_kernels.h"
#include "obs/trace.h"

namespace approxit::arith {

namespace {

/// Stack-chunk size for the SIMD span loops: big enough to amortize the
/// per-chunk dispatch, small enough that the Word/double scratch stays in
/// L1 and on the stack (no allocation on the hot path).
constexpr std::size_t kSimdChunk = 256;

/// Invokes `fn` with a callable `(Word a, Word b, bool cin) -> Word`
/// computing one addition of the closed-form family `spec` — the
/// word-parallel equivalent of the active Adder::add(). Hoists the family
/// switch out of the span kernels' element loops.
template <typename Fn>
void with_kernel(const KernelSpec& spec, unsigned width, Fn&& fn) {
  switch (spec.kind) {
    case AdderKernel::kExact:
      fn([width](Word a, Word b, bool cin) {
        return exact_word_add(width, a, b, cin);
      });
      return;
    case AdderKernel::kLowerOr:
      fn([width, k = spec.param](Word a, Word b, bool cin) {
        return lower_or_word_add(width, k, a, b, cin);
      });
      return;
    case AdderKernel::kTruncated:
      fn([width, k = spec.param](Word a, Word b, bool cin) {
        return truncated_word_add(width, k, a, b, cin);
      });
      return;
    case AdderKernel::kEtaI:
      fn([width, k = spec.param](Word a, Word b, bool cin) {
        return etai_word_add(width, k, a, b, cin);
      });
      return;
    case AdderKernel::kEtaII:
      fn([width, seg = spec.param](Word a, Word b, bool cin) {
        return etaii_word_add(width, seg, a, b, cin);
      });
      return;
    case AdderKernel::kGeneric:
      break;
  }
  throw std::logic_error("QcsAlu: no closed-form kernel for kGeneric");
}

}  // namespace

void QcsConfig::validate() const {
  format.validate();
  for (std::size_t i = 0; i < level_approx_bits.size(); ++i) {
    if (level_approx_bits[i] == 0 ||
        level_approx_bits[i] >= format.total_bits) {
      throw std::invalid_argument(
          "QcsConfig: approx bits must be in (0, total_bits)");
    }
    if (i > 0 && level_approx_bits[i] >= level_approx_bits[i - 1]) {
      throw std::invalid_argument(
          "QcsConfig: approx bits must strictly decrease with accuracy level");
    }
  }
}

QcsAlu::QcsAlu(const QcsConfig& config)
    : format_(config.format), energy_params_(config.energy) {
  config.validate();
  const unsigned width = format_.total_bits;
  for (std::size_t i = 0; i < 4; ++i) {
    adders_[i] =
        std::make_shared<GdaAdder>(width, config.level_approx_bits[i]);
  }
  adders_[mode_index(ApproxMode::kAccurate)] =
      std::make_shared<GdaAdder>(width, 0);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    energy_per_add_[i] = adder_energy(*adders_[i], config.energy);
    kernel_specs_[i] = adders_[i]->kernel_spec();
    toggle_models_[i].emplace(adders_[i]->gates(), format_.total_bits,
                              config.energy);
  }
}

QcsAlu::QcsAlu(const QFormat& format, std::array<AdderPtr, kNumModes> adders,
               const EnergyParams& energy)
    : format_(format), adders_(std::move(adders)), energy_params_(energy) {
  format_.validate();
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!adders_[i]) {
      throw std::invalid_argument("QcsAlu: null adder in bank");
    }
    if (adders_[i]->width() != format_.total_bits) {
      throw std::invalid_argument(
          "QcsAlu: adder width does not match format");
    }
    energy_per_add_[i] = adder_energy(*adders_[i], energy);
    kernel_specs_[i] = adders_[i]->kernel_spec();
    toggle_models_[i].emplace(adders_[i]->gates(), format_.total_bits,
                              energy);
  }
  if (!adders_[mode_index(ApproxMode::kAccurate)]->is_exact()) {
    throw std::invalid_argument(
        "QcsAlu: the kAccurate slot must hold an exact adder");
  }
}

void QcsAlu::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    metric_ops_ = {};
    metric_energy_ = {};
    metric_fused_chains_ = nullptr;
    metric_fused_ops_ = nullptr;
    metric_batch_us_ = nullptr;
    return;
  }
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const std::string mode(mode_name(mode_from_index(i)));
    metric_ops_[i] = &registry->counter("alu.ops." + mode);
    metric_energy_[i] = &registry->counter("alu.energy." + mode);
  }
  metric_fused_chains_ = &registry->counter("alu.fused.chains");
  metric_fused_ops_ = &registry->counter("alu.fused.ops");
  registry->gauge("alu.simd_tier")
      .set(static_cast<double>(simd::active_tier()));
  metric_batch_us_ = &registry->histogram("alu.batch_us", 0.0, 250.0, 50);
}

bool QcsAlu::span_sampled() {
  if (!obs::trace_enabled()) return false;
  return (span_sample_++ & 63u) == 0;
}

void QcsAlu::finish_span(const char* op, double start_us, std::size_t n) {
  const double duration_us = obs::trace_now_us() - start_us;
  obs::emit_span("alu", op, start_us,
                 {obs::arg("mode", mode_name(mode_)), obs::arg("n", n)});
  if (metric_batch_us_ != nullptr) metric_batch_us_->record(duration_us);
}

double QcsAlu::route_add(double a, double b, bool subtract) {
  const std::size_t idx = mode_index(mode_);
  const Adder& active = *adders_[idx];
  const Word wa = quantize(a, format_);
  const Word wb = quantize(b, format_);
  // Subtraction feeds the complemented operand into the adder array; the
  // energy model sees the bits the hardware sees.
  const Word wb_effective = subtract ? (~wb & active.mask()) : wb;
  const AddResult result =
      subtract ? active.subtract(wa, wb) : active.add(wa, wb, false);
  const double energy = dynamic_energy_
                            ? toggle_models_[idx]->operation_energy(
                                  wa, wb_effective)
                            : energy_per_add_[idx];
  ledger_.record(mode_, energy);
  post_metrics(idx, energy, 1);
  return dequantize(result.sum, format_);
}

void QcsAlu::set_dynamic_energy(bool enabled) {
  dynamic_energy_ = enabled;
  for (auto& model : toggle_models_) {
    if (model) model->reset();
  }
}

double QcsAlu::add(double a, double b) { return route_add(a, b, false); }

double QcsAlu::sub(double a, double b) { return route_add(a, b, true); }

bool QcsAlu::fast_path(const KernelSpec& spec) const {
  // The word-domain fold never leaves the word domain between elements;
  // it matches the scalar dequantize/requantize fold bit-for-bit only
  // when every dequantized word is exactly representable in a double
  // (total_bits <= 53), which makes quantize(dequantize(w)) == w.
  return batching_ && batching_supported() &&
         spec.kind != AdderKernel::kGeneric && format_.total_bits <= 53;
}

double QcsAlu::fold_chunk(double acc, const double* addends, std::size_t n) {
  if (n == 0) return acc;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  if (!fast_path(spec)) {
    // Differential reference / decorator path: the virtual scalar add().
    for (std::size_t i = 0; i < n; ++i) acc = add(acc, addends[i]);
    return acc;
  }
  const bool sampled = span_sampled();
  const double start_us = sampled ? obs::trace_now_us() : 0.0;
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  Word wacc = quant_.quantize(acc);
  if (toggle) {
    // The toggle model needs every intermediate accumulator, so the fold
    // stays serial under the dynamic energy model.
    double dynamic_total = 0.0;
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word w = quant_.quantize(addends[i]);
        dynamic_total += toggle->operation_energy(wacc, w);
        wacc = kernel(wacc, w, false);
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    // SIMD path: bulk-quantize a chunk, then reduce it with the
    // associative word-domain fold (bit-identical to the serial fold).
    Word wbuf[kSimdChunk];
    for (std::size_t i = 0; i < n; i += kSimdChunk) {
      const std::size_t m = std::min(kSimdChunk, n - i);
      simd::quantize_span(quant_, addends + i, m, wbuf);
      wacc = simd::fold_words(spec, format_.total_bits, wacc, wbuf, m);
    }
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (sampled) finish_span("fold", start_us, n);
  return quant_.dequantize(wacc);
}

double QcsAlu::accumulate(std::span<const double> values) {
  return fold_chunk(0.0, values.data(), values.size());
}

double QcsAlu::dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("QcsAlu::dot: size mismatch");
  }
  // Products are materialized chunkwise so the fold stays in the word
  // domain; re-quantizing the accumulator at a chunk boundary is the
  // identity (see fast_path), so chunking does not change the result.
  constexpr std::size_t kChunk = 256;
  std::array<double, kChunk> products;
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, x.size() - i);
    for (std::size_t j = 0; j < n; ++j) products[j] = x[i + j] * y[i + j];
    acc = fold_chunk(acc, products.data(), n);
  }
  return acc;
}

void QcsAlu::axpy(double alpha, std::span<const double> x,
                  std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("QcsAlu::axpy: size mismatch");
  }
  const std::size_t n = x.size();
  if (n == 0) return;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  if (!fast_path(spec)) {
    for (std::size_t i = 0; i < n; ++i) y[i] = add(y[i], alpha * x[i]);
    return;
  }
  const bool sampled = span_sampled();
  const double start_us = sampled ? obs::trace_now_us() : 0.0;
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  if (toggle) {
    double dynamic_total = 0.0;
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word wa = quant_.quantize(y[i]);
        const Word wb = quant_.quantize(alpha * x[i]);
        dynamic_total += toggle->operation_energy(wa, wb);
        y[i] = quant_.dequantize(kernel(wa, wb, false));
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    double prod[kSimdChunk];
    Word wy[kSimdChunk];
    Word wx[kSimdChunk];
    for (std::size_t i = 0; i < n; i += kSimdChunk) {
      const std::size_t m = std::min(kSimdChunk, n - i);
      for (std::size_t j = 0; j < m; ++j) prod[j] = alpha * x[i + j];
      simd::quantize_span(quant_, y.data() + i, m, wy);
      simd::quantize_span(quant_, prod, m, wx);
      simd::kernel_add_span(spec, format_.total_bits, wy, wx, false, m, wy);
      simd::dequantize_span(quant_, wy, m, y.data() + i);
    }
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (sampled) finish_span("axpy", start_us, n);
}

void QcsAlu::add_vec(std::span<const double> x, std::span<const double> y,
                     std::span<double> out) {
  if (x.size() != y.size() || x.size() != out.size()) {
    throw std::invalid_argument("QcsAlu::add_vec: size mismatch");
  }
  const std::size_t n = x.size();
  if (n == 0) return;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  if (!fast_path(spec)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = add(x[i], y[i]);
    return;
  }
  const bool sampled = span_sampled();
  const double start_us = sampled ? obs::trace_now_us() : 0.0;
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  if (toggle) {
    double dynamic_total = 0.0;
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word wa = quant_.quantize(x[i]);
        const Word wb = quant_.quantize(y[i]);
        dynamic_total += toggle->operation_energy(wa, wb);
        out[i] = quant_.dequantize(kernel(wa, wb, false));
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    Word wa[kSimdChunk];
    Word wb[kSimdChunk];
    for (std::size_t i = 0; i < n; i += kSimdChunk) {
      const std::size_t m = std::min(kSimdChunk, n - i);
      simd::quantize_span(quant_, x.data() + i, m, wa);
      simd::quantize_span(quant_, y.data() + i, m, wb);
      simd::kernel_add_span(spec, format_.total_bits, wa, wb, false, m, wa);
      simd::dequantize_span(quant_, wa, m, out.data() + i);
    }
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (sampled) finish_span("add_vec", start_us, n);
}

void QcsAlu::sub_vec(std::span<const double> x, std::span<const double> y,
                     std::span<double> out) {
  if (x.size() != y.size() || x.size() != out.size()) {
    throw std::invalid_argument("QcsAlu::sub_vec: size mismatch");
  }
  const std::size_t n = x.size();
  if (n == 0) return;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  if (!fast_path(spec)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = sub(x[i], y[i]);
    return;
  }
  const bool sampled = span_sampled();
  const double start_us = sampled ? obs::trace_now_us() : 0.0;
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  if (toggle) {
    double dynamic_total = 0.0;
    const Word mask = word_mask(format_.total_bits);
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word wa = quant_.quantize(x[i]);
        // Two's-complement subtraction: a + ~b + 1, exactly as
        // Adder::subtract feeds the hardware (and the toggle model).
        const Word wb_effective = ~quant_.quantize(y[i]) & mask;
        dynamic_total += toggle->operation_energy(wa, wb_effective);
        out[i] = quant_.dequantize(kernel(wa, wb_effective, true));
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    // kernel_sub_span complements b internally (a + ~b + 1), matching
    // Adder::subtract.
    Word wa[kSimdChunk];
    Word wb[kSimdChunk];
    for (std::size_t i = 0; i < n; i += kSimdChunk) {
      const std::size_t m = std::min(kSimdChunk, n - i);
      simd::quantize_span(quant_, x.data() + i, m, wa);
      simd::quantize_span(quant_, y.data() + i, m, wb);
      simd::kernel_sub_span(spec, format_.total_bits, wa, wb, m, wa);
      simd::dequantize_span(quant_, wa, m, out.data() + i);
    }
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (sampled) finish_span("sub_vec", start_us, n);
}

Word QcsAlu::fused_begin(double seed) {
  if (metric_fused_chains_ != nullptr) metric_fused_chains_->add(1.0);
  return quant_.quantize(seed);
}

Word QcsAlu::fused_fold(Word acc, const double* addends, std::size_t n) {
  if (n == 0) return acc;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  if (toggle) {
    double dynamic_total = 0.0;
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word w = quant_.quantize(addends[i]);
        dynamic_total += toggle->operation_energy(acc, w);
        acc = kernel(acc, w, false);
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    Word wbuf[kSimdChunk];
    for (std::size_t i = 0; i < n; i += kSimdChunk) {
      const std::size_t m = std::min(kSimdChunk, n - i);
      simd::quantize_span(quant_, addends + i, m, wbuf);
      acc = simd::fold_words(spec, format_.total_bits, acc, wbuf, m);
    }
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (metric_fused_ops_ != nullptr) {
    metric_fused_ops_->add(static_cast<double>(n));
  }
  return acc;
}

void QcsAlu::fused_quantize(const double* values, std::size_t n,
                            Word* out) const {
  simd::quantize_span(quant_, values, n, out);
}

Word QcsAlu::fused_fold_words(Word acc, const Word* words, std::size_t n) {
  if (n == 0) return acc;
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  ToggleEnergyModel* toggle =
      dynamic_energy_ ? &*toggle_models_[idx] : nullptr;
  if (toggle) {
    double dynamic_total = 0.0;
    with_kernel(spec, format_.total_bits, [&](auto kernel) {
      for (std::size_t i = 0; i < n; ++i) {
        dynamic_total += toggle->operation_energy(acc, words[i]);
        acc = kernel(acc, words[i], false);
      }
    });
    ledger_.record_total(mode_, dynamic_total, n);
    post_metrics(idx, dynamic_total, n);
  } else {
    acc = simd::fold_words(spec, format_.total_bits, acc, words, n);
    ledger_.record(mode_, energy_per_add_[idx], n);
    post_metrics(idx, energy_per_add_[idx] * static_cast<double>(n), n);
  }
  if (metric_fused_ops_ != nullptr) {
    metric_fused_ops_->add(static_cast<double>(n));
  }
  return acc;
}

Word QcsAlu::fused_apply(Word acc, double operand, bool subtract) {
  const std::size_t idx = mode_index(mode_);
  const KernelSpec spec = kernel_specs_[idx];
  const Word mask = word_mask(format_.total_bits);
  const Word wb = quant_.quantize(operand);
  const Word wb_effective = subtract ? (~wb & mask) : wb;
  const double energy =
      dynamic_energy_
          ? toggle_models_[idx]->operation_energy(acc, wb_effective)
          : energy_per_add_[idx];
  ledger_.record(mode_, energy);
  post_metrics(idx, energy, 1);
  if (metric_fused_ops_ != nullptr) metric_fused_ops_->add(1.0);
  return kernel_word_add(spec, format_.total_bits, acc, wb_effective,
                         subtract);
}

std::unique_ptr<QcsAlu> QcsAlu::clone_fresh() const {
  auto fresh = std::make_unique<QcsAlu>(format_, adders_, energy_params_);
  fresh->set_mode(mode_);
  fresh->set_dynamic_energy(dynamic_energy_);
  fresh->set_batching(batching_);
  return fresh;
}

std::string QcsAlu::describe() const {
  std::ostringstream os;
  os << "QcsAlu format=" << format_.to_string() << "\n";
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const ApproxMode m = mode_from_index(i);
    os << "  " << mode_name(m) << ": " << adders_[i]->name()
       << " energy/add=" << energy_per_add_[i]
       << (adders_[i]->is_exact() ? " (exact)" : "") << "\n";
  }
  return os.str();
}

}  // namespace approxit::arith
