// Approximation modes of the quality-configurable system (QCS).
//
// The paper's hardware platform exposes four approximate-adder accuracy
// levels (level1 = least accurate .. level4 = most accurate) plus the fully
// accurate mode. Strategies reconfigure among these five modes at runtime.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace approxit::arith {

/// One operating mode of the quality-configurable ALU.
enum class ApproxMode : int {
  kLevel1 = 0,  ///< Least accurate, cheapest.
  kLevel2 = 1,
  kLevel3 = 2,
  kLevel4 = 3,  ///< Most accurate approximate mode.
  kAccurate = 4,  ///< Fully accurate ("acc" in the paper's tables).
};

/// Number of modes in the QCS (4 approximate levels + accurate).
inline constexpr std::size_t kNumModes = 5;

/// All modes ordered from least to most accurate.
inline constexpr std::array<ApproxMode, kNumModes> kAllModes = {
    ApproxMode::kLevel1, ApproxMode::kLevel2, ApproxMode::kLevel3,
    ApproxMode::kLevel4, ApproxMode::kAccurate};

/// Zero-based index of a mode (kLevel1 -> 0 .. kAccurate -> 4).
constexpr std::size_t mode_index(ApproxMode mode) {
  return static_cast<std::size_t>(mode);
}

/// Inverse of mode_index(); index must be < kNumModes.
constexpr ApproxMode mode_from_index(std::size_t index) {
  return static_cast<ApproxMode>(static_cast<int>(index));
}

/// Table label used in the paper ("level1" .. "level4", "acc").
constexpr std::string_view mode_name(ApproxMode mode) {
  switch (mode) {
    case ApproxMode::kLevel1:
      return "level1";
    case ApproxMode::kLevel2:
      return "level2";
    case ApproxMode::kLevel3:
      return "level3";
    case ApproxMode::kLevel4:
      return "level4";
    case ApproxMode::kAccurate:
      return "acc";
  }
  return "?";
}

/// Parses a mode label as produced by mode_name(); also accepts "accurate"
/// and "truth" for kAccurate. Returns nullopt on unknown input.
std::optional<ApproxMode> parse_mode(std::string_view name);

/// The next more-accurate mode, or kAccurate if already there (used by the
/// incremental strategy, which only ever steps upward).
constexpr ApproxMode next_more_accurate(ApproxMode mode) {
  return mode == ApproxMode::kAccurate
             ? ApproxMode::kAccurate
             : mode_from_index(mode_index(mode) + 1);
}

/// True if `a` is strictly less accurate than `b`.
constexpr bool less_accurate(ApproxMode a, ApproxMode b) {
  return mode_index(a) < mode_index(b);
}

}  // namespace approxit::arith
