// Structural per-operation energy model and the session-wide energy ledger.
//
// Following the capacitance-proportional switching-energy treatment in
// Weste & Harris, "CMOS VLSI Design" (the paper's energy reference [22]),
// each gate type is assigned a normalized switching energy; one addition's
// energy is the gate-inventory dot product scaled by an activity factor,
// plus a glitch term that grows with carry-chain depth (long ripple chains
// re-evaluate downstream bits several times before settling).
//
// All energies are normalized units; the benchmark harness reports energy
// ratios against the fully-accurate run, exactly as the paper does.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "arith/adder.h"
#include "arith/gates.h"
#include "arith/mode.h"

namespace approxit::arith {

/// Per-gate-type normalized switching energies plus activity/glitch factors.
struct EnergyParams {
  double full_adder = 13.0;  ///< mirror FA: ~2 XOR + 2 AND + OR worth
  double half_adder = 5.0;
  double and2 = 2.0;
  double or2 = 2.0;
  double xor2 = 3.0;
  double mux2 = 3.5;
  double inverter = 1.0;
  /// Fraction of gates that switch on an average operand pair.
  double activity = 0.5;
  /// Extra switching per unit of carry-chain depth relative to component
  /// width (glitch propagation along the active carry chain).
  double glitch_per_depth = 0.08;

  /// Default parameters used throughout the reproduction.
  static EnergyParams defaults() { return EnergyParams{}; }
};

/// Computes the normalized energy of one operation on a component with the
/// given gate inventory.
double operation_energy(const GateInventory& inventory,
                        const EnergyParams& params = EnergyParams::defaults());

/// Length of the longest resolved carry-propagation chain when adding the
/// low `width` bits of a and b: the longest run of propagate bits (a^b)
/// fed by a generate bit (a&b) or the carry-in. This is the number of
/// full-adder stages that actually re-evaluate before the sum settles —
/// the dominant dynamic-energy term of ripple-class adders.
unsigned longest_carry_chain(Word a, Word b, unsigned width,
                             bool carry_in = false);

/// Data-dependent per-operation energy: instead of the static average
/// (activity x glitch-at-structural-depth), charges each operation by the
/// INPUT TOGGLE activity against the previous operand pair and by the
/// ACTUAL resolved carry-chain length of the operands. Stateful per
/// component instance, like the hardware it models.
class ToggleEnergyModel {
 public:
  /// `inventory`/`width` describe the component; `params` supplies gate
  /// energies and the glitch coefficient.
  ToggleEnergyModel(const GateInventory& inventory, unsigned width,
                    const EnergyParams& params = EnergyParams::defaults());

  /// Energy of adding (a, b) given the previously applied operands;
  /// updates the internal previous-operand state.
  double operation_energy(Word a, Word b);

  /// Resets the previous-operand state (as after power gating).
  void reset();

  /// The data-independent energy this model averages around (for
  /// comparison against the static model).
  double static_energy() const { return static_energy_; }

 private:
  unsigned width_;
  double gate_energy_;       ///< Summed gate switching energy (no factors).
  double glitch_per_depth_;
  double static_energy_;
  std::size_t structural_depth_;
  Word prev_a_ = 0;
  Word prev_b_ = 0;
  bool has_prev_ = false;
};

/// Energy of one add on the given adder (operation_energy of its gates()).
double adder_energy(const Adder& adder,
                    const EnergyParams& params = EnergyParams::defaults());

/// Accumulates per-mode operation counts and energy for one run.
///
/// The ALU records every routed operation here; the harness then normalizes
/// total energy against the fully-accurate ("Truth") run of the same
/// workload to reproduce the paper's Energy/Power columns.
class EnergyLedger {
 public:
  /// Records `count` operations in `mode`, each costing `energy_per_op`.
  void record(ApproxMode mode, double energy_per_op, std::size_t count = 1);

  /// Records `count` operations in `mode` whose summed energy is
  /// `total_energy` (batched posting of data-dependent per-op energies).
  void record_total(ApproxMode mode, double total_energy, std::size_t count);

  /// Total accumulated energy across all modes (normalized units).
  double total_energy() const;

  /// Energy accumulated in one mode.
  double energy(ApproxMode mode) const {
    return energy_[mode_index(mode)];
  }

  /// Operation count in one mode.
  std::size_t ops(ApproxMode mode) const { return ops_[mode_index(mode)]; }

  /// Total operation count across all modes.
  std::size_t total_ops() const;

  /// Resets all counters to zero.
  void reset();

  /// Merges another ledger's counts into this one.
  void merge(const EnergyLedger& other);

  /// One-line human-readable summary for logs.
  std::string summary() const;

 private:
  std::array<double, kNumModes> energy_{};
  std::array<std::size_t, kNumModes> ops_{};
};

}  // namespace approxit::arith
