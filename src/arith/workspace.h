// Fixed-point-resident fused operation chains.
//
// Application hot loops chain context ops — dot then subtract (residuals),
// accumulate then add (gradient reductions with an exact tail). Routed
// through the plain ArithContext interface, every link of the chain
// dequantizes its result and the next link re-quantizes it. Those paired
// conversions are the identity whenever total_bits <= 53 (the fast-path
// invariant, property-tested in fixed_point_test.cpp), so a chain can stay
// resident in the Word domain: quantize the seed once, fold every span and
// scalar operand through QcsAlu's fused kernels, dequantize once at the
// end. Bit-identical to the unfused call sequence, op-for-op identical in
// the energy ledger — only the redundant conversions disappear.
//
// A BatchWorkspace binds to an ArithContext once (hoisting the
// QcsAlu-detection dynamic_cast and eligibility check out of the loop) and
// then runs chains. When the context is not an eligible QcsAlu — an
// ExactContext, a fault-injecting decorator, a generic-kernel adder bank —
// the chain transparently degrades to exactly the ArithContext call
// sequence the application would have written by hand, preserving every
// behavioural contract (fault streams, op counts, exact arithmetic).
#pragma once

#include <span>
#include <vector>

#include "arith/alu.h"
#include "arith/context.h"

namespace approxit::arith {

/// One chain of a grouped run (BatchWorkspace::run_chains). The referenced
/// spans must stay valid for the duration of the call.
struct ChainSpec {
  enum class Kind {
    kDotSub,      ///< dot(x, y) then subtract `scalar` (the residual shape).
    kAccumulate,  ///< accumulate(x), optionally add `scalar` as an exact tail.
  };
  Kind kind = Kind::kAccumulate;
  std::span<const double> x;  ///< kDotSub lhs / kAccumulate terms.
  std::span<const double> y;  ///< kDotSub rhs (same length as x).
  double scalar = 0.0;        ///< kDotSub subtrahend / kAccumulate tail.
  bool has_scalar = false;    ///< kAccumulate only: apply the tail add.
};

/// Reusable fused-chain driver; not thread-safe (one per worker, like the
/// ALU it binds). Rebind after switching contexts; chains re-check fused
/// eligibility at begin() so mode switches between chains are safe.
class BatchWorkspace {
 public:
  BatchWorkspace() = default;
  explicit BatchWorkspace(ArithContext& ctx) { bind(ctx); }

  /// Binds the workspace to a context. Detects (once) whether the context
  /// is a QcsAlu that may run fused word-resident chains.
  void bind(ArithContext& ctx);

  /// The bound context (nullptr before the first bind()).
  ArithContext* context() const { return ctx_; }

  /// True when chains currently run fused (word-resident) rather than
  /// through the plain context calls.
  bool fused() const { return alu_ != nullptr && alu_->fused_eligible(); }

  // --- Chain API --------------------------------------------------------
  // begin(seed) -> { accumulate | dot | add_term | sub_term }* -> finish().
  // dot() is only valid as the first operation of a zero-seeded chain
  // (both paths then reduce to ctx.dot, keeping fused/unfused parity
  // trivially auditable).

  /// Opens a chain with the given seed value.
  void begin(double seed = 0.0);

  /// Folds `values` into the chain accumulator (ctx.accumulate semantics:
  /// one adder op per element).
  void accumulate(std::span<const double> values);

  /// Dot product folded into the (fresh, zero-seeded) chain: exact
  /// multiplies, context-routed accumulation — ctx.dot semantics.
  void dot(std::span<const double> x, std::span<const double> y);

  /// One adder op: accumulator <- accumulator + value.
  void add_term(double value);

  /// One adder op: accumulator <- accumulator - value (two's-complement
  /// subtraction on the fused path, ctx.sub on the fallback).
  void sub_term(double value);

  /// Closes the chain and returns the accumulated value.
  double finish();

  // --- One-shot chains for the common application shapes ----------------

  /// ctx.sub(ctx.dot(x, y), subtrahend) — the residual shape.
  double dot_sub(std::span<const double> x, std::span<const double> y,
                 double subtrahend);

  /// ctx.add(ctx.accumulate(values), tail) — the resilient-reduction-plus-
  /// exact-tail shape.
  double accumulate_add(std::span<const double> values, double tail);

  // --- Grouped chains ---------------------------------------------------

  /// Runs every chain and writes chains.size() results to `results`.
  ///
  /// Per-chain semantics (and the fallback call sequence on non-fused
  /// contexts) are exactly the one-shot helpers above:
  ///   kDotSub              -> dot_sub(x, y, scalar)
  ///   kAccumulate, tail    -> accumulate_add(x, scalar)
  ///   kAccumulate, no tail -> begin(0); accumulate(x); finish()
  /// except that an empty kAccumulate chain performs no context operation
  /// at all and yields `scalar` (or 0.0 without a tail) — the shape
  /// application loops use when a row has no resilient terms.
  ///
  /// On the fused path the whole group shares one bulk quantize pass
  /// (operands for every chain are materialized contiguously, converted to
  /// words once, then folded per chain), amortizing conversion overhead
  /// across many short chains. Results, the energy ledger, and the op
  /// metrics are bit-identical to running the chains one at a time.
  void run_chains(std::span<const ChainSpec> chains, double* results);

  /// Pre-sizes the grouped-chain scratch for a known bound on the total
  /// operand count, so steady-state run_chains calls never allocate (the
  /// zero-alloc contract of the application hot loops).
  void reserve_group(std::size_t total_operands) {
    group_values_.reserve(total_operands);
    group_words_.reserve(total_operands);
  }

 private:
  ArithContext* ctx_ = nullptr;
  QcsAlu* alu_ = nullptr;   ///< Non-null iff the bound context is a QcsAlu.
  bool use_fused_ = false;  ///< Current chain runs word-resident.
  bool fresh_ = false;      ///< Zero-seeded chain with no ops yet.
  Word wacc_ = 0;           ///< Word accumulator (fused path).
  double value_ = 0.0;      ///< Double accumulator (fallback path).
  std::vector<double> group_values_;  ///< run_chains operand scratch.
  std::vector<Word> group_words_;     ///< run_chains quantized scratch.
};

}  // namespace approxit::arith
