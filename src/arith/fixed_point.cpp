#include "arith/fixed_point.h"

#include <cmath>
#include <stdexcept>

namespace approxit::arith {

void QFormat::validate() const {
  if (total_bits < 2 || total_bits > 64) {
    throw std::invalid_argument("QFormat: total_bits must be in [2, 64]");
  }
  if (frac_bits >= total_bits) {
    throw std::invalid_argument("QFormat: frac_bits must be < total_bits");
  }
}

double QFormat::ulp() const { return std::ldexp(1.0, -static_cast<int>(frac_bits)); }

double QFormat::max_value() const {
  const double max_int = std::ldexp(1.0, static_cast<int>(total_bits) - 1) - 1.0;
  return max_int * ulp();
}

double QFormat::min_value() const {
  return -std::ldexp(1.0, static_cast<int>(total_bits) - 1) * ulp();
}

std::string QFormat::to_string() const {
  return "Q" + std::to_string(total_bits - frac_bits) + "." +
         std::to_string(frac_bits);
}

Word quantize(double value, const QFormat& format) {
  if (std::isnan(value)) {
    return 0;
  }
  const double scaled = std::nearbyint(std::ldexp(value, static_cast<int>(format.frac_bits)));
  const double max_int =
      std::ldexp(1.0, static_cast<int>(format.total_bits) - 1) - 1.0;
  const double min_int =
      -std::ldexp(1.0, static_cast<int>(format.total_bits) - 1);
  double clamped = scaled;
  if (clamped > max_int) clamped = max_int;
  if (clamped < min_int) clamped = min_int;
  return from_signed(static_cast<std::int64_t>(clamped), format.total_bits);
}

double dequantize(Word word, const QFormat& format) {
  const std::int64_t raw = to_signed(word, format.total_bits);
  return std::ldexp(static_cast<double>(raw),
                    -static_cast<int>(format.frac_bits));
}

std::int64_t to_signed(Word word, unsigned width) {
  word &= word_mask(width);
  if (width >= 64) {
    return static_cast<std::int64_t>(word);
  }
  const Word sign_bit = Word{1} << (width - 1);
  if (word & sign_bit) {
    return static_cast<std::int64_t>(word | ~word_mask(width));
  }
  return static_cast<std::int64_t>(word);
}

Word from_signed(std::int64_t value, unsigned width) {
  return static_cast<Word>(value) & word_mask(width);
}

double quantization_roundtrip(double value, const QFormat& format) {
  return dequantize(quantize(value, format), format);
}

}  // namespace approxit::arith
