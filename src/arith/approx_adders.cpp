#include "arith/approx_adders.h"

#include <algorithm>
#include <stdexcept>

namespace approxit::arith {
namespace {

unsigned clamp_bits(unsigned bits, unsigned width) {
  return std::min(bits, width);
}

}  // namespace

// ---------------------------------------------------------------------------
// LowerOrAdder
// ---------------------------------------------------------------------------

LowerOrAdder::LowerOrAdder(unsigned width, unsigned approx_bits)
    : Adder(width), approx_bits_(clamp_bits(approx_bits, width)) {}

AddResult LowerOrAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  const unsigned k = approx_bits_;
  if (k == 0) {
    return add_bit_range(a, b, carry_in, 0, width());
  }
  const Word low_mask = word_mask(k);
  const Word low = (a | b) & low_mask;
  // Carry into the exact part: AND of the top approximate bit pair.
  const bool bridge_carry =
      (((a >> (k - 1)) & 1) != 0) && (((b >> (k - 1)) & 1) != 0);
  if (k >= width()) {
    return AddResult{low, bridge_carry};
  }
  const AddResult upper = add_bit_range(a, b, bridge_carry, k, width());
  return AddResult{(low | upper.sum) & mask(), upper.carry_out};
}

std::string LowerOrAdder::name() const {
  return "loa" + std::to_string(width()) + "k" + std::to_string(approx_bits_);
}

GateInventory LowerOrAdder::gates() const {
  GateInventory inv;
  inv.or2 = approx_bits_;
  inv.and2 = approx_bits_ > 0 ? 1 : 0;
  inv.full_adders = width() - approx_bits_;
  inv.carry_depth = width() - approx_bits_;
  return inv;
}

// ---------------------------------------------------------------------------
// TruncatedAdder
// ---------------------------------------------------------------------------

TruncatedAdder::TruncatedAdder(unsigned width, unsigned truncated_bits)
    : Adder(width), truncated_bits_(clamp_bits(truncated_bits, width)) {}

AddResult TruncatedAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  const unsigned k = truncated_bits_;
  if (k >= width()) {
    return AddResult{0, false};
  }
  // Low k result bits forced to zero; no carry generated from them; the
  // external carry-in is likewise dropped (it enters below the cut).
  const AddResult upper =
      add_bit_range(a, b, k == 0 ? carry_in : false, k, width());
  return AddResult{upper.sum & mask(), upper.carry_out};
}

std::string TruncatedAdder::name() const {
  return "trunc" + std::to_string(width()) + "k" +
         std::to_string(truncated_bits_);
}

GateInventory TruncatedAdder::gates() const {
  GateInventory inv;
  inv.full_adders = width() - truncated_bits_;
  inv.carry_depth = width() - truncated_bits_;
  return inv;
}

// ---------------------------------------------------------------------------
// EtaIAdder
// ---------------------------------------------------------------------------

EtaIAdder::EtaIAdder(unsigned width, unsigned approx_bits)
    : Adder(width), approx_bits_(clamp_bits(approx_bits, width)) {}

AddResult EtaIAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  const unsigned k = approx_bits_;
  Word low = 0;
  if (k > 0) {
    bool saturate = false;
    for (unsigned i = k; i-- > 0;) {
      const bool ai = (a >> i) & 1;
      const bool bi = (b >> i) & 1;
      if (saturate) {
        low |= Word{1} << i;
        continue;
      }
      if (ai && bi) {
        // First 1+1 pair seen from the top: this bit and all lower bits
        // saturate to 1 (ETA-I's control signal).
        saturate = true;
        low |= word_mask(i + 1);
      } else if (ai ^ bi) {
        low |= Word{1} << i;
      }
    }
  }
  if (k >= width()) {
    return AddResult{low, false};
  }
  // Upper part exact; no carry crosses the cut (ETA-I splits the operands).
  const AddResult upper =
      add_bit_range(a, b, k == 0 ? carry_in : false, k, width());
  return AddResult{(low | upper.sum) & mask(), upper.carry_out};
}

std::string EtaIAdder::name() const {
  return "etai" + std::to_string(width()) + "k" + std::to_string(approx_bits_);
}

GateInventory EtaIAdder::gates() const {
  GateInventory inv;
  // Lower part: XOR per bit plus the carry-free control chain (AND + OR).
  inv.xor2 = approx_bits_;
  inv.and2 = approx_bits_;
  inv.or2 = approx_bits_;
  inv.full_adders = width() - approx_bits_;
  inv.carry_depth = width() - approx_bits_;
  return inv;
}

// ---------------------------------------------------------------------------
// EtaIIAdder
// ---------------------------------------------------------------------------

EtaIIAdder::EtaIIAdder(unsigned width, unsigned segment)
    : Adder(width), segment_(segment) {
  if (segment_ == 0) {
    throw std::invalid_argument("EtaIIAdder: segment must be positive");
  }
}

AddResult EtaIIAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  Word sum = 0;
  bool speculated = carry_in;  // carry into segment 0 is the true carry-in
  bool last_carry = false;
  for (unsigned base = 0; base < width(); base += segment_) {
    const unsigned end = std::min(width(), base + segment_);
    const AddResult seg = add_bit_range(a, b, speculated, base, end);
    sum |= seg.sum;
    last_carry = seg.carry_out;
    // Carry speculated for the NEXT segment: generated by this segment with
    // carry-in 0 (the speculation path ignores the incoming carry).
    speculated = add_bit_range(a, b, false, base, end).carry_out;
  }
  return AddResult{sum & mask(), last_carry};
}

std::string EtaIIAdder::name() const {
  return "etaii" + std::to_string(width()) + "s" + std::to_string(segment_);
}

GateInventory EtaIIAdder::gates() const {
  GateInventory inv;
  const unsigned segments = (width() + segment_ - 1) / segment_;
  // Each segment: a sum chain plus a dedicated carry-speculation chain.
  inv.full_adders = width() + (segments > 1 ? width() - segment_ : 0) / 2;
  inv.carry_depth = 2 * segment_;  // speculation chain + sum chain
  return inv;
}

// ---------------------------------------------------------------------------
// AcaAdder
// ---------------------------------------------------------------------------

AcaAdder::AcaAdder(unsigned width, unsigned window)
    : Adder(width), window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("AcaAdder: window must be positive");
  }
}

AddResult AcaAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  Word sum = 0;
  bool msb_carry = false;
  for (unsigned i = 0; i < width(); ++i) {
    // Carry into bit i from a ripple over the previous `window_` bits; the
    // true carry-in participates only if the window reaches bit 0.
    const unsigned lo = i >= window_ ? i - window_ : 0;
    const bool cin = (lo == 0) ? carry_in : false;
    const bool carry_i = add_bit_range(a, b, cin, lo, i).carry_out;
    const bool ai = (a >> i) & 1;
    const bool bi = (b >> i) & 1;
    if (ai ^ bi ^ carry_i) sum |= Word{1} << i;
    if (i + 1 == width()) {
      msb_carry = (ai && bi) || (ai && carry_i) || (bi && carry_i);
    }
  }
  return AddResult{sum & mask(), msb_carry};
}

std::string AcaAdder::name() const {
  return "aca" + std::to_string(width()) + "w" + std::to_string(window_);
}

GateInventory AcaAdder::gates() const {
  GateInventory inv;
  // One window-length sub-chain per bit (heavily shared in real designs;
  // we model the published ~2x FA overhead for window ~ width/4).
  inv.full_adders = std::min<std::size_t>(width() * 2,
                                          std::size_t{width()} * window_ / 2 +
                                              width());
  inv.carry_depth = window_;
  return inv;
}

// ---------------------------------------------------------------------------
// GearAdder
// ---------------------------------------------------------------------------

GearAdder::GearAdder(unsigned width, unsigned result_bits,
                     unsigned prediction_bits)
    : Adder(width), r_(result_bits), p_(prediction_bits) {
  if (r_ == 0) {
    throw std::invalid_argument("GearAdder: result_bits must be positive");
  }
}

AddResult GearAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  Word sum = 0;
  bool msb_carry = false;
  for (unsigned base = 0; base < width(); base += r_) {
    const unsigned end = std::min(width(), base + r_);
    const unsigned lo = base >= p_ ? base - p_ : 0;
    const bool cin = (lo == 0) ? carry_in : false;
    // Sub-adder spans [lo, end); carry into `base` comes from its low part.
    const bool carry_into_block = add_bit_range(a, b, cin, lo, base).carry_out;
    const AddResult block = add_bit_range(a, b, carry_into_block, base, end);
    sum |= block.sum;
    if (end == width()) msb_carry = block.carry_out;
  }
  return AddResult{sum & mask(), msb_carry};
}

std::string GearAdder::name() const {
  return "gear" + std::to_string(width()) + "r" + std::to_string(r_) + "p" +
         std::to_string(p_);
}

GateInventory GearAdder::gates() const {
  GateInventory inv;
  const unsigned blocks = (width() + r_ - 1) / r_;
  inv.full_adders = blocks * (r_ + p_);
  inv.carry_depth = r_ + p_;
  return inv;
}

// ---------------------------------------------------------------------------
// GdaAdder
// ---------------------------------------------------------------------------

GdaAdder::GdaAdder(unsigned width, unsigned approx_bits)
    : Adder(width), approx_bits_(clamp_bits(approx_bits, width - 1)) {}

AddResult GdaAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  const unsigned k = approx_bits_;
  if (k == 0) {
    return add_bit_range(a, b, carry_in, 0, width());
  }
  const Word low = (a | b) & word_mask(k);
  // The carry bridged into the exact upper part is the AND of the topmost
  // approximate bit pair (LOA-style carry prediction).
  const bool bridge_carry =
      (((a >> (k - 1)) & 1) != 0) && (((b >> (k - 1)) & 1) != 0);
  const AddResult upper = add_bit_range(a, b, bridge_carry, k, width());
  return AddResult{(low | upper.sum) & mask(), upper.carry_out};
}

std::string GdaAdder::name() const {
  return "gda" + std::to_string(width()) + "k" + std::to_string(approx_bits_);
}

GateInventory GdaAdder::gates() const {
  GateInventory inv;
  // Active lower region: OR gates; active upper region: FA chain. The
  // boundary muxes switch in every configuration.
  inv.or2 = approx_bits_;
  inv.and2 = approx_bits_ > 0 ? 1 : 0;
  inv.full_adders = width() - approx_bits_;
  inv.mux2 = width();
  inv.carry_depth = width() - approx_bits_;
  return inv;
}

// ---------------------------------------------------------------------------
// QcsConfigurableAdder
// ---------------------------------------------------------------------------

QcsConfigurableAdder::QcsConfigurableAdder(unsigned width, unsigned chain_bits)
    : Adder(width), chain_bits_(chain_bits) {
  if (chain_bits_ == 0) {
    throw std::invalid_argument(
        "QcsConfigurableAdder: chain_bits must be positive");
  }
}

AddResult QcsConfigurableAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  if (chain_bits_ >= width()) {
    return add_bit_range(a, b, carry_in, 0, width());
  }
  // Windowed carry: identical error semantics to ACA with window chain_bits;
  // the configuration muxes select how far each carry may propagate.
  Word sum = 0;
  bool msb_carry = false;
  for (unsigned i = 0; i < width(); ++i) {
    const unsigned lo = i >= chain_bits_ ? i - chain_bits_ : 0;
    const bool cin = (lo == 0) ? carry_in : false;
    const bool carry_i = add_bit_range(a, b, cin, lo, i).carry_out;
    const bool ai = (a >> i) & 1;
    const bool bi = (b >> i) & 1;
    if (ai ^ bi ^ carry_i) sum |= Word{1} << i;
    if (i + 1 == width()) {
      msb_carry = (ai && bi) || (ai && carry_i) || (bi && carry_i);
    }
  }
  return AddResult{sum & mask(), msb_carry};
}

std::string QcsConfigurableAdder::name() const {
  return "qcs" + std::to_string(width()) + "c" + std::to_string(chain_bits_);
}

GateInventory QcsConfigurableAdder::gates() const {
  GateInventory inv;
  // The physical structure is shared across accuracy configurations: a full
  // FA chain plus segment-boundary speculation chains and config muxes.
  inv.full_adders = width() + width() / 2;
  inv.mux2 = width() / 2;
  // The ACTIVE carry depth depends on the configured chain length; this is
  // what differentiates switched energy across accuracy levels.
  inv.carry_depth = std::min(chain_bits_, width());
  return inv;
}

}  // namespace approxit::arith
