#include "arith/exact_adders.h"

#include <bit>
#include <cmath>

namespace approxit::arith {
namespace {

}  // namespace

// ---------------------------------------------------------------------------
// RippleCarryAdder
// ---------------------------------------------------------------------------

RippleCarryAdder::RippleCarryAdder(unsigned width) : Adder(width) {}

AddResult RippleCarryAdder::add(Word a, Word b, bool carry_in) const {
  return add_bit_range(a & mask(), b & mask(), carry_in, 0, width());
}

std::string RippleCarryAdder::name() const {
  return "rca" + std::to_string(width());
}

GateInventory RippleCarryAdder::gates() const {
  GateInventory inv;
  inv.full_adders = width();
  inv.carry_depth = width();
  return inv;
}

// ---------------------------------------------------------------------------
// CarryLookaheadAdder
// ---------------------------------------------------------------------------

CarryLookaheadAdder::CarryLookaheadAdder(unsigned width, unsigned block)
    : Adder(width), block_(block == 0 ? 4 : block) {}

AddResult CarryLookaheadAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  // Generate/propagate per bit; carries computed with block lookahead.
  Word sum = 0;
  bool carry = carry_in;
  for (unsigned base = 0; base < width(); base += block_) {
    const unsigned end = std::min(width(), base + block_);
    // Within a block the lookahead network produces the same carries as a
    // ripple chain would (it is exact); reuse ripple semantics.
    const AddResult blockResult = add_bit_range(a, b, carry, base, end);
    sum |= blockResult.sum;
    carry = blockResult.carry_out;
  }
  return AddResult{sum, carry};
}

std::string CarryLookaheadAdder::name() const {
  return "cla" + std::to_string(width()) + "b" + std::to_string(block_);
}

GateInventory CarryLookaheadAdder::gates() const {
  GateInventory inv;
  // Per bit: P = a^b (XOR), G = a&b (AND), sum = P^c (XOR).
  inv.xor2 = 2 * width();
  inv.and2 = width();
  // Lookahead logic per block of size k: carries c1..ck need
  // ~k(k+1)/2 AND terms and k OR gates.
  const unsigned blocks = (width() + block_ - 1) / block_;
  inv.and2 += blocks * (block_ * (block_ + 1)) / 2;
  inv.or2 += blocks * block_;
  inv.carry_depth = 2 * blocks;  // two logic levels per block group
  return inv;
}

// ---------------------------------------------------------------------------
// CarrySelectAdder
// ---------------------------------------------------------------------------

CarrySelectAdder::CarrySelectAdder(unsigned width, unsigned block)
    : Adder(width), block_(block == 0 ? 4 : block) {}

AddResult CarrySelectAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  Word sum = 0;
  bool carry = carry_in;
  for (unsigned base = 0; base < width(); base += block_) {
    const unsigned end = std::min(width(), base + block_);
    // Hardware computes both hypotheses; the selected one equals ripple with
    // the actual carry-in.
    const AddResult sel = add_bit_range(a, b, carry, base, end);
    sum |= sel.sum;
    carry = sel.carry_out;
  }
  return AddResult{sum, carry};
}

std::string CarrySelectAdder::name() const {
  return "csel" + std::to_string(width()) + "b" + std::to_string(block_);
}

GateInventory CarrySelectAdder::gates() const {
  GateInventory inv;
  const unsigned blocks = (width() + block_ - 1) / block_;
  // First block single ripple chain; every later block is duplicated
  // (carry-in 0 and 1) plus sum/carry muxes.
  inv.full_adders = block_ + (blocks > 1 ? (blocks - 1) * 2 * block_ : 0);
  inv.mux2 = blocks > 1 ? (blocks - 1) * (block_ + 1) : 0;
  inv.carry_depth = block_ + blocks;  // first ripple + mux chain
  return inv;
}

// ---------------------------------------------------------------------------
// KoggeStoneAdder
// ---------------------------------------------------------------------------

KoggeStoneAdder::KoggeStoneAdder(unsigned width) : Adder(width) {}

AddResult KoggeStoneAdder::add(Word a, Word b, bool carry_in) const {
  a &= mask();
  b &= mask();
  // Parallel-prefix over (G, P) pairs; bitwise formulation.
  const Word g = a & b;
  const Word p = a ^ b;
  // Fold the carry-in into bit 0's generate: g0' = g0 | (p0 & cin).
  Word gk = carry_in ? (g | (p & 1)) : g;
  Word pk = p;
  for (unsigned shift = 1; shift < width(); shift <<= 1) {
    const Word gPrev = gk << shift;
    const Word pPrev = pk << shift;
    gk = gk | (pk & gPrev);
    pk = pk & pPrev;
  }
  // Carry into bit i is the prefix generate of bits [0, i); c0 = cin.
  const Word carries = (gk << 1) | (carry_in ? 1 : 0);
  const Word sum = (p ^ carries) & mask();
  const bool carry_out =
      width() >= 64 ? ((gk >> 63) & 1) != 0 : ((gk >> (width() - 1)) & 1) != 0;
  return AddResult{sum, carry_out};
}

std::string KoggeStoneAdder::name() const {
  return "ks" + std::to_string(width());
}

GateInventory KoggeStoneAdder::gates() const {
  GateInventory inv;
  const unsigned levels =
      width() <= 1 ? 1 : static_cast<unsigned>(std::ceil(std::log2(width())));
  inv.xor2 = 2 * width();          // preprocessing P + postprocessing sum
  inv.and2 = width() + levels * width() * 2;  // G preprocess + prefix cells
  inv.or2 = levels * width();
  inv.carry_depth = levels + 2;
  return inv;
}

AdderPtr make_default_exact_adder(unsigned width) {
  return std::make_shared<RippleCarryAdder>(width);
}

}  // namespace approxit::arith
