// Approximate adder architectures from the literature.
//
// These are bit-accurate software models: for every operand pair they produce
// exactly the sum the modeled hardware would produce, so the error statistics
// (error rate, mean error distance, worst-case error) that drive ApproxIt's
// offline characterization are faithful.
//
// References (paper numbering):
//  - LOA: Mahdiani et al., lower-part OR adder.
//  - ETA-I / ETA-II: Zhu et al. [14], error-tolerant adders.
//  - ACA: Verma et al., almost correct adder (windowed carry).
//  - GeAr: Shafique et al., generic accuracy-configurable adder;
//    generalizes ACA (R=1) and ETA-II (R=P).
//  - Truncated: low bits forced to zero (classic precision scaling).
#pragma once

#include "arith/adder.h"

namespace approxit::arith {

/// Lower-part OR adder: the low `approx_bits` result bits are a|b (no carry
/// chain); one AND gate feeds the carry into the exact upper part.
class LowerOrAdder final : public Adder {
 public:
  LowerOrAdder(unsigned width, unsigned approx_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  KernelSpec kernel_spec() const override {
    return approx_bits_ == 0 ? KernelSpec{AdderKernel::kExact, 0}
                             : KernelSpec{AdderKernel::kLowerOr, approx_bits_};
  }

  unsigned approx_bits() const { return approx_bits_; }

 private:
  unsigned approx_bits_;
};

/// Truncated adder: the low `truncated_bits` result bits are zero and no
/// carry is produced from them; the upper part is exact.
class TruncatedAdder final : public Adder {
 public:
  TruncatedAdder(unsigned width, unsigned truncated_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  KernelSpec kernel_spec() const override {
    return truncated_bits_ == 0
               ? KernelSpec{AdderKernel::kExact, 0}
               : KernelSpec{AdderKernel::kTruncated, truncated_bits_};
  }

  unsigned truncated_bits() const { return truncated_bits_; }

 private:
  unsigned truncated_bits_;
};

/// Error-tolerant adder type I: exact upper part; the lower part is scanned
/// from its MSB downward — bits XOR until the first position where both
/// operand bits are 1, from which point all lower result bits saturate to 1.
class EtaIAdder final : public Adder {
 public:
  EtaIAdder(unsigned width, unsigned approx_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  KernelSpec kernel_spec() const override {
    return approx_bits_ == 0 ? KernelSpec{AdderKernel::kExact, 0}
                             : KernelSpec{AdderKernel::kEtaI, approx_bits_};
  }

  unsigned approx_bits() const { return approx_bits_; }

 private:
  unsigned approx_bits_;
};

/// Error-tolerant adder type II: the carry chain is cut into `segment`-bit
/// blocks; the carry into block i is speculated from block i-1 alone
/// (carry-in 0 at block i-1's input).
class EtaIIAdder final : public Adder {
 public:
  EtaIIAdder(unsigned width, unsigned segment);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  KernelSpec kernel_spec() const override {
    return segment_ >= width() ? KernelSpec{AdderKernel::kExact, 0}
                               : KernelSpec{AdderKernel::kEtaII, segment_};
  }

  unsigned segment() const { return segment_; }

 private:
  unsigned segment_;
};

/// Almost correct adder: the carry into bit i is computed from a ripple over
/// the previous `window` bits only.
class AcaAdder final : public Adder {
 public:
  AcaAdder(unsigned width, unsigned window);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;

  unsigned window() const { return window_; }

 private:
  unsigned window_;
};

/// Generic accuracy-configurable adder GeAr(width, R, P): result bits are
/// produced in blocks of R; block b is computed by a sub-adder spanning bits
/// [b*R - P, (b+1)*R) with carry-in 0, keeping its top R sum bits.
/// R = 1 reduces to ACA(window = P + 1); R = P reduces to ETA-II.
class GearAdder final : public Adder {
 public:
  GearAdder(unsigned width, unsigned result_bits, unsigned prediction_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;

  unsigned result_bits() const { return r_; }
  unsigned prediction_bits() const { return p_; }

 private:
  unsigned r_;
  unsigned p_;
};

/// Gracefully-degrading accuracy-configurable adder (GDA), the default QCS
/// level implementation: the low `approx_bits` result bits are computed
/// carry-free (bitwise OR, as in LOA) while the upper part stays exact, and
/// configuration muxes move the boundary at runtime. Error is strictly
/// bounded by 2^approx_bits, so accuracy is monotone in the configuration —
/// for any operand signs, including cancellation-heavy workloads — which is
/// the property ApproxIt's accuracy levels rely on.
///
/// approx_bits = 0 gives exact addition (the QCS's accurate mode); the mux
/// inventory is shared across configurations, only the active carry chain
/// and the OR region change.
class GdaAdder final : public Adder {
 public:
  GdaAdder(unsigned width, unsigned approx_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return approx_bits_ == 0; }
  KernelSpec kernel_spec() const override {
    return approx_bits_ == 0 ? KernelSpec{AdderKernel::kExact, 0}
                             : KernelSpec{AdderKernel::kLowerOr, approx_bits_};
  }

  unsigned approx_bits() const { return approx_bits_; }

 private:
  unsigned approx_bits_;
};

/// Reconfiguration-oriented accuracy-configurable adder modeling the QCS
/// hardware of Ye et al. [5]: a segmented carry chain whose segment
/// boundaries can be bridged by configuration muxes. `chain_bits` is the
/// effective carry-propagation window per result bit (wider = more accurate);
/// chain_bits >= width gives exact addition.
///
/// The gate inventory includes the configuration muxes, so all accuracy
/// levels of one QCS share area but differ in switched energy (shorter
/// active carry chains glitch less).
class QcsConfigurableAdder final : public Adder {
 public:
  QcsConfigurableAdder(unsigned width, unsigned chain_bits);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return chain_bits_ >= width(); }

  unsigned chain_bits() const { return chain_bits_; }

 private:
  unsigned chain_bits_;
};

}  // namespace approxit::arith
