// Analytic worst-case error (WCE) analysis of the approximate adder
// families.
//
// Monte Carlo characterization (error_metrics.h) estimates error
// statistics; for WORST-case guarantees a designer needs exact bounds.
// For the lower-part families these have closed forms; for the windowed
// (carry-speculation) families the exact WCE is computed by a dynamic
// program over bit positions that tracks the achievable (true carry,
// speculative carry) divergence — exact for any width, no enumeration.
// Every result is validated against exhaustive search at small widths in
// the test suite.
#pragma once

#include <cstdint>

#include "arith/adder.h"

namespace approxit::arith {

/// Exact worst-case |approx - exact| of LowerOrAdder(width, k) over all
/// operand pairs and carry-ins, in ulps of the result.
std::uint64_t loa_worst_case_error(unsigned width, unsigned approx_bits);

/// Exact WCE of GdaAdder(width, k) (identical structure to LOA).
std::uint64_t gda_worst_case_error(unsigned width, unsigned approx_bits);

/// Exact WCE of TruncatedAdder(width, k).
std::uint64_t trunc_worst_case_error(unsigned width, unsigned truncated_bits);

/// Exact WCE of EtaIAdder(width, k).
std::uint64_t etai_worst_case_error(unsigned width, unsigned approx_bits);

/// Exact WCE of EtaIIAdder(width, segment) via dynamic programming over the
/// segment chain.
std::uint64_t etaii_worst_case_error(unsigned width, unsigned segment);

/// Exact WCE of the windowed-carry QcsConfigurableAdder(width, chain) /
/// AcaAdder(width, window) family via dynamic programming.
std::uint64_t windowed_worst_case_error(unsigned width, unsigned window);

/// Exhaustive reference (all operand pairs, both carry-ins); width <= 12.
/// Used to validate the analytic results.
std::uint64_t exhaustive_worst_case_error(const Adder& adder);

}  // namespace approxit::arith
