#include "arith/multipliers.h"

#include <bit>
#include <stdexcept>

#include "arith/fixed_point.h"

namespace approxit::arith {
namespace {

void check_adder(const AdderPtr& adder, unsigned width, const char* who) {
  if (!adder) {
    throw std::invalid_argument(std::string(who) + ": null sum adder");
  }
  if (adder->width() != 2 * width) {
    throw std::invalid_argument(std::string(who) +
                                ": sum adder must be 2x operand width");
  }
}

}  // namespace

Multiplier::Multiplier(unsigned width) : width_(width) {
  if (width == 0 || width > 32) {
    throw std::invalid_argument("Multiplier width must be in [1, 32]");
  }
}

Word Multiplier::multiply_signed(Word a, Word b) const {
  const unsigned w = width();
  const std::int64_t sa = to_signed(a, w);
  const std::int64_t sb = to_signed(b, w);
  const bool negative = (sa < 0) != (sb < 0);
  const Word mag_a = static_cast<Word>(sa < 0 ? -sa : sa) & word_mask(w);
  const Word mag_b = static_cast<Word>(sb < 0 ? -sb : sb) & word_mask(w);
  const Word product = multiply(mag_a, mag_b);
  if (!negative) {
    return product & word_mask(2 * w);
  }
  return (~product + 1) & word_mask(2 * w);
}

// ---------------------------------------------------------------------------
// ArrayMultiplier
// ---------------------------------------------------------------------------

ArrayMultiplier::ArrayMultiplier(unsigned width, AdderPtr sum_adder)
    : Multiplier(width), sum_adder_(std::move(sum_adder)) {
  check_adder(sum_adder_, width, "ArrayMultiplier");
}

Word ArrayMultiplier::multiply(Word a, Word b) const {
  const unsigned w = width();
  a &= word_mask(w);
  b &= word_mask(w);
  Word acc = 0;
  for (unsigned i = 0; i < w; ++i) {
    if ((b >> i) & 1) {
      acc = sum_adder_->add(acc, a << i, false).sum;
    }
  }
  return acc & word_mask(2 * w);
}

std::string ArrayMultiplier::name() const {
  return "arraymul" + std::to_string(width()) + "[" + sum_adder_->name() + "]";
}

GateInventory ArrayMultiplier::gates() const {
  GateInventory inv;
  inv.and2 = width() * width();  // partial-product generation
  const GateInventory row = sum_adder_->gates();
  // One 2w-bit adder row per operand bit.
  for (unsigned i = 0; i < width(); ++i) {
    inv.full_adders += row.full_adders;
    inv.half_adders += row.half_adders;
    inv.and2 += row.and2;
    inv.or2 += row.or2;
    inv.xor2 += row.xor2;
    inv.mux2 += row.mux2;
    inv.inverters += row.inverters;
  }
  inv.carry_depth = row.carry_depth + width();
  return inv;
}

// ---------------------------------------------------------------------------
// BoothMultiplier
// ---------------------------------------------------------------------------

BoothMultiplier::BoothMultiplier(unsigned width, AdderPtr sum_adder)
    : Multiplier(width), sum_adder_(std::move(sum_adder)) {
  check_adder(sum_adder_, width, "BoothMultiplier");
}

Word BoothMultiplier::multiply(Word a, Word b) const {
  const unsigned w = width();
  const unsigned pw = 2 * w;
  const Word pmask = word_mask(pw);
  a &= word_mask(w);
  b &= word_mask(w);
  Word acc = 0;
  // Radix-4 Booth recoding of the (unsigned) multiplier b, scanning digit
  // pairs with an extension bit. Digits in {-2,-1,0,1,2}.
  bool prev = false;
  for (unsigned i = 0; i < w + 1; i += 2) {
    const bool b0 = i < w ? ((b >> i) & 1) != 0 : false;
    const bool b1 = i + 1 < w ? ((b >> (i + 1)) & 1) != 0 : false;
    const int digit = (b1 ? -2 : 0) + (b0 ? 1 : 0) + (prev ? 1 : 0);
    prev = b1;
    if (digit == 0) continue;
    Word pp = 0;
    switch (digit) {
      case 1:
        pp = (a << i) & pmask;
        break;
      case 2:
        pp = (a << (i + 1)) & pmask;
        break;
      case -1:
        pp = (~(a << i) + 1) & pmask;
        break;
      case -2:
        pp = (~(a << (i + 1)) + 1) & pmask;
        break;
      default:
        break;
    }
    acc = sum_adder_->add(acc, pp, false).sum;
  }
  return acc & pmask;
}

std::string BoothMultiplier::name() const {
  return "booth" + std::to_string(width()) + "[" + sum_adder_->name() + "]";
}

GateInventory BoothMultiplier::gates() const {
  GateInventory inv;
  const GateInventory row = sum_adder_->gates();
  const unsigned rows = width() / 2 + 1;
  inv.mux2 = rows * 2 * width();  // Booth selectors
  for (unsigned i = 0; i < rows; ++i) {
    inv.full_adders += row.full_adders;
    inv.half_adders += row.half_adders;
    inv.and2 += row.and2;
    inv.or2 += row.or2;
    inv.xor2 += row.xor2;
    inv.mux2 += row.mux2;
    inv.inverters += row.inverters;
  }
  inv.carry_depth = row.carry_depth + rows;
  return inv;
}

// ---------------------------------------------------------------------------
// TruncatedMultiplier
// ---------------------------------------------------------------------------

TruncatedMultiplier::TruncatedMultiplier(unsigned width,
                                         unsigned truncated_bits,
                                         AdderPtr sum_adder)
    : Multiplier(width),
      truncated_bits_(truncated_bits),
      sum_adder_(std::move(sum_adder)) {
  check_adder(sum_adder_, width, "TruncatedMultiplier");
  if (truncated_bits_ > 2 * width) {
    throw std::invalid_argument(
        "TruncatedMultiplier: cannot truncate more than product width");
  }
}

Word TruncatedMultiplier::multiply(Word a, Word b) const {
  const unsigned w = width();
  a &= word_mask(w);
  b &= word_mask(w);
  const Word keep_mask = word_mask(2 * w) & ~word_mask(truncated_bits_);
  Word acc = 0;
  for (unsigned i = 0; i < w; ++i) {
    if ((b >> i) & 1) {
      // Partial-product bits below the truncation line are never formed.
      const Word pp = (a << i) & keep_mask;
      if (pp != 0) {
        acc = sum_adder_->add(acc, pp, false).sum;
      }
    }
  }
  return acc & word_mask(2 * w);
}

std::string TruncatedMultiplier::name() const {
  return "truncmul" + std::to_string(width()) + "t" +
         std::to_string(truncated_bits_);
}

GateInventory TruncatedMultiplier::gates() const {
  GateInventory inv;
  const unsigned w = width();
  // Roughly half the partial-product cells fall below a diagonal truncation
  // line of `truncated_bits_`; keep the proportional remainder.
  const std::size_t total_cells = std::size_t{w} * w;
  const std::size_t removed =
      std::min<std::size_t>(total_cells,
                            std::size_t{truncated_bits_} * truncated_bits_ / 2);
  inv.and2 = total_cells - removed;
  inv.full_adders = (total_cells - removed);
  inv.carry_depth = 2 * w - truncated_bits_;
  return inv;
}

// ---------------------------------------------------------------------------
// KulkarniMultiplier
// ---------------------------------------------------------------------------

KulkarniMultiplier::KulkarniMultiplier(unsigned width) : Multiplier(width) {
  if (!std::has_single_bit(width)) {
    throw std::invalid_argument("KulkarniMultiplier: width must be 2^k");
  }
}

namespace {

/// The approximate 2x2 block: exact except 3 x 3 = 7 (0b111 instead of
/// 0b1001), saving the MSB partial-product cell.
Word kulkarni2x2(Word a, Word b) {
  a &= 3;
  b &= 3;
  if (a == 3 && b == 3) {
    return 7;
  }
  return a * b;
}

/// Recursive composition from four half-width blocks; the partial results
/// are summed exactly (errors originate in the 2x2 blocks only).
Word kulkarni_recursive(Word a, Word b, unsigned w) {
  if (w == 1) {
    return a & b & 1;
  }
  if (w == 2) {
    return kulkarni2x2(a, b);
  }
  const unsigned h = w / 2;
  const Word mask = word_mask(h);
  const Word al = a & mask, ah = (a >> h) & mask;
  const Word bl = b & mask, bh = (b >> h) & mask;
  const Word ll = kulkarni_recursive(al, bl, h);
  const Word lh = kulkarni_recursive(al, bh, h);
  const Word hl = kulkarni_recursive(ah, bl, h);
  const Word hh = kulkarni_recursive(ah, bh, h);
  return ll + ((lh + hl) << h) + (hh << w);
}

}  // namespace

Word KulkarniMultiplier::multiply(Word a, Word b) const {
  const unsigned w = width();
  return kulkarni_recursive(a & word_mask(w), b & word_mask(w), w) &
         word_mask(2 * w);
}

std::string KulkarniMultiplier::name() const {
  return "kulkarni" + std::to_string(width());
}

GateInventory KulkarniMultiplier::gates() const {
  GateInventory inv;
  const unsigned w = width();
  // (w/2)^2 approximate 2x2 blocks (~3 AND + 2 half-adder cells each, one
  // cell saved vs exact), plus the exact summation tree.
  const std::size_t blocks = (std::size_t{w} / 2) * (w / 2);
  inv.and2 = blocks * 3;
  inv.half_adders = blocks * 2;
  inv.full_adders = std::size_t{2} * w * (w > 2 ? w / 2 : 1);
  inv.carry_depth = 2 * w;
  return inv;
}

}  // namespace approxit::arith
