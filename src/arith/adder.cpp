#include "arith/adder.h"

#include <stdexcept>

namespace approxit::arith {

Adder::Adder(unsigned width) : width_(width), mask_(word_mask(width)) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("Adder width must be in [1, 64]");
  }
}

AddResult Adder::subtract(Word a, Word b) const {
  return add(a & mask_, ~b & mask_, /*carry_in=*/true);
}

AddResult exact_add(unsigned width, Word a, Word b, bool carry_in) {
  const Word mask = word_mask(width);
  a &= mask;
  b &= mask;
  const Word cin = carry_in ? 1 : 0;
  if (width < 64) {
    const Word full = a + b + cin;
    return AddResult{full & mask, ((full >> width) & 1) != 0};
  }
  // 64-bit: detect carry without a wider type.
  const Word partial = a + b;
  const bool carry1 = partial < a;
  const Word sum = partial + cin;
  const bool carry2 = sum < partial;
  return AddResult{sum, carry1 || carry2};
}

AddResult add_bit_range(Word a, Word b, bool carry_in, unsigned lo,
                        unsigned hi) {
  if (lo >= hi) {
    return AddResult{0, carry_in};
  }
  const unsigned span = hi - lo;
  const Word va = (a >> lo) & word_mask(span);
  const Word vb = (b >> lo) & word_mask(span);
  const AddResult r = exact_add(span, va, vb, carry_in);
  return AddResult{r.sum << lo, r.carry_out};
}

}  // namespace approxit::arith
