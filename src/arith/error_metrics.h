// Low-level error characterization of approximate components.
//
// Implements the standard metrics the paper lists in Section 3.1 — worst-
// case error (WCE), error rate (ER), mean error (ME) — plus the mean error
// distance family (MED, MRED, NMED) of Liang/Han/Lombardi [18]. These feed
// the offline characterization stage; the paper's point is that they CANNOT
// directly predict application quality, which the iteration-level quality
// error (core/quality.h) fixes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "arith/adder.h"
#include "arith/multipliers.h"

namespace approxit::arith {

/// Operand distribution used during Monte Carlo characterization.
enum class OperandDist {
  kUniform,        ///< Uniform over all width-bit words.
  kGaussian,       ///< Gaussian magnitudes centered mid-range (datapath-like).
  kSmallMagnitude  ///< Uniform over the low half of the bit range (typical of
                   ///< fixed-point residuals late in an iterative solve).
};

/// Aggregate error statistics of an approximate component against the exact
/// reference, over some operand distribution. Errors are measured on the
/// (width+1)-bit unsigned result (sum plus carry-out).
struct ErrorStats {
  double error_rate = 0.0;        ///< ER: fraction of erroneous results.
  double mean_error = 0.0;        ///< ME: signed mean of (approx - exact).
  double mean_error_distance = 0.0;  ///< MED: mean |approx - exact|.
  double mean_relative_error = 0.0;  ///< MRED: mean |err| / max(1, exact).
  double worst_case_error = 0.0;  ///< WCE: max |approx - exact|.
  double normalized_med = 0.0;    ///< NMED: MED / (2^width - 1).
  std::size_t samples = 0;        ///< Operand pairs evaluated.

  /// One-line report ("ER=0.12 ME=-3.5 MED=12.1 ...").
  std::string to_string() const;
};

/// Monte Carlo characterization of an adder over `samples` operand pairs
/// drawn from `dist` (seeded, deterministic). Carry-in is exercised
/// uniformly.
ErrorStats characterize_adder(const Adder& adder, std::size_t samples,
                              std::uint64_t seed,
                              OperandDist dist = OperandDist::kUniform);

/// Exhaustive characterization over all operand pairs and both carry-ins;
/// requires width <= 10 (2^21 cases at width 10). Throws otherwise.
ErrorStats characterize_adder_exhaustive(const Adder& adder);

/// Monte Carlo characterization of a multiplier (unsigned operands).
ErrorStats characterize_multiplier(const Multiplier& multiplier,
                                   std::size_t samples, std::uint64_t seed,
                                   OperandDist dist = OperandDist::kUniform);

}  // namespace approxit::arith
