#include "arith/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "arith/batch_kernels.h"

namespace approxit::arith::simd {

namespace {

Tier detect() {
  if (const char* env = std::getenv("APPROXIT_NO_SIMD")) {
    if (env[0] != '\0') return Tier::kPortable;
  }
#if defined(APPROXIT_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kPortable;
}

// -1 encodes "no override"; otherwise the Tier value. Relaxed atomics: the
// override is only flipped by tests/benches between measurement sections.
std::atomic<int> g_override{-1};

/// True when the AVX2 conversion routines can represent every clamped
/// integer exactly through the double<->int64 magic-constant trick
/// (|value| <= 2^51, i.e. total_bits <= 52).
bool avx2_convertible(const QuantSpec& spec) {
  return spec.total_bits() <= 52;
}

[[noreturn]] void reject_generic(const char* who) {
  throw std::logic_error(std::string(who) +
                         ": kGeneric has no closed-form kernel");
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kPortable:
      return "portable";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier detected_tier() {
  static const Tier tier = detect();
  return tier;
}

Tier active_tier() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced < 0) return detected_tier();
  const Tier requested = static_cast<Tier>(forced);
  // Never exceed what the host supports: the override can demote, not
  // enable an instruction set cpuid says is absent.
  return static_cast<int>(requested) <= static_cast<int>(detected_tier())
             ? requested
             : detected_tier();
}

void set_tier_override(std::optional<Tier> tier) {
  g_override.store(tier ? static_cast<int>(*tier) : -1,
                   std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Portable backend.
// ---------------------------------------------------------------------------

namespace detail {

void portable_quantize_span(const QuantSpec& spec, const double* in,
                            std::size_t n, Word* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = spec.quantize(in[i]);
}

void portable_dequantize_span(const QuantSpec& spec, const Word* in,
                              std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = spec.dequantize(in[i]);
}

void portable_kernel_add_span(const KernelSpec& spec, unsigned width,
                              const Word* a, const Word* b, bool carry_in,
                              std::size_t n, Word* out) {
  switch (spec.kind) {
    case AdderKernel::kExact:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = exact_word_add(width, a[i], b[i], carry_in);
      return;
    case AdderKernel::kLowerOr:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = lower_or_word_add(width, spec.param, a[i], b[i], carry_in);
      return;
    case AdderKernel::kTruncated:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = truncated_word_add(width, spec.param, a[i], b[i], carry_in);
      return;
    case AdderKernel::kEtaI:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = etai_word_add(width, spec.param, a[i], b[i], carry_in);
      return;
    case AdderKernel::kEtaII:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = etaii_word_add(width, spec.param, a[i], b[i], carry_in);
      return;
    case AdderKernel::kGeneric:
      break;
  }
  reject_generic("kernel_add_span");
}

void portable_kernel_sub_span(const KernelSpec& spec, unsigned width,
                              const Word* a, const Word* b, std::size_t n,
                              Word* out) {
  const Word mask = word_mask(width);
  switch (spec.kind) {
    case AdderKernel::kExact:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = exact_word_add(width, a[i], ~b[i] & mask, true);
      return;
    case AdderKernel::kLowerOr:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = lower_or_word_add(width, spec.param, a[i], ~b[i] & mask,
                                   true);
      return;
    case AdderKernel::kTruncated:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = truncated_word_add(width, spec.param, a[i], ~b[i] & mask,
                                    true);
      return;
    case AdderKernel::kEtaI:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = etai_word_add(width, spec.param, a[i], ~b[i] & mask, true);
      return;
    case AdderKernel::kEtaII:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = etaii_word_add(width, spec.param, a[i], ~b[i] & mask, true);
      return;
    case AdderKernel::kGeneric:
      break;
  }
  reject_generic("kernel_sub_span");
}

Word portable_fold_words(const KernelSpec& spec, unsigned width, Word acc,
                         const Word* w, std::size_t n) {
  if (n == 0) return acc;
  const Word mask = word_mask(width);
  const unsigned k = spec.param;
  switch (spec.kind) {
    case AdderKernel::kExact: {
      // Modular addition is associative: acc_n = (acc_0 + sum w) mod 2^w.
      Word sum = acc;
      for (std::size_t i = 0; i < n; ++i) sum += w[i];
      return sum & mask;
    }
    case AdderKernel::kLowerOr: {
      if (k == 0) return portable_fold_words({AdderKernel::kExact, 0}, width,
                                             acc, w, n);
      if (k >= width) {
        // Pure OR region: the fold is a running OR.
        Word low = acc & mask;
        for (std::size_t i = 0; i < n; ++i) low |= w[i] & mask;
        return low & word_mask(k);
      }
      // See the derivation in simd_kernels.h: running OR low part, modular
      // high-part sum, and a closed-form bridge count from the monotone
      // bit-(k-1) prefix.
      Word or_low = acc;
      Word hi_sum = acc >> k;
      Word ones = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Word wi = w[i] & mask;
        or_low |= wi;
        hi_sum += wi >> k;
        ones += (wi >> (k - 1)) & Word{1};
      }
      const bool p0 = ((acc >> (k - 1)) & Word{1}) != 0;
      const Word bridges = p0 ? ones : (ones > 0 ? ones - 1 : 0);
      const Word ah = (hi_sum + bridges) & word_mask(width - k);
      return ((or_low & word_mask(k)) | (ah << k)) & mask;
    }
    case AdderKernel::kTruncated: {
      if (k == 0) return portable_fold_words({AdderKernel::kExact, 0}, width,
                                             acc, w, n);
      if (k >= width) return 0;
      // The low k bits never produce or receive carries, so the fold is a
      // modular sum of high parts (the initial low bits are dropped by the
      // first operation, as in the serial fold).
      Word hi_sum = acc >> k;
      for (std::size_t i = 0; i < n; ++i) hi_sum += (w[i] & mask) >> k;
      return (hi_sum & word_mask(width - k)) << k;
    }
    case AdderKernel::kEtaI:
      for (std::size_t i = 0; i < n; ++i)
        acc = etai_word_add(width, k, acc, w[i], false);
      return acc;
    case AdderKernel::kEtaII:
      for (std::size_t i = 0; i < n; ++i)
        acc = etaii_word_add(width, k, acc, w[i], false);
      return acc;
    case AdderKernel::kGeneric:
      break;
  }
  reject_generic("fold_words");
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void quantize_span(const QuantSpec& spec, const double* in, std::size_t n,
                   Word* out) {
#ifdef APPROXIT_HAVE_AVX2
  if (active_tier() == Tier::kAvx2 && avx2_convertible(spec)) {
    detail::avx2_quantize_span(spec, in, n, out);
    return;
  }
#endif
  detail::portable_quantize_span(spec, in, n, out);
}

void dequantize_span(const QuantSpec& spec, const Word* in, std::size_t n,
                     double* out) {
#ifdef APPROXIT_HAVE_AVX2
  if (active_tier() == Tier::kAvx2 && avx2_convertible(spec)) {
    detail::avx2_dequantize_span(spec, in, n, out);
    return;
  }
#endif
  detail::portable_dequantize_span(spec, in, n, out);
}

void kernel_add_span(const KernelSpec& spec, unsigned width, const Word* a,
                     const Word* b, bool carry_in, std::size_t n, Word* out) {
#ifdef APPROXIT_HAVE_AVX2
  if (active_tier() == Tier::kAvx2) {
    detail::avx2_kernel_add_span(spec, width, a, b, carry_in, n, out);
    return;
  }
#endif
  detail::portable_kernel_add_span(spec, width, a, b, carry_in, n, out);
}

void kernel_sub_span(const KernelSpec& spec, unsigned width, const Word* a,
                     const Word* b, std::size_t n, Word* out) {
#ifdef APPROXIT_HAVE_AVX2
  if (active_tier() == Tier::kAvx2) {
    detail::avx2_kernel_sub_span(spec, width, a, b, n, out);
    return;
  }
#endif
  detail::portable_kernel_sub_span(spec, width, a, b, n, out);
}

Word fold_words(const KernelSpec& spec, unsigned width, Word acc,
                const Word* w, std::size_t n) {
#ifdef APPROXIT_HAVE_AVX2
  if (active_tier() == Tier::kAvx2) {
    return detail::avx2_fold_words(spec, width, acc, w, n);
  }
#endif
  return detail::portable_fold_words(spec, width, acc, w, n);
}

}  // namespace approxit::arith::simd
