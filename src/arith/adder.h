// Abstract interface for bit-accurate adder models.
//
// Every adder operates on unsigned words of a fixed bit width (<= 64); the
// fixed-point layer (fixed_point.h) maps signed quantities onto these words
// in two's complement, so subtraction is addition of the complemented
// operand — exactly as in the modeled hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arith/gates.h"

namespace approxit::arith {

/// Machine word carrying an addend or sum; only the low `width()` bits are
/// meaningful.
using Word = std::uint64_t;

/// Mask with the low `width` bits set; width must be in [1, 64].
constexpr Word word_mask(unsigned width) {
  return width >= 64 ? ~Word{0} : ((Word{1} << width) - 1);
}

/// Result of one addition: the (masked) sum and the carry out of the MSB.
struct AddResult {
  Word sum = 0;
  bool carry_out = false;

  bool operator==(const AddResult&) const = default;
};

/// Closed-form kernel family of an adder, used by the batched QCS datapath
/// (alu.h) to evaluate a whole operand span without a virtual call per
/// element. Families with an O(1)-per-element word formula advertise it
/// here; everything else falls back to kGeneric (per-element add()).
enum class AdderKernel : int {
  kExact = 0,      ///< Plain two's-complement addition.
  kLowerOr = 1,    ///< LOA/GDA: low k bits OR'd, AND-bridged exact upper.
  kTruncated = 2,  ///< Low k result bits zero, exact upper part.
  kEtaI = 3,       ///< ETA-I: XOR lower part saturating below first 1+1.
  kEtaII = 4,      ///< Segmented carry chain with per-segment speculation.
  kGeneric = 5,    ///< No closed form; batch via the virtual add().
};

/// Kernel family plus its parameter (approx bits / segment length; the
/// value is already clamped the way the adder's constructor clamped it).
struct KernelSpec {
  AdderKernel kind = AdderKernel::kGeneric;
  unsigned param = 0;

  bool operator==(const KernelSpec&) const = default;
};

/// Base class for all adder models (exact and approximate).
///
/// Implementations must be stateless and thread-compatible: add() is const
/// and may be called concurrently on the same object.
class Adder {
 public:
  explicit Adder(unsigned width);
  virtual ~Adder() = default;

  Adder(const Adder&) = delete;
  Adder& operator=(const Adder&) = delete;

  /// Adds two words (low width() bits significant) with a carry-in.
  virtual AddResult add(Word a, Word b, bool carry_in = false) const = 0;

  /// Short architecture name, e.g. "ripple", "loa16", "etaii(8)".
  virtual std::string name() const = 0;

  /// Structural gate counts for the energy/area model.
  virtual GateInventory gates() const = 0;

  /// True for adders whose add() equals exact two's-complement addition for
  /// all operands (used by tests and by the accurate mode).
  virtual bool is_exact() const { return false; }

  /// Closed-form batched-kernel classification (batch_kernels.h evaluates
  /// the advertised family word-parallel). The default maps exact adders to
  /// kExact and everything else to kGeneric; approximate families with an
  /// O(1) formula override. MUST describe add() bit-exactly — the batched
  /// datapath is differentially tested against the per-op path.
  virtual KernelSpec kernel_spec() const {
    return is_exact() ? KernelSpec{AdderKernel::kExact, 0}
                      : KernelSpec{AdderKernel::kGeneric, 0};
  }

  /// Operand width in bits, in [1, 64].
  unsigned width() const { return width_; }

  /// Mask with the low width() bits set.
  Word mask() const { return mask_; }

  /// Two's-complement subtraction a - b routed through this adder:
  /// a + ~b + 1, as the hardware would compute it. The approximate error
  /// behaviour of add() therefore carries over to subtraction.
  AddResult subtract(Word a, Word b) const;

 private:
  unsigned width_;
  Word mask_;
};

/// Reference exact addition used in tests and error characterization.
AddResult exact_add(unsigned width, Word a, Word b, bool carry_in = false);

/// Exact addition of the bit range [lo, hi) of a and b with a carry into
/// bit `lo`; the sum bits are returned at their original positions and
/// carry_out is the carry out of bit hi-1. This is the building block the
/// adder models compose (a ripple/lookahead/prefix chain over a bit range
/// computes exactly this function; only how ranges are CONNECTED differs
/// between architectures).
AddResult add_bit_range(Word a, Word b, bool carry_in, unsigned lo,
                        unsigned hi);

using AdderPtr = std::shared_ptr<const Adder>;

}  // namespace approxit::arith
