#include "arith/workspace.h"

#include <algorithm>
#include <stdexcept>

namespace approxit::arith {

namespace {
constexpr std::size_t kChunk = 256;  ///< Stack scratch for dot products.
}

void BatchWorkspace::bind(ArithContext& ctx) {
  ctx_ = &ctx;
  alu_ = dynamic_cast<QcsAlu*>(&ctx);
}

void BatchWorkspace::begin(double seed) {
  if (ctx_ == nullptr) {
    throw std::logic_error("BatchWorkspace::begin: no context bound");
  }
  use_fused_ = fused();
  fresh_ = seed == 0.0;
  if (use_fused_) {
    wacc_ = alu_->fused_begin(seed);
  } else {
    value_ = seed;
  }
}

void BatchWorkspace::accumulate(std::span<const double> values) {
  if (values.empty()) return;
  if (use_fused_) {
    wacc_ = alu_->fused_fold(wacc_, values.data(), values.size());
  } else if (fresh_) {
    // First op of a zero-seeded chain: exactly the call the application
    // would have written (preserves ExactContext's plain sum and the
    // decorator fallbacks inside ctx->accumulate).
    value_ = ctx_->accumulate(values);
  } else {
    for (double v : values) value_ = ctx_->add(value_, v);
  }
  fresh_ = false;
}

void BatchWorkspace::dot(std::span<const double> x,
                         std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("BatchWorkspace::dot: size mismatch");
  }
  if (!fresh_) {
    throw std::logic_error(
        "BatchWorkspace::dot: only valid as the first op of a zero-seeded "
        "chain");
  }
  if (use_fused_) {
    // Products materialized chunkwise on the stack; the accumulator never
    // leaves the word domain (same chunking as QcsAlu::dot).
    double prod[kChunk];
    for (std::size_t i = 0; i < x.size(); i += kChunk) {
      const std::size_t m = std::min(kChunk, x.size() - i);
      for (std::size_t j = 0; j < m; ++j) prod[j] = x[i + j] * y[i + j];
      wacc_ = alu_->fused_fold(wacc_, prod, m);
    }
  } else {
    value_ = ctx_->dot(x, y);
  }
  fresh_ = false;
}

void BatchWorkspace::add_term(double value) {
  if (use_fused_) {
    wacc_ = alu_->fused_apply(wacc_, value, /*subtract=*/false);
  } else {
    value_ = ctx_->add(value_, value);
  }
  fresh_ = false;
}

void BatchWorkspace::sub_term(double value) {
  if (use_fused_) {
    wacc_ = alu_->fused_apply(wacc_, value, /*subtract=*/true);
  } else {
    value_ = ctx_->sub(value_, value);
  }
  fresh_ = false;
}

double BatchWorkspace::finish() {
  return use_fused_ ? alu_->fused_finish(wacc_) : value_;
}

double BatchWorkspace::dot_sub(std::span<const double> x,
                               std::span<const double> y,
                               double subtrahend) {
  begin(0.0);
  dot(x, y);
  sub_term(subtrahend);
  return finish();
}

double BatchWorkspace::accumulate_add(std::span<const double> values,
                                      double tail) {
  begin(0.0);
  accumulate(values);
  add_term(tail);
  return finish();
}

}  // namespace approxit::arith
