#include "arith/workspace.h"

#include <algorithm>
#include <stdexcept>

namespace approxit::arith {

namespace {
constexpr std::size_t kChunk = 256;  ///< Stack scratch for dot products.
}

void BatchWorkspace::bind(ArithContext& ctx) {
  ctx_ = &ctx;
  alu_ = dynamic_cast<QcsAlu*>(&ctx);
}

void BatchWorkspace::begin(double seed) {
  if (ctx_ == nullptr) {
    throw std::logic_error("BatchWorkspace::begin: no context bound");
  }
  use_fused_ = fused();
  fresh_ = seed == 0.0;
  if (use_fused_) {
    wacc_ = alu_->fused_begin(seed);
  } else {
    value_ = seed;
  }
}

void BatchWorkspace::accumulate(std::span<const double> values) {
  if (values.empty()) return;
  if (use_fused_) {
    wacc_ = alu_->fused_fold(wacc_, values.data(), values.size());
  } else if (fresh_) {
    // First op of a zero-seeded chain: exactly the call the application
    // would have written (preserves ExactContext's plain sum and the
    // decorator fallbacks inside ctx->accumulate).
    value_ = ctx_->accumulate(values);
  } else {
    for (double v : values) value_ = ctx_->add(value_, v);
  }
  fresh_ = false;
}

void BatchWorkspace::dot(std::span<const double> x,
                         std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("BatchWorkspace::dot: size mismatch");
  }
  if (!fresh_) {
    throw std::logic_error(
        "BatchWorkspace::dot: only valid as the first op of a zero-seeded "
        "chain");
  }
  if (use_fused_) {
    // Products materialized chunkwise on the stack; the accumulator never
    // leaves the word domain (same chunking as QcsAlu::dot).
    double prod[kChunk];
    for (std::size_t i = 0; i < x.size(); i += kChunk) {
      const std::size_t m = std::min(kChunk, x.size() - i);
      for (std::size_t j = 0; j < m; ++j) prod[j] = x[i + j] * y[i + j];
      wacc_ = alu_->fused_fold(wacc_, prod, m);
    }
  } else {
    value_ = ctx_->dot(x, y);
  }
  fresh_ = false;
}

void BatchWorkspace::add_term(double value) {
  if (use_fused_) {
    wacc_ = alu_->fused_apply(wacc_, value, /*subtract=*/false);
  } else {
    value_ = ctx_->add(value_, value);
  }
  fresh_ = false;
}

void BatchWorkspace::sub_term(double value) {
  if (use_fused_) {
    wacc_ = alu_->fused_apply(wacc_, value, /*subtract=*/true);
  } else {
    value_ = ctx_->sub(value_, value);
  }
  fresh_ = false;
}

double BatchWorkspace::finish() {
  return use_fused_ ? alu_->fused_finish(wacc_) : value_;
}

double BatchWorkspace::dot_sub(std::span<const double> x,
                               std::span<const double> y,
                               double subtrahend) {
  begin(0.0);
  dot(x, y);
  sub_term(subtrahend);
  return finish();
}

double BatchWorkspace::accumulate_add(std::span<const double> values,
                                      double tail) {
  begin(0.0);
  accumulate(values);
  add_term(tail);
  return finish();
}

void BatchWorkspace::run_chains(std::span<const ChainSpec> chains,
                                double* results) {
  if (ctx_ == nullptr) {
    throw std::logic_error("BatchWorkspace::run_chains: no context bound");
  }
  if (!fused()) {
    // Exactly the per-chain call sequence — preserves fault streams and op
    // accounting of decorated/exact contexts chain for chain.
    for (std::size_t c = 0; c < chains.size(); ++c) {
      const ChainSpec& chain = chains[c];
      if (chain.kind == ChainSpec::Kind::kDotSub) {
        results[c] = dot_sub(chain.x, chain.y, chain.scalar);
      } else if (chain.x.empty()) {
        results[c] = chain.has_scalar ? chain.scalar : 0.0;
      } else if (chain.has_scalar) {
        results[c] = accumulate_add(chain.x, chain.scalar);
      } else {
        begin(0.0);
        accumulate(chain.x);
        results[c] = finish();
      }
    }
    return;
  }
  // Fused group pass: materialize every chain's fold operands (products for
  // kDotSub, the terms themselves for kAccumulate) contiguously, quantize
  // the whole group once, then fold each chain's segment. Quantization is
  // stateless and the per-chain fold/apply/ledger sequence below matches
  // the one-shot helpers op for op, so the group run is bit-identical.
  std::size_t total = 0;
  for (const ChainSpec& chain : chains) total += chain.x.size();
  group_values_.resize(total);
  group_words_.resize(total);
  std::size_t offset = 0;
  for (const ChainSpec& chain : chains) {
    if (chain.kind == ChainSpec::Kind::kDotSub) {
      if (chain.x.size() != chain.y.size()) {
        throw std::invalid_argument(
            "BatchWorkspace::run_chains: dot size mismatch");
      }
      for (std::size_t j = 0; j < chain.x.size(); ++j) {
        group_values_[offset + j] = chain.x[j] * chain.y[j];
      }
    } else {
      std::copy(chain.x.begin(), chain.x.end(),
                group_values_.begin() + static_cast<std::ptrdiff_t>(offset));
    }
    offset += chain.x.size();
  }
  alu_->fused_quantize(group_values_.data(), total, group_words_.data());
  offset = 0;
  for (std::size_t c = 0; c < chains.size(); ++c) {
    const ChainSpec& chain = chains[c];
    const Word* words = group_words_.data() + offset;
    const std::size_t n = chain.x.size();
    offset += n;
    if (chain.kind == ChainSpec::Kind::kDotSub) {
      Word acc = alu_->fused_begin(0.0);
      // Same kChunk granularity as dot(): one ledger post per chunk, so
      // the ledger's record sequence matches the per-chain path exactly.
      for (std::size_t i = 0; i < n; i += kChunk) {
        acc = alu_->fused_fold_words(acc, words + i, std::min(kChunk, n - i));
      }
      acc = alu_->fused_apply(acc, chain.scalar, /*subtract=*/true);
      results[c] = alu_->fused_finish(acc);
    } else if (n == 0) {
      results[c] = chain.has_scalar ? chain.scalar : 0.0;
    } else {
      Word acc = alu_->fused_begin(0.0);
      acc = alu_->fused_fold_words(acc, words, n);
      if (chain.has_scalar) {
        acc = alu_->fused_apply(acc, chain.scalar, /*subtract=*/false);
      }
      results[c] = alu_->fused_finish(acc);
    }
  }
}

}  // namespace approxit::arith
