// Fixed-point quantization layer between the floating-point application
// domain and the bit-level adder models.
//
// A QFormat describes a signed two's-complement fixed-point format
// Q(total_bits, frac_bits). Values inside an error-resilient region are
// quantized into this format, pushed through the configured (possibly
// approximate) adder, and dequantized back — mirroring a datapath whose
// resilient kernels run on approximate fixed-point hardware.
#pragma once

#include <cstdint>
#include <string>

#include "arith/adder.h"

namespace approxit::arith {

/// Signed two's-complement fixed-point format descriptor.
///
/// `total_bits` in [2, 64]; `frac_bits` < total_bits. The representable
/// range is [-2^(i-1), 2^(i-1) - ulp] with i = total_bits - frac_bits
/// integer bits (sign included) and ulp = 2^-frac_bits.
struct QFormat {
  unsigned total_bits = 32;
  unsigned frac_bits = 16;

  /// Validates the invariants above; throws std::invalid_argument.
  void validate() const;

  /// Value of one least-significant bit.
  double ulp() const;

  /// Largest representable value.
  double max_value() const;

  /// Smallest (most negative) representable value.
  double min_value() const;

  /// Human-readable "Q32.16" style label.
  std::string to_string() const;

  bool operator==(const QFormat&) const = default;
};

/// Quantizes `value` to the format with round-to-nearest and saturation;
/// returns the two's-complement word (low total_bits significant).
/// NaN quantizes to zero.
Word quantize(double value, const QFormat& format);

/// Dequantizes a two's-complement word back to double.
double dequantize(Word word, const QFormat& format);

/// Sign-extends the low `width` bits of `word` into a signed 64-bit value.
std::int64_t to_signed(Word word, unsigned width);

/// Truncates a signed value into a `width`-bit two's-complement word.
Word from_signed(std::int64_t value, unsigned width);

/// Round-trips `value` through the format (quantize then dequantize);
/// useful for measuring pure quantization error.
double quantization_roundtrip(double value, const QFormat& format);

}  // namespace approxit::arith
