// Fixed-point quantization layer between the floating-point application
// domain and the bit-level adder models.
//
// A QFormat describes a signed two's-complement fixed-point format
// Q(total_bits, frac_bits). Values inside an error-resilient region are
// quantized into this format, pushed through the configured (possibly
// approximate) adder, and dequantized back — mirroring a datapath whose
// resilient kernels run on approximate fixed-point hardware.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "arith/adder.h"

namespace approxit::arith {

/// Signed two's-complement fixed-point format descriptor.
///
/// `total_bits` in [2, 64]; `frac_bits` < total_bits. The representable
/// range is [-2^(i-1), 2^(i-1) - ulp] with i = total_bits - frac_bits
/// integer bits (sign included) and ulp = 2^-frac_bits.
struct QFormat {
  unsigned total_bits = 32;
  unsigned frac_bits = 16;

  /// Validates the invariants above; throws std::invalid_argument.
  void validate() const;

  /// Value of one least-significant bit.
  double ulp() const;

  /// Largest representable value.
  double max_value() const;

  /// Smallest (most negative) representable value.
  double min_value() const;

  /// Human-readable "Q32.16" style label.
  std::string to_string() const;

  bool operator==(const QFormat&) const = default;
};

/// Quantizes `value` to the format with round-to-nearest and saturation;
/// returns the two's-complement word (low total_bits significant).
/// NaN quantizes to zero.
Word quantize(double value, const QFormat& format);

/// Dequantizes a two's-complement word back to double.
double dequantize(Word word, const QFormat& format);

/// Sign-extends the low `width` bits of `word` into a signed 64-bit value.
std::int64_t to_signed(Word word, unsigned width);

/// Truncates a signed value into a `width`-bit two's-complement word.
Word from_signed(std::int64_t value, unsigned width);

/// Round-trips `value` through the format (quantize then dequantize);
/// useful for measuring pure quantization error.
double quantization_roundtrip(double value, const QFormat& format);

/// Precomputed quantization constants for one format, hoisting the scale
/// and clamp setup of quantize()/dequantize() out of batch loops and
/// letting the conversions inline. Bit-identical to the free functions:
/// the scale factors are exact powers of two, so `value * scale_` is the
/// same double as ldexp(value, frac_bits) (both overflow to inf together),
/// and the rounding/clamp/cast sequence is unchanged.
class QuantSpec {
 public:
  explicit QuantSpec(const QFormat& format)
      : scale_(std::ldexp(1.0, static_cast<int>(format.frac_bits))),
        inv_scale_(std::ldexp(1.0, -static_cast<int>(format.frac_bits))),
        max_int_(std::ldexp(1.0, static_cast<int>(format.total_bits) - 1) -
                 1.0),
        min_int_(-std::ldexp(1.0, static_cast<int>(format.total_bits) - 1)),
        mask_(word_mask(format.total_bits)),
        sign_bit_(format.total_bits == 0
                      ? 0
                      : Word{1} << (format.total_bits - 1)),
        total_bits_(format.total_bits) {}

  /// Same result as quantize(value, format) for every input.
  Word quantize(double value) const {
    if (std::isnan(value)) return 0;
    double scaled = std::nearbyint(value * scale_);
    if (scaled > max_int_) scaled = max_int_;
    if (scaled < min_int_) scaled = min_int_;
    return static_cast<Word>(static_cast<std::int64_t>(scaled)) & mask_;
  }

  /// Same result as dequantize(word, format) for every input.
  double dequantize(Word word) const {
    word &= mask_;
    const std::int64_t raw =
        (word & sign_bit_) ? static_cast<std::int64_t>(word | ~mask_)
                           : static_cast<std::int64_t>(word);
    return static_cast<double>(raw) * inv_scale_;
  }

  // Precomputed constants, exposed so the SIMD span conversions
  // (simd_kernels.h) can broadcast them into vector registers.
  double scale() const { return scale_; }
  double inv_scale() const { return inv_scale_; }
  double max_int() const { return max_int_; }
  double min_int() const { return min_int_; }
  Word mask() const { return mask_; }
  Word sign_bit() const { return sign_bit_; }
  unsigned total_bits() const { return total_bits_; }

 private:
  double scale_;
  double inv_scale_;
  double max_int_;
  double min_int_;
  Word mask_;
  Word sign_bit_;
  unsigned total_bits_;
};

}  // namespace approxit::arith
