// Closed-form word-parallel kernels for the batched QCS datapath.
//
// The adder models in approx_adders.cpp are written structurally — they
// compose add_bit_range() the way the hardware composes carry chains —
// which is ideal as a differential reference but costs a virtual call and
// several sub-range additions per element. The LOA/GDA, truncated, ETA-I
// and ETA-II families all admit an O(1)-per-element machine-word formula;
// this header provides those formulas so QcsAlu's span kernels can run a
// tight non-virtual loop per batch.
//
// Every function here MUST be bit-identical to the corresponding
// Adder::add() for all operands and carry-ins; batch_kernels_test.cpp
// checks this differentially against the structural models.
#pragma once

#include <bit>

#include "arith/adder.h"

namespace approxit::arith {

/// Exact two's-complement addition of the low `width` bits (width < 64).
inline Word exact_word_add(unsigned width, Word a, Word b, bool carry_in) {
  return (a + b + (carry_in ? 1 : 0)) & word_mask(width);
}

/// LowerOrAdder / GdaAdder: the low k result bits are a|b (carry-free);
/// the AND of the top approximate bit pair bridges into the exact upper
/// part. The external carry-in is swallowed by the OR region (as in the
/// structural model) whenever k > 0.
inline Word lower_or_word_add(unsigned width, unsigned k, Word a, Word b,
                              bool carry_in) {
  const Word mask = word_mask(width);
  a &= mask;
  b &= mask;
  if (k == 0) {
    return exact_word_add(width, a, b, carry_in);
  }
  const Word low = (a | b) & word_mask(k);
  if (k >= width) {
    return low;
  }
  // Branchless: bit k-1 of both operands AND-ed into the upper carry-in.
  // Random operands make this bit a coin flip, so a short-circuit form
  // would mispredict half the time and dominate the loop.
  const Word bridge = (a >> (k - 1)) & (b >> (k - 1)) & Word{1};
  const Word upper = ((a >> k) + (b >> k) + bridge) << k;
  return (low | upper) & mask;
}

/// TruncatedAdder: low k result bits zero, no carry out of them; the
/// external carry-in enters below the cut and is dropped when k > 0.
inline Word truncated_word_add(unsigned width, unsigned k, Word a, Word b,
                               bool carry_in) {
  const Word mask = word_mask(width);
  a &= mask;
  b &= mask;
  if (k >= width) {
    return 0;
  }
  const Word cin = (k == 0 && carry_in) ? 1 : 0;
  return (((a >> k) + (b >> k) + cin) << k) & mask;
}

/// EtaIAdder: lower part XORs bit-wise from the top down until the first
/// position where both operand bits are 1, from which point every lower
/// result bit saturates to 1; the upper part is exact with no carry
/// crossing the cut.
inline Word etai_word_add(unsigned width, unsigned k, Word a, Word b,
                          bool carry_in) {
  const Word mask = word_mask(width);
  a &= mask;
  b &= mask;
  if (k == 0) {
    return exact_word_add(width, a, b, carry_in);
  }
  const Word low_mask = word_mask(k);
  const Word generate = a & b & low_mask;
  Word low = (a ^ b) & low_mask;
  // Highest 1+1 pair at bit p: bits [0, p] saturate to 1. bit_width is
  // p + 1 and 0 when there is no pair, so the mask is a no-op then —
  // branchless on the (data-dependent) generate word.
  low |= word_mask(static_cast<unsigned>(std::bit_width(generate)));
  if (k >= width) {
    return low;
  }
  const Word upper = ((a >> k) + (b >> k)) << k;
  return (low | upper) & mask;
}

/// EtaIIAdder: `segment`-bit blocks; the carry into block i is speculated
/// from block i-1 with carry-in 0 (the true carry-in feeds block 0 only).
inline Word etaii_word_add(unsigned width, unsigned segment, Word a, Word b,
                           bool carry_in) {
  const Word mask = word_mask(width);
  a &= mask;
  b &= mask;
  Word sum = 0;
  Word speculated = carry_in ? 1 : 0;
  for (unsigned base = 0; base < width; base += segment) {
    const unsigned end = base + segment < width ? base + segment : width;
    const unsigned span = end - base;
    const Word span_mask = word_mask(span);
    const Word va = (a >> base) & span_mask;
    const Word vb = (b >> base) & span_mask;
    sum |= ((va + vb + speculated) & span_mask) << base;
    speculated = ((va + vb) >> span) & 1;
  }
  return sum & mask;
}

/// Dispatches one addition through the closed-form family `spec` (the
/// word-level equivalent of Adder::add().sum). Callers on a hot path
/// should instead switch on spec.kind OUTSIDE their element loop — this
/// per-element dispatcher exists for tests and one-off evaluations.
inline Word kernel_word_add(const KernelSpec& spec, unsigned width, Word a,
                            Word b, bool carry_in) {
  switch (spec.kind) {
    case AdderKernel::kExact:
      return exact_word_add(width, a, b, carry_in);
    case AdderKernel::kLowerOr:
      return lower_or_word_add(width, spec.param, a, b, carry_in);
    case AdderKernel::kTruncated:
      return truncated_word_add(width, spec.param, a, b, carry_in);
    case AdderKernel::kEtaI:
      return etai_word_add(width, spec.param, a, b, carry_in);
    case AdderKernel::kEtaII:
      return etaii_word_add(width, spec.param, a, b, carry_in);
    case AdderKernel::kGeneric:
      break;
  }
  return 0;  // kGeneric has no closed form; the caller must use add().
}

}  // namespace approxit::arith
