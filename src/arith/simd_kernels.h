// SIMD backends for the batched QCS datapath.
//
// Three groups of span primitives, each bit-identical lane-by-lane to its
// scalar definition:
//   - bulk QuantSpec conversions (quantize_span / dequantize_span),
//   - elementwise closed-form kernel application (kernel_add_span /
//     kernel_sub_span) for the families in batch_kernels.h,
//   - word-domain left folds (fold_words) with family-specific ASSOCIATIVE
//     decompositions for the exact, LOA/GDA and truncated families.
//
// Every entry point dispatches on a runtime CPU tier: an AVX2 backend
// (simd_kernels_avx2.cpp, compiled with -mavx2 and only ever called after a
// cpuid check) and a portable scalar backend that works everywhere. The
// APPROXIT_NO_SIMD environment variable (any non-empty value) pins the
// portable tier; set_tier_override() lets tests and benches flip tiers
// programmatically. Both tiers produce the same bits, so the choice is
// invisible except in the throughput numbers.
//
// Why the folds can be parallel at all: the serial fold
// acc <- kernel(acc, w_i) looks inherently sequential, but three families
// decompose associatively —
//   - kExact:     acc_n = (acc_0 + sum w_i) mod 2^width.
//   - kTruncated: the low k result bits are always zero and no carry leaves
//     them, so the fold reduces to a modular sum of the high parts:
//     acc_n = ((acc_0 >> k) + sum (w_i >> k)) mod 2^(width-k), shifted back.
//   - kLowerOr:   the low k bits are a running OR (associative); the high
//     part is a modular sum of high parts plus the bridge carries, and the
//     bridge bit of step i is b_i AND (p_0 OR b_0 OR ... OR b_{i-1}) with
//     b_j = bit k-1 of w_j and p_0 = bit k-1 of acc_0 — a monotone prefix,
//     so the bridge total is popcount(b) when p_0 is set and
//     max(popcount(b) - 1, 0) otherwise.
// ETA-I and ETA-II keep a serial word loop (their lower parts feed the
// accumulator back nonlinearly); they still benefit from bulk quantization.
// simd_kernels_test.cpp proves every path against the structural adders.
#pragma once

#include <cstddef>
#include <optional>

#include "arith/adder.h"
#include "arith/fixed_point.h"

namespace approxit::arith::simd {

/// Dispatch tiers, ordered by capability.
enum class Tier : int {
  kPortable = 0,  ///< Plain scalar loops; always available.
  kAvx2 = 1,      ///< 4 x 64-bit lanes (AVX2), runtime-detected.
};

/// Short tier label ("portable" / "avx2") for logs, metrics and the bench.
const char* tier_name(Tier tier);

/// The tier the host supports (cpuid), demoted to kPortable when the
/// APPROXIT_NO_SIMD environment variable is set (read once per process).
Tier detected_tier();

/// The tier span primitives actually run: the override when one is set
/// (clamped to detected_tier — requesting AVX2 on a non-AVX2 host yields
/// the portable tier), detected_tier() otherwise.
Tier active_tier();

/// Forces a tier (tests, per-tier bench timings); nullopt restores the
/// detected tier. Not thread-safe against concurrent span calls.
void set_tier_override(std::optional<Tier> tier);

/// out[i] = spec.quantize(in[i]). Bit-identical to the scalar loop,
/// including the NaN->0, round-to-nearest-even and saturation paths.
void quantize_span(const QuantSpec& spec, const double* in, std::size_t n,
                   Word* out);

/// out[i] = spec.dequantize(in[i]). Bit-identical to the scalar loop.
void dequantize_span(const QuantSpec& spec, const Word* in, std::size_t n,
                     double* out);

/// out[i] = <family>_word_add(width, a[i], b[i], carry_in) for the closed
/// form named by `spec` (batch_kernels.h). spec.kind must not be kGeneric.
void kernel_add_span(const KernelSpec& spec, unsigned width, const Word* a,
                     const Word* b, bool carry_in, std::size_t n, Word* out);

/// Two's-complement subtraction feed: out[i] = kernel(a[i], ~b[i] & mask,
/// carry_in = true), exactly as Adder::subtract presents operands to the
/// hardware. spec.kind must not be kGeneric.
void kernel_sub_span(const KernelSpec& spec, unsigned width, const Word* a,
                     const Word* b, std::size_t n, Word* out);

/// Left fold acc <- kernel(acc, w[i], false) over the span, returning the
/// final accumulator. Uses the associative decompositions above for the
/// exact / lower-or / truncated families and a serial word loop otherwise;
/// bit-identical to the serial fold in every case. spec.kind must not be
/// kGeneric.
Word fold_words(const KernelSpec& spec, unsigned width, Word acc,
                const Word* w, std::size_t n);

namespace detail {

// Portable backend (always compiled; also the differential reference the
// AVX2 backend is tested against).
void portable_quantize_span(const QuantSpec& spec, const double* in,
                            std::size_t n, Word* out);
void portable_dequantize_span(const QuantSpec& spec, const Word* in,
                              std::size_t n, double* out);
void portable_kernel_add_span(const KernelSpec& spec, unsigned width,
                              const Word* a, const Word* b, bool carry_in,
                              std::size_t n, Word* out);
void portable_kernel_sub_span(const KernelSpec& spec, unsigned width,
                              const Word* a, const Word* b, std::size_t n,
                              Word* out);
Word portable_fold_words(const KernelSpec& spec, unsigned width, Word acc,
                         const Word* w, std::size_t n);

// AVX2 backend; only defined when the build has an AVX2-capable compiler
// (APPROXIT_HAVE_AVX2) and only called when cpuid reports AVX2. The
// conversion routines additionally require total_bits <= 52 (the
// double<->int64 magic-constant trick needs |value| <= 2^51); wider
// formats fall back to the portable loops inside the dispatcher.
void avx2_quantize_span(const QuantSpec& spec, const double* in,
                        std::size_t n, Word* out);
void avx2_dequantize_span(const QuantSpec& spec, const Word* in,
                          std::size_t n, double* out);
void avx2_kernel_add_span(const KernelSpec& spec, unsigned width,
                          const Word* a, const Word* b, bool carry_in,
                          std::size_t n, Word* out);
void avx2_kernel_sub_span(const KernelSpec& spec, unsigned width,
                          const Word* a, const Word* b, std::size_t n,
                          Word* out);
Word avx2_fold_words(const KernelSpec& spec, unsigned width, Word acc,
                     const Word* w, std::size_t n);

}  // namespace detail

}  // namespace approxit::arith::simd
