#include "arith/mode.h"

namespace approxit::arith {

std::optional<ApproxMode> parse_mode(std::string_view name) {
  for (ApproxMode mode : kAllModes) {
    if (name == mode_name(mode)) return mode;
  }
  if (name == "accurate" || name == "truth" || name == "Truth") {
    return ApproxMode::kAccurate;
  }
  return std::nullopt;
}

}  // namespace approxit::arith
