// ArithContext: the seam between algorithm code and the (possibly
// approximate) datapath.
//
// Error-resilient kernels take an ArithContext& and perform their additions
// through it. Passing an ExactContext runs them in plain floating point
// (zero-overhead reference); passing a QcsAlu routes them through the
// configured approximate adder with energy accounting.
#pragma once

#include <span>
#include <stdexcept>

namespace approxit::arith {

/// Abstract arithmetic context for error-resilient computations.
class ArithContext {
 public:
  virtual ~ArithContext() = default;

  /// a + b.
  virtual double add(double a, double b) = 0;

  /// a - b.
  virtual double sub(double a, double b) = 0;

  /// Left-fold sum of `values` (0 when empty).
  virtual double accumulate(std::span<const double> values) = 0;

  /// Dot product; multiplications are exact, accumulation context-routed.
  virtual double dot(std::span<const double> x,
                     std::span<const double> y) = 0;

  /// y[i] <- y[i] + alpha * x[i]; the multiplication is exact, the
  /// addition context-routed. Elementwise (no cross-element carries).
  virtual void axpy(double alpha, std::span<const double> x,
                    std::span<double> y) {
    if (x.size() != y.size()) {
      throw std::invalid_argument("ArithContext::axpy: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = add(y[i], alpha * x[i]);
    }
  }

  /// out[i] <- x[i] + y[i], context-routed elementwise.
  virtual void add_vec(std::span<const double> x, std::span<const double> y,
                       std::span<double> out) {
    if (x.size() != y.size() || x.size() != out.size()) {
      throw std::invalid_argument("ArithContext::add_vec: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      out[i] = add(x[i], y[i]);
    }
  }

  /// out[i] <- x[i] - y[i], context-routed elementwise.
  virtual void sub_vec(std::span<const double> x, std::span<const double> y,
                       std::span<double> out) {
    if (x.size() != y.size() || x.size() != out.size()) {
      throw std::invalid_argument("ArithContext::sub_vec: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      out[i] = sub(x[i], y[i]);
    }
  }
};

/// Pure floating-point context: the "no approximation" reference with no
/// energy accounting. Used for error-sensitive code paths and unit tests.
class ExactContext final : public ArithContext {
 public:
  double add(double a, double b) override { return a + b; }
  double sub(double a, double b) override { return a - b; }
  double accumulate(std::span<const double> values) override {
    double acc = 0.0;
    for (double v : values) acc += v;
    return acc;
  }
  double dot(std::span<const double> x, std::span<const double> y) override {
    if (x.size() != y.size()) {
      throw std::invalid_argument("ExactContext::dot: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
  }
  void axpy(double alpha, std::span<const double> x,
            std::span<double> y) override {
    if (x.size() != y.size()) {
      throw std::invalid_argument("ExactContext::axpy: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  }
  void add_vec(std::span<const double> x, std::span<const double> y,
               std::span<double> out) override {
    if (x.size() != y.size() || x.size() != out.size()) {
      throw std::invalid_argument("ExactContext::add_vec: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  }
  void sub_vec(std::span<const double> x, std::span<const double> y,
               std::span<double> out) override {
    if (x.size() != y.size() || x.size() != out.size()) {
      throw std::invalid_argument("ExactContext::sub_vec: size mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  }
};

}  // namespace approxit::arith
