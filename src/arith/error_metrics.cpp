#include "arith/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace approxit::arith {
namespace {

/// Incremental collector for ErrorStats.
class Collector {
 public:
  explicit Collector(unsigned width) : width_(width) {}

  void observe(double exact, double approx) {
    ++samples_;
    const double err = approx - exact;
    const double abs_err = std::abs(err);
    if (abs_err > 0.0) ++errors_;
    sum_err_ += err;
    sum_abs_err_ += abs_err;
    sum_rel_err_ += abs_err / std::max(1.0, std::abs(exact));
    worst_ = std::max(worst_, abs_err);
  }

  ErrorStats finish() const {
    ErrorStats stats;
    stats.samples = samples_;
    if (samples_ == 0) return stats;
    const double n = static_cast<double>(samples_);
    stats.error_rate = static_cast<double>(errors_) / n;
    stats.mean_error = sum_err_ / n;
    stats.mean_error_distance = sum_abs_err_ / n;
    stats.mean_relative_error = sum_rel_err_ / n;
    stats.worst_case_error = worst_;
    const double range =
        std::ldexp(1.0, static_cast<int>(width_)) - 1.0;
    stats.normalized_med = stats.mean_error_distance / range;
    return stats;
  }

 private:
  unsigned width_;
  std::size_t samples_ = 0;
  std::size_t errors_ = 0;
  double sum_err_ = 0.0;
  double sum_abs_err_ = 0.0;
  double sum_rel_err_ = 0.0;
  double worst_ = 0.0;
};

Word draw_operand(util::Rng& rng, unsigned width, OperandDist dist) {
  const Word mask = word_mask(width);
  switch (dist) {
    case OperandDist::kUniform:
      return rng.next_u64() & mask;
    case OperandDist::kGaussian: {
      const double mid = std::ldexp(1.0, static_cast<int>(width) - 1);
      const double v = rng.gaussian(mid, mid / 4.0);
      const double clamped =
          std::clamp(v, 0.0, std::ldexp(1.0, static_cast<int>(width)) - 1.0);
      return static_cast<Word>(clamped) & mask;
    }
    case OperandDist::kSmallMagnitude: {
      const unsigned half = width / 2 == 0 ? 1 : width / 2;
      return rng.next_u64() & word_mask(half);
    }
  }
  return rng.next_u64() & mask;
}

double total_value(const AddResult& r, unsigned width) {
  return static_cast<double>(r.sum) +
         (r.carry_out ? std::ldexp(1.0, static_cast<int>(width)) : 0.0);
}

}  // namespace

std::string ErrorStats::to_string() const {
  std::ostringstream os;
  os << "ER=" << error_rate << " ME=" << mean_error
     << " MED=" << mean_error_distance << " MRED=" << mean_relative_error
     << " WCE=" << worst_case_error << " NMED=" << normalized_med
     << " n=" << samples;
  return os.str();
}

ErrorStats characterize_adder(const Adder& adder, std::size_t samples,
                              std::uint64_t seed, OperandDist dist) {
  util::Rng rng(seed);
  Collector collector(adder.width());
  for (std::size_t i = 0; i < samples; ++i) {
    const Word a = draw_operand(rng, adder.width(), dist);
    const Word b = draw_operand(rng, adder.width(), dist);
    const bool cin = (rng.next_u64() & 1) != 0;
    const AddResult approx = adder.add(a, b, cin);
    const AddResult exact = exact_add(adder.width(), a, b, cin);
    collector.observe(total_value(exact, adder.width()),
                      total_value(approx, adder.width()));
  }
  return collector.finish();
}

ErrorStats characterize_adder_exhaustive(const Adder& adder) {
  const unsigned width = adder.width();
  if (width > 10) {
    throw std::invalid_argument(
        "characterize_adder_exhaustive: width must be <= 10");
  }
  const Word limit = Word{1} << width;
  Collector collector(width);
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const AddResult approx = adder.add(a, b, cin != 0);
        const AddResult exact = exact_add(width, a, b, cin != 0);
        collector.observe(total_value(exact, width),
                          total_value(approx, width));
      }
    }
  }
  return collector.finish();
}

ErrorStats characterize_multiplier(const Multiplier& multiplier,
                                   std::size_t samples, std::uint64_t seed,
                                   OperandDist dist) {
  util::Rng rng(seed);
  Collector collector(2 * multiplier.width());
  const unsigned w = multiplier.width();
  for (std::size_t i = 0; i < samples; ++i) {
    const Word a = draw_operand(rng, w, dist);
    const Word b = draw_operand(rng, w, dist);
    const Word approx = multiplier.multiply(a, b);
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    collector.observe(exact, static_cast<double>(approx));
  }
  return collector.finish();
}

}  // namespace approxit::arith
