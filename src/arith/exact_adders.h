// Exact adder architectures.
//
// All of these compute exact two's-complement addition; they differ only in
// structure (gate counts, carry depth) and therefore in modeled energy and
// area. The fully-accurate mode of the QCS uses one of these.
#pragma once

#include <memory>

#include "arith/adder.h"

namespace approxit::arith {

/// Ripple-carry adder: a chain of `width` full adders. Smallest area,
/// longest carry chain.
class RippleCarryAdder final : public Adder {
 public:
  explicit RippleCarryAdder(unsigned width);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return true; }
};

/// Carry-lookahead adder built from `block` wide lookahead groups
/// (default 4) rippling between groups.
class CarryLookaheadAdder final : public Adder {
 public:
  explicit CarryLookaheadAdder(unsigned width, unsigned block = 4);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return true; }

 private:
  unsigned block_;
};

/// Carry-select adder: each `block`-wide segment computes both carry-in
/// hypotheses and a mux picks the real one.
class CarrySelectAdder final : public Adder {
 public:
  explicit CarrySelectAdder(unsigned width, unsigned block = 4);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return true; }

 private:
  unsigned block_;
};

/// Kogge-Stone parallel-prefix adder: log-depth carry tree, largest area.
class KoggeStoneAdder final : public Adder {
 public:
  explicit KoggeStoneAdder(unsigned width);
  AddResult add(Word a, Word b, bool carry_in) const override;
  std::string name() const override;
  GateInventory gates() const override;
  bool is_exact() const override { return true; }
};

/// Convenience factory for the default exact adder used by the accurate
/// mode (ripple-carry, matching the paper's baseline energy normalization).
AdderPtr make_default_exact_adder(unsigned width);

}  // namespace approxit::arith
